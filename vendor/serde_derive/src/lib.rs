#![allow(clippy::all)]
//! Offline stand-in for `serde_derive`.
//!
//! This container has no crates.io access, so the real serde stack is
//! unavailable. The reproduction only ever serialises a handful of types
//! through the hand-written codecs in `netpu-json`-style modules, so the
//! `#[derive(Serialize, Deserialize)]` annotations scattered through the
//! workspace don't need to generate any code — they expand to nothing
//! and exist purely so the source stays drop-in compatible with the real
//! serde when a registry is available.

use proc_macro::TokenStream;

/// Accepts the same input as serde's `Serialize` derive and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the same input as serde's `Deserialize` derive and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
