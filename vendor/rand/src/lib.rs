#![allow(clippy::all)]
//! Offline stand-in for `rand` 0.8.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the rand API the workspace uses: a deterministic
//! xoshiro256**-based [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Distributions are uniform; the exact
//! value sequence differs from upstream rand, which only shifts which
//! pseudo-random fixtures the tests see.

// The sampling impls are macro-generated over every numeric type, so
// some instantiations contain identity casts.
#![allow(clippy::unnecessary_cast)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256** seeded through
    /// splitmix64, as in the reference xoshiro initialisation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small-footprint alias; identical engine here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types a generator can produce directly via [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of an inferred type.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Permutes the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
