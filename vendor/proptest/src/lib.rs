#![allow(clippy::all)]
//! Offline stand-in for `proptest`.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the proptest API the workspace uses: the [`Strategy`]
//! trait over ranges / tuples / [`any`] / [`collection::vec`] /
//! `prop_map`, plus the `proptest!` / `prop_assert!` family of macros.
//! Case generation is deterministic (seeded per test name and case
//! index) and failures are reported without shrinking.

use std::marker::PhantomData;

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed; the test should panic.
    Fail(String),
    /// A `prop_assume!` filtered the case out; generate another.
    Reject,
}

/// The deterministic entropy source behind every strategy
/// (xoshiro256** seeded through splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// The range impls are macro-generated over every integer width, so
// some instantiations contain identity casts.
#[allow(clippy::unnecessary_cast)]
mod ranges {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    lo + (hi - lo) * unit as $t
                }
            }
        )*};
    }
    range_float!(f32, f64);
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The [`any`] strategy.
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The [`vec`] strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy over vectors of `element` values with lengths in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} — left: {:?}, right: {:?} ({}:{})",
                format!($($fmt)+),
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __base = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __cfg.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __base ^ ((__case as u64 + __rejects as u64) << 32),
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __case += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejects += 1;
                        assert!(
                            __rejects < 4096,
                            "proptest: too many prop_assume rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Derives a deterministic base seed from a test's full path.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 1u8..=9) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..=9).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u32>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_tuples_compose(
            (flag, x) in (any::<bool>(), (0u32..10).prop_map(|v| v * 2)),
        ) {
            let y = if flag { x } else { x + 2 };
            prop_assert!(y % 2 == 0);
        }

        #[test]
        fn assume_filters_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
