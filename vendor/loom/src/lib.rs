//! Offline stand-in for the `loom` permutation-testing model checker.
//!
//! The real loom exhaustively enumerates thread interleavings of code
//! written against its shimmed `sync` primitives. This stand-in keeps
//! the API shape — [`model`], [`thread::spawn`], [`sync::Mutex`],
//! [`sync::Condvar`] — but explores interleavings *stochastically*:
//! every lock / wait / notify / spawn edge is a perturbation point
//! where a seeded xorshift schedule may inject an OS yield or a
//! microsecond sleep, and [`model`] replays the closure across many
//! seeds. A watchdog converts a hung iteration (deadlock, lost wakeup)
//! into a panic naming the iteration, instead of wedging the test
//! harness forever.
//!
//! The guarantees are correspondingly weaker than real loom's — a pass
//! is strong evidence, not a proof — but the failure mode is identical:
//! an invariant violation or a stuck schedule fails the test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Global schedule-perturbation state. Races between threads are
/// harmless: they only add more nondeterminism to the schedule.
static SCHEDULE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

/// One perturbation point: advance the xorshift state and maybe yield
/// or sleep, so lock/wait/notify edges land in different orders across
/// iterations.
pub(crate) fn interleave() {
    let mut x = SCHEDULE.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    SCHEDULE.store(x, Ordering::Relaxed);
    match x % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => std::thread::sleep(Duration::from_micros(x % 50)),
        _ => {}
    }
}

/// Runs `f` under many perturbed schedules. Panics if any iteration
/// violates an assertion, panics, or fails to finish within the
/// watchdog deadline (the signature of a deadlock or lost wakeup).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    const ITERATIONS: u64 = 96;
    const WATCHDOG: Duration = Duration::from_secs(10);
    let f = std::sync::Arc::new(f);
    for iter in 0..ITERATIONS {
        SCHEDULE.store(
            0x9E37_79B9_7F4A_7C15 ^ (iter << 32) ^ iter,
            Ordering::SeqCst,
        );
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let g = std::sync::Arc::clone(&f);
        let handle = std::thread::spawn(move || {
            g();
            let _ = done_tx.send(());
        });
        match done_rx.recv_timeout(WATCHDOG) {
            Ok(()) => {
                let _ = handle.join();
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // The closure panicked before signalling: surface it.
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => panic!(
                "loom model iteration {iter} did not finish within {WATCHDOG:?}: \
                 possible deadlock or lost wakeup"
            ),
        }
    }
}

/// Schedule-perturbing wrappers over `std::sync`.
pub mod sync {
    pub use std::sync::{Arc, LockResult, MutexGuard, PoisonError};

    /// Atomics pass through unchanged.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// `std::sync::Mutex` with a perturbation point before every
    /// acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Locks, after a schedule perturbation.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::interleave();
            self.0.lock()
        }
    }

    /// `std::sync::Condvar` with perturbation points around wait and
    /// notify edges (where lost wakeups hide).
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a condition variable.
        pub fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        /// Waits on the condition, after a schedule perturbation.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::interleave();
            self.0.wait(guard)
        }

        /// Wakes one waiter, after a schedule perturbation.
        pub fn notify_one(&self) {
            crate::interleave();
            self.0.notify_one();
        }

        /// Wakes every waiter, after a schedule perturbation.
        pub fn notify_all(&self) {
            crate::interleave();
            self.0.notify_all();
        }
    }
}

/// Schedule-perturbing wrappers over `std::thread`.
pub mod thread {
    /// Handle to a spawned model thread.
    #[derive(Debug)]
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Joins the thread.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a thread whose start is itself a perturbation point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::interleave();
        JoinHandle(std::thread::spawn(move || {
            crate::interleave();
            f()
        }))
    }

    /// Cooperative yield.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}
