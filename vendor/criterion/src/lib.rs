#![allow(clippy::all)]
//! Offline stand-in for `criterion`.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the criterion API the workspace uses: [`Criterion`] with
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock loop (short warm-up, then enough
//! batches to fill the measurement window) reporting the mean time per
//! iteration — adequate for the relative before/after comparisons the
//! repo's benches make, without criterion's statistics machinery.

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimiser from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(120),
            measurement: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Runs `f` as a named benchmark and prints the mean iteration
    /// time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut b);
        println!(
            "bench: {name:<44} {:>14} /iter ({} iterations)",
            format_ns(b.mean_ns),
            b.iterations
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, retaining its output through a black box.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, also calibrating a batch size that keeps timer
        // overhead negligible.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
        self.iterations = iters;
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with(" s"));
    }
}
