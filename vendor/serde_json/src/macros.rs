//! The `json!` literal macro (a compact TT-muncher in the spirit of
//! serde_json's, covering the literal shapes this workspace writes).

/// Builds a [`crate::Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!(() $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: accumulates array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Finished.
    ([ $($done:expr),* $(,)? ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // Next element is a nested container or literal; munch up to the comma.
    ([ $($done:expr),* ] $next:tt , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:tt) => {
        $crate::json_array!([ $($done,)* $crate::json!($next) ])
    };
    // Expression elements that span multiple tokens.
    ([ $($done:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ])
    };
}

/// Internal: accumulates object entries as `key => value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Finished.
    (( $($key:expr => $val:expr),* $(,)? )) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $val); )*
        $crate::Value::Object(map)
    }};
    // Entry whose value is a nested container / keyword / single token.
    (( $($done:tt)* ) $key:literal : $val:tt , $($rest:tt)*) => {
        $crate::json_object!(( $($done)* $key => $crate::json!($val), ) $($rest)*)
    };
    (( $($done:tt)* ) $key:literal : $val:tt) => {
        $crate::json_object!(( $($done)* $key => $crate::json!($val) ))
    };
    // Entry whose value is a longer expression: munch to the next comma.
    (( $($done:tt)* ) $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(( $($done)* $key => $crate::Value::from($val), ) $($rest)*)
    };
    (( $($done:tt)* ) $key:literal : $val:expr) => {
        $crate::json_object!(( $($done)* $key => $crate::Value::from($val) ))
    };
}
