//! A strict recursive-descent JSON parser.

use crate::value::{Map, Number, Value};
use crate::{Error, FromJson};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_word("null").map(|()| Value::Null),
            Some(b't') => self.expect_word("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_word("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the raw slice.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document from a string.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Parses a complete JSON document from bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json(&v)
}
