//! Compact and pretty JSON printers.

use crate::value::Value;
use crate::{Error, ToJson};

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialises compactly.
pub fn to_string<T: ToJson>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&v.to_json(), &mut out);
    Ok(out)
}

/// Serialises with two-space indentation.
pub fn to_string_pretty<T: ToJson>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&v.to_json(), 0, &mut out);
    Ok(out)
}

/// Serialises compactly to bytes.
pub fn to_vec<T: ToJson>(v: &T) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

/// Serialises prettily to bytes.
pub fn to_vec_pretty<T: ToJson>(v: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(v).map(String::into_bytes)
}
