#![allow(clippy::all)]
//! Offline stand-in for `serde_json`.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the serde_json API the workspace actually uses: the
//! [`Value`] tree, the [`json!`] macro, a strict parser, compact and
//! pretty printers, and explicit [`ToJson`] / [`FromJson`] traits in
//! place of serde's derived ones. Types that need persistence (the nn
//! model files, the experiment records) implement the traits by hand.

mod de;
mod macros;
mod ser;
mod value;

pub use de::{from_slice, from_str};
pub use ser::{to_string, to_string_pretty, to_vec, to_vec_pretty};
pub use value::{Map, Number, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Explicit serialization to a [`Value`] — the stand-in for a derived
/// `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Explicit deserialization from a [`Value`] — the stand-in for a
/// derived `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

/// Converts any encodable value into a [`Value`].
pub fn to_value<T: ToJson>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<$t, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::msg("expected integer"))
            }
        }
    )*};
}
int_json!(i8, i16, i32, i64, u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Value) -> Result<u64, Error> {
        v.as_u64().ok_or_else(|| Error::msg("expected u64"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::from(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<f32, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}
