//! The JSON value tree.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation (sorted keys; insertion order is not preserved,
/// which is fine for the record/model files this workspace writes).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer-preserving like serde_json's.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside the i64 range.
    U64(u64),
    /// A float.
    F64(f64),
}

impl Number {
    /// The value as f64 (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as i64 when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            Number::F64(_) => None,
        }
    }

    /// The value as u64 when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v < 1.9e19 => Some(v as u64),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1.0e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no Inf/NaN; serialise as null like serde_json's
            // lossy float handling would reject — we keep it readable.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON document node.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key→value object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(f64::from(v)))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::I64(i)),
            Err(_) => Value::Number(Number::U64(v)),
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, u8, u16, u32);

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// Literal comparisons used by tests: `value["k"] == 1`, `v["id"] == "x"`.
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}
eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::ser::to_string(self).unwrap_or_default())
    }
}
