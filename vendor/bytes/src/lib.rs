#![allow(clippy::all)]
//! Offline stand-in for `bytes`.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the bytes API the workspace uses: [`BytesMut`] as a
//! growable buffer with little-endian put accessors, [`Bytes`] as its
//! frozen form, and the [`Buf`]/[`BufMut`] traits with the advancing
//! reads the `.npu` container parser relies on. Both buffer types are
//! plain `Vec<u8>` wrappers — no reference-counted slicing, which the
//! workspace never uses.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-side buffer operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Consume-side buffer operations; reads advance the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads exactly `dst.len()` bytes. Panics when too few remain,
    /// matching upstream bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_le_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"NPU!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 16);
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"NPU!");
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
