#![allow(clippy::all)]
//! Offline stand-in for `rayon`.
//!
//! The container has no registry access, so this crate supplies the
//! slice of the rayon API the workspace uses — `par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut` and the
//! `zip`/`enumerate`/`map`/`for_each`/`sum`/`collect` adapters — with
//! real data parallelism: work fans out over `std::thread::scope`
//! threads, one contiguous block per hardware thread, preserving item
//! order. There is no work stealing; the blocks are equal-sized, which
//! matches the regular per-item cost of the matmul rows and simulation
//! frames this workspace parallelises.

/// A materialised parallel iterator: the items to process plus the
/// adapters rayon callers chain onto them.
pub struct Par<I> {
    items: Vec<I>,
}

fn run_parallel<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous equal blocks, assigned in order so results concatenate
    // back into item order.
    let mut blocks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let base = n / workers;
    let extra = n % workers;
    let mut it = items.into_iter();
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        blocks.push(it.by_ref().take(len).collect());
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

impl<I: Send> Par<I> {
    /// Pairs items positionally with `other`'s items.
    pub fn zip<J: Send>(self, other: Par<J>) -> Par<(I, J)> {
        Par {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> Par<(usize, I)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Transforms every item in parallel.
    pub fn map<O, F>(self, f: F) -> Par<O>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        Par {
            items: run_parallel(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_parallel(self.items, f);
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I>,
    {
        self.items.into_iter().sum()
    }

    /// Collects the items in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Shared-reference parallel views over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<&T>;

    /// Parallel iterator over non-overlapping `size`-element chunks.
    fn par_chunks(&self, size: usize) -> Par<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> Par<&[T]> {
        Par {
            items: self.chunks(size).collect(),
        }
    }
}

/// Mutable parallel views over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<&mut T>;

    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<&mut T> {
        Par {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]> {
        Par {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Owning parallel iteration (ranges, vectors).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> Par<usize> {
        Par {
            items: self.collect(),
        }
    }
}

/// Everything a rayon caller needs in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_mutation_matches_sequential() {
        let src: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 1024];
        out.par_chunks_mut(64)
            .zip(src.par_chunks(64))
            .for_each(|(o, s)| {
                for (a, b) in o.iter_mut().zip(s) {
                    *a = b + 1.0;
                }
            });
        assert!(out.iter().zip(&src).all(|(a, b)| *a == b + 1.0));
    }

    #[test]
    fn enumerate_and_sum_work() {
        let v = vec![1usize; 257];
        let total: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 257);
        let mut out = vec![0usize; 33];
        out.par_chunks_mut(1).enumerate().for_each(|(i, c)| {
            c[0] = i;
        });
        assert_eq!(out, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter_collects() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 99 * 99);
    }
}
