#![allow(clippy::all)]
//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Actual JSON
//! encoding in this workspace goes through the explicit `ToJson` /
//! `FromJson` traits in the vendored `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no behaviour attached).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no behaviour attached).
pub trait Deserialize<'de> {}
