#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full workspace test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (release) =="
cargo test -q --release --workspace

echo "== serving layer (release) =="
cargo test -q --release -p netpu-serve

echo "== API doc-tests (release) =="
cargo test -q --release -p netpu-runtime --doc

echo "CI gate passed."
