#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full workspace test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask lint (panic-free hot paths, audited casts, doc gates) =="
cargo run -q -p xtask -- lint

echo "== cargo-deny (dependency policy) =="
if command -v cargo-deny >/dev/null 2>&1; then
    cargo deny check
elif [ "${CI:-}" = "true" ]; then
    # On CI the dependency policy is part of the gate: a runner image
    # without cargo-deny is a misconfigured runner, not a soft skip.
    echo "cargo-deny not installed but CI=true; failing" >&2
    exit 1
else
    echo "cargo-deny not installed; skipping (mandatory on CI)"
fi

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (release) =="
cargo test -q --release --workspace

echo "== translation validation: certify zoo + 1000 random streams (release) =="
# The symbolic-equivalence soundness gate (DESIGN.md §4.8): every
# honest compile of the model zoo and a deterministic 1000-model random
# sweep must certify equivalent with zero false inequivalences, and
# every emitted certificate must re-validate from scratch.
cargo run -q --release -p xtask -- certify 1000

echo "== timing certification: cycle-exact model over zoo + 1000 random streams x all sweep instances (release) =="
# The timing-soundness gate (DESIGN.md §4.9): the closed-form cycle
# model must equal the tick simulator's counter — zero tolerance — on
# the full zoo (both BN modes, both packings), 1000 deterministic
# random models, and every fuzzer sweep instance, plus the burst
# extrapolation.
cargo run -q --release -p xtask -- certify-timing 1000

echo "== design-space exploration smoke (frontier artifact reproducibility, release) =="
# Re-runs the TFC-W1A1 search and fails if the committed Pareto
# frontier artifact is stale or the paper's hand-picked instance is no
# longer reproduced/dominated.
cargo run -q --release -p xtask -- dse --smoke

echo "== serving layer (release) =="
cargo test -q --release -p netpu-serve

echo "== batch throughput smoke (bitsliced kernel, release) =="
cargo run -q --release --example batch_throughput

echo "== fleet traffic-replay smoke (seeded, deterministic, release) =="
# The example runs the live sharded server, then replays the seeded
# smoke workload under both dispatch policies and asserts determinism,
# the compiled-cache hit rate, and the swap-aware reduction.
cargo run -q --release --example fleet

echo "== API doc-tests (release) =="
cargo test -q --release -p netpu-runtime --doc

echo "== stream fuzzer smoke (coverage-guided, seeded, release) =="
# A short deterministic campaign over the admission/simulator
# differential oracle; any crasher class fails the gate. The committed
# regression fixtures replay separately in the workspace test suite.
cargo run -q --release -p netpu-fuzz -- --iters 512 --seed 7

echo "== loom model check (admission queue, debug profile) =="
RUSTFLAGS="--cfg loom" cargo test -q -p netpu-serve --test loom

echo "== loom model check (crash-only recovery, debug profile) =="
RUSTFLAGS="--cfg loom" cargo test -q -p netpu-serve --test loom_crash

echo "== loom model check (fleet shutdown vs dispatch, debug profile) =="
RUSTFLAGS="--cfg loom" cargo test -q -p netpu-fleet --test loom

echo "== miri (netpu-arith cast/fixed modules), when available =="
# Optional UB hunt over the arithmetic kernels every other crate leans
# on. Miri needs a nightly toolchain; soft-skip where none is installed.
if rustup run nightly cargo miri --version >/dev/null 2>&1; then
    rustup run nightly cargo miri test -p netpu-arith cast:: fixed::
else
    echo "nightly cargo-miri not available; skipping"
fi

echo "CI gate passed."
