#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full workspace test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask lint (panic-free hot paths, audited casts, doc gates) =="
cargo run -q -p xtask -- lint

echo "== cargo-deny (dependency policy), when installed =="
if command -v cargo-deny >/dev/null 2>&1; then
    cargo deny check
else
    echo "cargo-deny not installed; skipping"
fi

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (release) =="
cargo test -q --release --workspace

echo "== serving layer (release) =="
cargo test -q --release -p netpu-serve

echo "== API doc-tests (release) =="
cargo test -q --release -p netpu-runtime --doc

echo "== loom model check (admission queue, debug profile) =="
RUSTFLAGS="--cfg loom" cargo test -q -p netpu-serve --test loom

echo "CI gate passed."
