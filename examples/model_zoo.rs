//! Runs the paper's six evaluation models (TFC/SFC/LFC × precision)
//! through one NetPU-M instance and prints a Table V/VI-style summary,
//! alongside the FINN baseline instances for scale.
//!
//! ```sh
//! cargo run --release --example model_zoo
//! ```

use netpu::finn::{instance_utilization, FinnInstance};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::{Driver, PowerParams};

fn main() {
    let driver = Driver::builder().build();
    println!("NetPU-M (one instance, runtime-reconfigured per model):\n");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>9}",
        "model", "weights", "sim us", "measured us", "power W"
    );
    for zm in ZooModel::ALL {
        let qm = zm.build_untrained(1, BnMode::Folded).expect("build");
        let pixels = vec![128u8; qm.input.len];
        let run = driver.infer(&qm, &pixels).expect("infer");
        println!(
            "{:<10} {:>10} {:>14.2} {:>14.2} {:>9.2}",
            zm.name(),
            zm.weight_count(),
            run.sim_latency_us,
            run.measured_latency_us,
            run.power_w
        );
    }

    println!("\nFINN HSD baselines (one dedicated bitstream per model):\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9}",
        "instance", "LUTs", "BRAM36", "us", "power W"
    );
    let zc = PowerParams::zc706();
    for inst in FinnInstance::table6() {
        let u = instance_utilization(&inst);
        println!(
            "{:<10} {:>10} {:>12.1} {:>10.2} {:>9.1}",
            inst.name,
            u.luts,
            u.bram36,
            inst.latency_us(),
            zc.wall_power_w(&u, inst.clock_mhz)
        );
    }
    println!(
        "\ntrade-off: FINN-max wins latency by orders of magnitude on its one model;\n\
         NetPU-M serves all six models from a single bitstream at the lowest power."
    );
}
