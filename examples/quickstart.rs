//! Quickstart: train a small quantized MLP, lower it to a NetPU-M
//! loadable, and run it on the cycle-accurate accelerator model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netpu::compiler;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::dataset;
use netpu::nn::export::BnMode;
use netpu::nn::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
use netpu::nn::train::{train, TrainConfig};
use netpu::nn::{export, metrics};

fn main() {
    // 1. A dataset: synthetic MNIST-shaped digits (deterministic).
    let (train_ds, test_ds) = dataset::standard_splits(2_000, 300, 42);

    // 2. A 2-bit quantized MLP: 784 → 64 → 64 → 10 with BatchNorm.
    let spec = MlpSpec {
        name: "quickstart-w2a2".into(),
        input_len: dataset::IMAGE_PIXELS,
        input_act: ActSpec::Hwgq { bits: 2 },
        layers: vec![
            LayerSpec {
                neurons: 64,
                weight_bits: 2,
                act: ActSpec::Hwgq { bits: 2 },
                batch_norm: true,
            },
            LayerSpec {
                neurons: 64,
                weight_bits: 2,
                act: ActSpec::Hwgq { bits: 2 },
                batch_norm: true,
            },
            LayerSpec {
                neurons: 10,
                weight_bits: 2,
                act: ActSpec::None,
                batch_norm: true,
            },
        ],
    };

    // 3. Quantization-aware training.
    let mut model = FloatMlp::init(spec, 7);
    let report = train(
        &mut model,
        &train_ds,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
    );
    println!(
        "trained: loss {:.3} → {:.3}, train accuracy {:.1}%",
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap(),
        report.final_train_accuracy * 100.0
    );

    // 4. Streamline: fold BatchNorm + quantizers into integer thresholds.
    let qmodel = export::export(
        &model,
        &export::ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .expect("export");
    println!(
        "exported {}: {} layers, {} weights, test accuracy {:.1}%",
        qmodel.name,
        qmodel.layer_count(),
        qmodel.weight_count(),
        metrics::accuracy(&qmodel, &test_ds) * 100.0
    );

    // 5. Compile model + one input into the §III.B.3 data stream and run
    //    it through the cycle-level NetPU-M instance.
    let example = &test_ds.examples[0];
    let loadable = compiler::compile(&qmodel, &example.pixels).expect("compile");
    println!("loadable: {} x 64-bit words", loadable.len());

    let run = run_inference(&HwConfig::paper_instance(), loadable.words).expect("inference");
    println!(
        "accelerator: class {} (truth {}), {} cycles = {:.2} us at 100 MHz",
        run.class, example.label, run.cycles, run.latency_us
    );
    let weight_cycles: u64 = run.stats.layers.iter().map(|l| l.weight_cycles).sum();
    println!(
        "cycle breakdown: {} weight-stream, {} param-ingest, {} init, {} drain",
        weight_cycles,
        run.stats.param_cycles,
        run.stats.layers.iter().map(|l| l.init_cycles).sum::<u64>(),
        run.stats.layers.iter().map(|l| l.drain_cycles).sum::<u64>(),
    );
}
