//! The paper's future-work extensions, implemented and runnable:
//!
//! 1. `.npu` loadable files — offline pre-packaging (§III.B.3).
//! 2. SoftMax output (§III.B.1 future work) — per-class probabilities.
//! 3. Dense low-precision weight packing (§V future work).
//! 4. Multi-FPGA deployment (§I.B scenario) — where board scaling
//!    saturates on the shared stream link.
//!
//! ```sh
//! cargo run --release --example extensions
//! ```

use netpu::compiler::{compile_packed, Loadable, PackingMode};
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::{Cluster, Driver};

fn main() {
    let model = ZooModel::TfcW2A2
        .build_untrained(11, BnMode::Folded)
        .unwrap();
    let pixels = vec![128u8; 784];

    // 1. Pre-package a loadable to disk and stream it back.
    let loadable = netpu::compiler::compile(&model, &pixels).unwrap();
    let path = std::env::temp_dir().join("tfc_w2a2.npu");
    loadable.save(&path).unwrap();
    let restored = Loadable::load(&path).unwrap();
    println!(
        "1. .npu container: {} words, {} bytes on disk, CRC-checked roundtrip: {}",
        restored.len(),
        std::fs::metadata(&path).unwrap().len(),
        restored == loadable
    );
    let _ = std::fs::remove_file(&path);

    // 2. SoftMax output: an instance with the exp unit streams one
    //    Q16.16 exponential per class behind the MaxOut word.
    let softmax_hw = HwConfig {
        softmax_output: true,
        ..HwConfig::paper_instance()
    };
    let run = run_inference(&softmax_hw, restored.words.clone()).unwrap();
    let probs = run.probabilities.unwrap();
    print!("2. SoftMax probabilities: ");
    for (i, p) in probs.iter().enumerate() {
        if *p > 0.01 {
            print!("P({i})={p:.3} ");
        }
    }
    println!("→ class {}", run.class);

    // 3. Dense weight packing: same model, 2-bit weights at native width.
    let dense_hw = HwConfig {
        dense_weight_packing: true,
        ..HwConfig::paper_instance()
    };
    let dense = compile_packed(&model, &pixels, PackingMode::Dense).unwrap();
    let lane_run = run_inference(&dense_hw, restored.words.clone()).unwrap();
    let dense_run = run_inference(&dense_hw, dense.words.clone()).unwrap();
    println!(
        "3. dense packing: stream {} → {} words ({:.1}x), latency {:.1} → {:.1} us ({:.2}x) — \
         the bottleneck moves from loading to the 8 multiplier lanes",
        restored.len(),
        dense.len(),
        restored.len() as f64 / dense.len() as f64,
        lane_run.latency_us,
        dense_run.latency_us,
        lane_run.latency_us / dense_run.latency_us,
    );

    // 4. Multi-board scaling under one host DMA engine.
    println!("4. multi-FPGA cluster throughput (SFC-w1a1):");
    let sfc = ZooModel::SfcW1A1
        .build_untrained(11, BnMode::Folded)
        .unwrap();
    for boards in [1usize, 2, 4, 8] {
        let cluster = Cluster::new(boards, Driver::builder().build());
        let t = cluster.throughput(&sfc).unwrap();
        println!(
            "   {boards} board(s): {:>7.0} fps (compute bound {:>7.0}, stream bound {:>7.0}), {:>5.1} W",
            t.fps, t.compute_bound_fps, t.transfer_bound_fps, cluster.power_w()
        );
    }
    let useful = Cluster::new(1, Driver::builder().build())
        .useful_boards(&sfc)
        .unwrap();
    println!(
        "   boards beyond {useful} buy nothing: NetPU-M re-streams weights every inference,\n   \
         so the shared stream link saturates first (the §V bottleneck at system scale)."
    );
}
