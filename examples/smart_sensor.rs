//! The paper's §I motivating deployment: an always-on smart sensor on
//! a low-power MCU + mid-range FPGA. A tiny mixed-precision MLP
//! classifies 64-sample waveform windows (sine / square / transient
//! spike / noise); the MCU's "runtime" is nothing but streaming
//! pre-packaged loadables — no driver stack.
//!
//! ```sh
//! cargo run --release --example smart_sensor
//! ```

use netpu::core::resources::{netpu_utilization, ULTRA96_V2};
use netpu::nn::export::{export, BnMode, ExportConfig};
use netpu::nn::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
use netpu::nn::sensor::{self, SENSOR_CLASSES, WINDOW};
use netpu::nn::train::{train, TrainConfig};
use netpu::nn::{metrics, reference};
use netpu::runtime::Driver;

fn main() {
    // A sensor-scale network: 64 → 24 → 16 → 4 with binary weights in
    // the middle layer (the sensor budget is tight).
    let spec = MlpSpec {
        name: "waveform-monitor".into(),
        input_len: WINDOW,
        input_act: ActSpec::Hwgq { bits: 2 },
        layers: vec![
            LayerSpec {
                neurons: 48,
                weight_bits: 2,
                act: ActSpec::Hwgq { bits: 2 },
                batch_norm: true,
            },
            LayerSpec {
                neurons: 24,
                weight_bits: 1,
                act: ActSpec::Hwgq { bits: 2 },
                batch_norm: true,
            },
            LayerSpec {
                neurons: SENSOR_CLASSES,
                weight_bits: 2,
                act: ActSpec::None,
                batch_norm: true,
            },
        ],
    };

    let (train_ds, test_ds) = sensor::splits(2_400, 300, 77);
    let mut fm = FloatMlp::init(spec, 21);
    train(
        &mut fm,
        &train_ds,
        &TrainConfig {
            epochs: 20,
            lr: 0.05,
            ..TrainConfig::default()
        },
    );
    let qm = export(
        &fm,
        &ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .expect("export");
    println!(
        "model {}: {} weights, test accuracy {:.1}%",
        qm.name,
        qm.weight_count(),
        metrics::accuracy(&qm, &test_ds) * 100.0
    );

    // The sensor's duty cycle: one window per millisecond budget.
    let driver = Driver::builder().build();
    let class_names = ["sine", "square", "spike", "noise"];
    let mut correct = 0;
    let mut latency = 0.0;
    for e in test_ds.examples.iter().take(12) {
        let run = driver.infer(&qm, &e.pixels).expect("infer");
        latency = run.measured_latency_us;
        let ok = run.class == e.label as usize;
        correct += usize::from(ok);
        println!(
            "  window → {:<6} (truth {:<6}) {}",
            class_names[run.class],
            class_names[e.label as usize],
            if ok { "✓" } else { "✗" }
        );
        assert_eq!(run.class, reference::infer(&qm, &e.pixels));
    }
    println!("\nsampled 12 windows: {correct}/12 correct");
    println!(
        "latency {latency:.1} us per window → max duty {:.0} windows/s on one instance",
        1e6 / latency
    );
    let util = netpu_utilization(&driver.hw);
    println!(
        "the same bitstream that serves LFC-1024 serves this 64-input sensor net:\n\
         {} LUTs ({:.0}% of the Ultra96) — no regeneration between workloads.",
        util.luts,
        util.rates(&ULTRA96_V2).luts * 100.0
    );
}
