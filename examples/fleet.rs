//! Sharded multi-tenant fleet serving: many tenants × many models over
//! a compiled-model cache and swap-aware board scheduling.
//!
//! Two acts. First a live `FleetServer` run: three tenants share four
//! models across 2 shards × 2 boards; every model is compiled and
//! admitted (NPC001–NPC020) exactly once, then every later request
//! splices its input into the cached loadable. Second, the
//! deterministic virtual-time traffic replay that backs the
//! `BENCH_serve.json` fleet rows — swap-aware placement vs naive FIFO
//! on the same seeded bursty workload. The replay is a pure function of
//! its config, so this example doubles as the CI smoke check: it
//! asserts determinism, the cache hit rate, and the swap reduction.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use std::sync::Arc;

use netpu::fleet::{
    run_replay, DispatchPolicy, FleetConfig, FleetRequest, FleetServer, ReplayConfig,
};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::Driver;

fn main() {
    // --- Act 1: the live sharded server. ---
    let driver = Driver::builder().build();
    let server = FleetServer::start(
        driver.clone(),
        FleetConfig {
            shards: 2,
            boards_per_shard: 2,
            ..FleetConfig::default()
        },
    );

    let models: Vec<Arc<_>> = [
        (ZooModel::TfcW1A1, 101u64),
        (ZooModel::SfcW1A1, 102),
        (ZooModel::TfcW2A2, 103),
        (ZooModel::SfcW2A2, 104),
    ]
    .iter()
    .map(|(zoo, seed)| Arc::new(zoo.build_untrained(*seed, BnMode::Folded).unwrap()))
    .collect();

    let mut tickets = Vec::new();
    for i in 0..24usize {
        let model_idx = i % models.len();
        let model = Arc::clone(&models[model_idx]);
        let pixels = vec![(i as u8).wrapping_mul(37); model.input.len];
        tickets.push(
            server
                .submit(FleetRequest {
                    tenant: (i % 3) as u64,
                    model_id: model_idx as u64,
                    model,
                    pixels,
                    deadline_us: None,
                })
                .expect_accepted(),
        );
    }
    let mut served = 0usize;
    let mut resident_hits = 0usize;
    for t in tickets {
        let resp = t.wait().expect("fleet request failed");
        served += 1;
        resident_hits += usize::from(resp.resident_hit);
    }
    let m = server.shutdown();
    println!(
        "live fleet: served {served}/{} ({} resident-weight hits), cache {} misses / {} hits, \
         swaps/placement {:.2}",
        m.submitted,
        resident_hits,
        m.cache.misses,
        m.cache.hits,
        m.swaps_per_placement().unwrap_or(0.0),
    );
    assert_eq!(
        m.cache.misses as usize,
        models.len(),
        "each model admits exactly once"
    );

    // --- Act 2: the deterministic replay (the CI smoke gate). ---
    let cfg = ReplayConfig::smoke();
    let aware = run_replay(&driver, &cfg).expect("swap-aware replay");
    let naive = run_replay(&driver, &cfg.clone().with_policy(DispatchPolicy::NaiveFifo))
        .expect("naive replay");
    let again = run_replay(&driver, &cfg).expect("replay rerun");

    println!(
        "replay ({} boards, {} models, {} requests, seed {}):",
        aware.boards, aware.models, aware.offered, aware.seed
    );
    for r in [&naive, &aware] {
        println!(
            "  {:<10} p50 {:>7.1} us  p99 {:>8.1} us  swaps/req {:.3}  resident-hit {:.3}  \
             cache-hit {:.4}  fps {:.0}",
            r.policy,
            r.p50_us,
            r.p99_us,
            r.swaps_per_request,
            r.resident_hit_rate,
            r.cache_hit_rate,
            r.measured_fps,
        );
    }

    // The smoke assertions CI leans on.
    assert_eq!(aware, again, "replay must be deterministic");
    assert_eq!(aware.completed + aware.throttled, aware.offered);
    assert!(
        aware.cache_hit_rate > 0.9,
        "cache hit rate {}",
        aware.cache_hit_rate
    );
    assert!(
        aware.swaps_per_request < naive.swaps_per_request,
        "swap-aware must beat naive FIFO on swaps/request"
    );
    assert!(
        aware.bound_ratio <= 1.0 + 1e-6,
        "schedule beat the analytic bound"
    );
    println!(
        "replay smoke passed: deterministic, cache hit {:.1}%, swaps/request {:.3} -> {:.3} \
         ({:.0}% fewer)",
        aware.cache_hit_rate * 100.0,
        naive.swaps_per_request,
        aware.swaps_per_request,
        (1.0 - aware.swaps_per_request / naive.swaps_per_request) * 100.0
    );
}
