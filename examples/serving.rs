//! Multi-board serving (§I.B at system scale): a host fans inference
//! requests out to four NetPU-M boards behind one shared DMA engine,
//! with a bounded admission queue, per-request deadlines, and retry on
//! injected stream faults.
//!
//! Because NetPU-M re-streams weights on every inference, the shared
//! stream link — not the boards — caps throughput. The server's
//! measured saturation rate reproduces the analytic
//! `min(boards/latency, 1/transfer)` bound the `Cluster` model
//! predicts.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::{Cluster, Driver, DriverError, InferRequest};
use netpu::serve::{FaultPlan, RejectReason, Server, ServerConfig, Submit};

fn main() {
    let driver = Driver::builder().build();
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let loadable = netpu::compiler::compile(&model, &vec![100u8; 784]).unwrap();

    // What the analytic model predicts for four boards.
    let analytic = Cluster::new(4, driver.clone()).throughput(&model).unwrap();
    println!(
        "analytic 4-board bound: {:.0} fps (compute {:.0}, transfer {:.0} — {}-bound)",
        analytic.fps,
        analytic.compute_bound_fps,
        analytic.transfer_bound_fps,
        if analytic.fps == analytic.transfer_bound_fps {
            "transfer"
        } else {
            "compute"
        }
    );

    // An executing server: 4 boards, a small bounded queue, a retry
    // budget, and a fault plan that kills every first delivery attempt.
    let server = Server::start(
        driver,
        ServerConfig {
            boards: 4,
            queue_capacity: 32,
            default_deadline_us: Some(50_000.0),
            max_retries: 2,
            faults: FaultPlan::FailFirstAttempts(1),
            strict_range: true,
            ..ServerConfig::default()
        },
    );

    // Offer more load than the queue admits: backpressure is explicit.
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for _ in 0..192 {
        match server.submit(InferRequest::loadable(loadable.clone())) {
            Submit::Accepted(t) => tickets.push(t),
            Submit::Denied(RejectReason::QueueFull { queue_len }) => {
                shed += 1;
                debug_assert_eq!(queue_len, 32);
            }
            Submit::Denied(reason) => unreachable!("unexpected denial: {reason}"),
        }
    }
    println!(
        "offered 192 requests: {} admitted, {} shed at the bounded queue",
        tickets.len(),
        shed
    );

    let mut ok = 0usize;
    let mut late = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(served) => {
                ok += 1;
                assert_eq!(served.attempts, 2, "fault plan fails attempt one");
            }
            Err(DriverError::Timeout { .. }) => late += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    println!("served {ok} requests (every one retried once), {late} missed the deadline");

    let m = server.shutdown();
    println!(
        "counters: accepted {} rejected {} retried {} timed-out {} failed {}",
        m.accepted, m.rejected, m.retried, m.timed_out, m.failed
    );
    println!(
        "queue high-water {} (bound 32), dma busy {:.0}% of the {:.0} us makespan",
        m.queue_high_water,
        m.dma_utilization() * 100.0,
        m.makespan_us
    );
    for (b, util) in m.board_utilization().iter().enumerate() {
        println!("  board {b}: {:.0}% busy", util * 100.0);
    }
    if let Some(fps) = m.measured_fps() {
        println!(
            "measured {fps:.0} fps vs analytic {:.0} fps for fault-free serving — \
             every request streamed twice, so the transfer-bound rate halves",
            analytic.fps
        );
    }
    println!("latency histogram (virtual us):");
    for (edge, count) in &m.latency_histogram {
        if *count > 0 {
            println!("  <= {edge:>8.0}: {count}");
        }
    }
}
