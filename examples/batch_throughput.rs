//! Fast batch-throughput smoke check for CI (no criterion): the
//! batch-major bitsliced fast path must stay bit-exact against the
//! per-frame phase-skipping simulation and conservatively faster than
//! the scalar per-frame path. The full trajectory lives in the
//! `sim_fastpath` bench (`BENCH_sim.json`); this is the cheap guard
//! that fails CI if the batch kernel silently degrades.

use netpu::core::{run_batch_fast, run_inference_fast, BatchEngine, HwConfig};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use std::time::Instant;

fn main() {
    let cfg = HwConfig::paper_instance();
    let model = ZooModel::TfcW1A1
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    assert!(
        BatchEngine::new(&model).is_bitsliced(),
        "TFC-w1a1 must take the bitsliced batch path"
    );
    let frames: Vec<Vec<u8>> = (0..256)
        .map(|f| {
            (0..model.input.len)
                .map(|i| ((i * 31 + f * 17 + 5) % 251) as u8)
                .collect()
        })
        .collect();

    // Correctness: the batch fast path is indistinguishable from
    // running the per-frame fast path on every sampled frame.
    let batch = run_batch_fast(&cfg, &model, &frames).expect("batch fast path");
    assert_eq!(batch.len(), frames.len());
    for (run, px) in batch.iter().zip(&frames).step_by(37) {
        let words = netpu::compiler::compile(&model, px).expect("compile").words;
        let single = run_inference_fast(&cfg, words).expect("single fast path");
        assert_eq!(run, &single, "batch diverged from the per-frame fast path");
    }

    // Throughput: scalar per-frame (compile + phase-skipping sim each
    // frame) vs the slab-swept batch path. The bench records ~29x on
    // this model; CI only asserts a conservative floor.
    let scalar_n = 24;
    let start = Instant::now();
    for px in frames.iter().take(scalar_n) {
        let words = netpu::compiler::compile(&model, px).expect("compile").words;
        run_inference_fast(&cfg, words).expect("scalar fast path");
    }
    let scalar_fps = scalar_n as f64 / start.elapsed().as_secs_f64();

    run_batch_fast(&cfg, &model, &frames).expect("warmup"); // warm caches
    let iters = 3;
    let start = Instant::now();
    for _ in 0..iters {
        run_batch_fast(&cfg, &model, &frames).expect("batch fast path");
    }
    let batch_fps = (iters * frames.len()) as f64 / start.elapsed().as_secs_f64();

    let speedup = batch_fps / scalar_fps;
    println!(
        "batch_throughput smoke: scalar {scalar_fps:.0} fps, bitsliced batch {batch_fps:.0} fps \
         ({speedup:.1}x) on {}",
        model.name
    );
    assert!(
        speedup > 4.0,
        "bitsliced batch path regressed: only {speedup:.1}x over scalar (want > 4x)"
    );
}
