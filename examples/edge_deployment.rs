//! The paper's motivating scenario (§I): a lightweight edge device — a
//! low-power MCU plus a mid-range FPGA — must serve *several different*
//! network models. An HSD design would need one bitstream per model; a
//! PEM overlay would need a heavy runtime. NetPU-M serves all of them
//! with one bitstream and pure data streaming.
//!
//! This example deploys three differently-sized, differently-quantized
//! models onto one simulated instance, switching between them at
//! runtime, and checks the whole thing against the device's resource
//! and power envelope.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use netpu::core::resources::{netpu_utilization, ULTRA96_V2};
use netpu::nn::dataset;
use netpu::nn::export::BnMode;
use netpu::nn::train::TrainConfig;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::Driver;

fn main() {
    let driver = Driver::builder().build();

    // The edge device's budget.
    let util = netpu_utilization(&driver.hw);
    let rates = util.rates(&ULTRA96_V2);
    println!("device: {}", ULTRA96_V2.name);
    println!(
        "bitstream: {} LUTs ({:.0}%), {} DSPs ({:.0}%), {:.1} BRAM36 ({:.0}%) — fits: {}",
        util.luts,
        rates.luts * 100.0,
        util.dsps,
        rates.dsps * 100.0,
        util.bram36,
        rates.bram36 * 100.0,
        util.fits(&ULTRA96_V2)
    );

    // Three workloads sharing the device: a fast binary screener, a
    // 2-bit classifier, and a larger 2-bit model for hard cases.
    let (train_ds, test_ds) = dataset::standard_splits(2_000, 60, 9);
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let workloads = [
        ("screener", ZooModel::TfcW1A1),
        ("classifier", ZooModel::TfcW2A2),
        ("escalation", ZooModel::SfcW2A2),
    ];

    println!("\ntraining {} models…", workloads.len());
    let models: Vec<_> = workloads
        .iter()
        .map(|(role, zm)| {
            let (_, qm) = zm.train(&train_ds, &cfg, BnMode::Folded).expect("train");
            (role, qm)
        })
        .collect();

    // Runtime: stream whichever model the request needs — no
    // reconfiguration, no driver stack, just a different loadable.
    println!("\nper-request model switching on one instance:");
    let mut correct = 0usize;
    let mut total_energy_uj = 0.0;
    for (i, example) in test_ds.examples.iter().enumerate() {
        let (role, qm) = &models[i % models.len()];
        let run = driver.infer(qm, &example.pixels).expect("infer");
        correct += usize::from(run.class == example.label as usize);
        total_energy_uj += run.energy_uj;
        if i < 6 {
            println!(
                "  request {i}: {role:<11} → class {} (truth {}), {:.1} us, {:.0} uJ",
                run.class, example.label, run.measured_latency_us, run.energy_uj
            );
        }
    }
    println!(
        "\nserved {} mixed requests: {:.0}% correct, {:.1} mJ total, {:.2} W wall power",
        test_ds.len(),
        100.0 * correct as f64 / test_ds.len() as f64,
        total_energy_uj / 1000.0,
        driver.power.wall_power_w(&util, driver.hw.clock_mhz)
    );
    println!("no hardware regeneration performed between requests.");
}
