//! Mixed-precision inference: NetPU-M lets *each layer* run at its own
//! weight/activation precision and activation function (§III.B.1 —
//! "the data precision in different layers can also be different").
//!
//! This example hand-builds a model whose layers deliberately differ:
//! a 4-bit Multi-Threshold input, a 4-bit hidden layer on the ReLU+QUAN
//! path with hardware BatchNorm, a binary-weight hidden layer, and an
//! 8-bit-score output — then verifies the accelerator runs it bit-exactly.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```

use netpu::arith::{Fix, Precision, QuantParams};
use netpu::compiler;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::qmodel::{
    BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp,
};
use netpu::nn::reference;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mt_row(levels: i32, step: i32) -> Vec<Fix> {
    (1..=levels).map(|k| Fix::from_i32(k * step)).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let input_len = 64usize;

    // Layer widths and precisions chosen to exercise every datapath:
    //   input  : 8-bit pixels → 4-bit Multi-Threshold levels
    //   hidden1: 4-bit weights, ReLU + QUAN path, hardware BN → 4-bit out
    //   hidden2: 1-bit weights on the integer path (w1a4) → 2-bit out
    //   output : 2-bit weights, hardware BN scores + MaxOut
    let h1 = 24usize;
    let h2 = 16usize;
    let classes = 4usize;

    let rand_weights = |rng: &mut StdRng, n: usize, lo: i32, hi: i32| -> Vec<i32> {
        (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
    };

    let model = QuantMlp {
        name: "mixed-precision-demo".into(),
        input: InputLayer {
            len: input_len,
            out_precision: Precision::W4,
            activation: LayerActivation::MultiThreshold {
                thresholds: vec![mt_row(15, 16); input_len],
            },
        },
        hidden: vec![
            HiddenLayer {
                in_len: input_len,
                neurons: h1,
                weight_precision: Precision::W4,
                in_precision: Precision::W4,
                out_precision: Precision::W4,
                weights: rand_weights(&mut rng, h1 * input_len, -8, 7),
                bias: None,
                bn: Some(
                    (0..h1)
                        .map(|_| BnParams {
                            scale_q16: Fix::q16_scale_from_f64(0.01),
                            offset: Fix::from_f64(1.0),
                        })
                        .collect(),
                ),
                activation: LayerActivation::Relu {
                    quant: QuantParams::from_f64(4.0, 0.5),
                },
            },
            HiddenLayer {
                in_len: h1,
                neurons: h2,
                weight_precision: Precision::W1, // binary weights…
                in_precision: Precision::W4,     // …on the integer path (w1a4)
                out_precision: Precision::W2,
                weights: (0..h2 * h1)
                    .map(|_| if rng.gen() { 1 } else { -1 })
                    .collect(),
                bias: Some(vec![0; h2]),
                bn: None,
                activation: LayerActivation::MultiThreshold {
                    thresholds: vec![mt_row(3, 12); h2],
                },
            },
        ],
        output: OutputLayer {
            in_len: h2,
            neurons: classes,
            weight_precision: Precision::W2,
            in_precision: Precision::W2,
            weights: rand_weights(&mut rng, classes * h2, -2, 1),
            bias: None,
            bn: Some(vec![BnParams::IDENTITY; classes]),
        },
    };
    model.validate().expect("mixed-precision model is valid");
    println!("model: {}", model.name);
    for (i, h) in model.hidden.iter().enumerate() {
        println!(
            "  hidden {}: w{} a{} → {} ({:?}, BN {})",
            i + 1,
            h.weight_precision.bits(),
            h.in_precision.bits(),
            h.out_precision,
            h.activation.kind(),
            if h.bn.is_some() { "hardware" } else { "folded" },
        );
    }

    // Run a few random inputs through both the bit-exact reference and
    // the cycle-level accelerator.
    let cfg = HwConfig::paper_instance();
    for trial in 0..4 {
        let pixels: Vec<u8> = (0..input_len).map(|_| rng.gen()).collect();
        let trace = reference::infer_traced(&model, &pixels);
        let loadable = compiler::compile(&model, &pixels).expect("compile");
        let run = run_inference(&cfg, loadable.words).expect("run");
        assert_eq!(run.class, trace.class, "accelerator diverged");
        assert_eq!(run.score, trace.scores[trace.class]);
        println!(
            "trial {trial}: class {} score {} in {} cycles ({:.2} us) — bit-exact ✓",
            run.class, run.score, run.cycles, run.latency_us
        );
    }
    println!("\nall four datapath variants ran in one stream-configured instance.");
}
