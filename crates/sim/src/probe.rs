//! Datapath value probe for differential range-analysis testing.
//!
//! A [`DatapathProbe`] is threaded through the accelerator model next to
//! the [`Tracer`](crate::Tracer); when enabled it records every
//! intermediate datapath value — per-neuron accumulators, post-BN words,
//! activation levels, and output scores — as raw integers. The
//! `netpu-check` soundness suite replays probed runs against the
//! abstract interpreter's predicted intervals: every sample must land
//! inside its statically proved bound.
//!
//! Unlike the tracer the probe is unbounded (a soundness run must see
//! *every* value, not the most recent window), so it is strictly a test
//! and tooling hook. Disabled probes hold no buffer and cost one branch
//! per call site.

/// Which datapath stage a sample was taken from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeStage {
    /// Post-bias accumulator value entering the post-MAC stages.
    Accumulator,
    /// Post-BatchNorm value as a raw fixed-point word.
    PostBn,
    /// Activation output level (input and hidden layers).
    Level,
    /// Output-layer score as a raw fixed-point word.
    Score,
}

/// One recorded datapath value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProbeSample {
    /// Hardware layer index (input = 0).
    pub layer: usize,
    /// Neuron index within the layer.
    pub neuron: usize,
    /// Stage the value was observed at.
    pub stage: ProbeStage,
    /// The observed value. Accumulators and levels are plain integers;
    /// `PostBn` / `Score` are raw fixed-point words (the probe lives
    /// below the arithmetic crate, so no `Fix` here).
    pub value: i64,
}

/// An all-stages datapath value recorder.
#[derive(Clone, Debug, Default)]
pub struct DatapathProbe {
    enabled: bool,
    layer: usize,
    samples: Vec<ProbeSample>,
}

impl DatapathProbe {
    /// A disabled probe: every `record` call is a no-op and no buffer is
    /// ever allocated.
    pub fn disabled() -> DatapathProbe {
        DatapathProbe::default()
    }

    /// An enabled probe recording every datapath value.
    pub fn enabled() -> DatapathProbe {
        DatapathProbe {
            enabled: true,
            layer: 0,
            samples: Vec::new(),
        }
    }

    /// `true` when samples are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the hardware layer index stamped onto subsequent samples.
    #[inline]
    pub fn set_layer(&mut self, layer: usize) {
        self.layer = layer;
    }

    /// Records one value. No-op (and no allocation) when disabled.
    #[inline]
    pub fn record(&mut self, neuron: usize, stage: ProbeStage, value: i64) {
        if !self.enabled {
            return;
        }
        self.samples.push(ProbeSample {
            layer: self.layer,
            neuron,
            stage,
            value,
        });
    }

    /// Recorded samples in observation order.
    pub fn samples(&self) -> &[ProbeSample] {
        &self.samples
    }

    /// Allocated sample capacity — zero for a probe that never enabled,
    /// which is what the zero-overhead test pins.
    pub fn capacity(&self) -> usize {
        self.samples.capacity()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Consumes the probe, returning the samples in observation order.
    pub fn into_samples(self) -> Vec<ProbeSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing_and_never_allocates() {
        let mut p = DatapathProbe::disabled();
        for i in 0..1000 {
            p.record(i, ProbeStage::Accumulator, i as i64);
        }
        assert!(p.is_empty());
        assert_eq!(p.capacity(), 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn enabled_probe_stamps_current_layer() {
        let mut p = DatapathProbe::enabled();
        p.record(3, ProbeStage::Level, 7);
        p.set_layer(2);
        p.record(0, ProbeStage::Score, -64);
        let s = p.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0],
            ProbeSample {
                layer: 0,
                neuron: 3,
                stage: ProbeStage::Level,
                value: 7
            }
        );
        assert_eq!(
            s[1],
            ProbeSample {
                layer: 2,
                neuron: 0,
                stage: ProbeStage::Score,
                value: -64
            }
        );
    }

    #[test]
    fn into_samples_preserves_order() {
        let mut p = DatapathProbe::enabled();
        for i in 0..5 {
            p.record(i, ProbeStage::Accumulator, i as i64 * 10);
        }
        let s = p.into_samples();
        assert_eq!(s.len(), 5);
        assert!(s.windows(2).all(|w| w[0].value < w[1].value));
    }
}
