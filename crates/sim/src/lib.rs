#![deny(missing_docs)]
//! Cycle-level hardware simulation kernel.
//!
//! The NetPU-M reproduction models the accelerator as synchronous state
//! machines stepped one clock cycle at a time. This crate provides the
//! substrate those machines are built from:
//!
//! * [`Fifo`] — a width×depth hardware FIFO with occupancy/stall
//!   statistics and a block-RAM mapping ([`fifo::bram36_for`]) used by the
//!   resource model.
//! * [`StreamSource`] / [`StreamSink`] — rate-limited 64-bit stream
//!   endpoints modelling the DMA-fed Network Input FIFO and the Network
//!   Output FIFO.
//! * [`engine`] — the [`Clocked`] component trait and the [`Simulator`]
//!   run harness with deadlock detection.
//! * [`trace`] — a bounded event trace for debugging datapath schedules.
//! * [`probe`] — an unbounded datapath value recorder backing the
//!   range-analysis soundness suite in `netpu-check`.
//!
//! Nothing here is NetPU-specific; `netpu-finn` builds its baseline
//! pipeline on the same kernel.

pub mod engine;
pub mod fifo;
pub mod fpga;
pub mod probe;
pub mod stream;
pub mod trace;

pub use engine::{BulkClocked, Clocked, SimError, Simulator};
pub use fifo::{Fifo, FifoStats};
pub use probe::{DatapathProbe, ProbeSample, ProbeStage};
pub use stream::{StreamSink, StreamSource};
pub use trace::{TraceEvent, Tracer};

/// A clock-cycle count.
pub type Cycle = u64;

/// Converts a cycle count at `clock_mhz` into microseconds, the unit the
/// paper's latency tables use.
pub fn cycles_to_us(cycles: Cycle, clock_mhz: f64) -> f64 {
    cycles as f64 / clock_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_us_at_100mhz() {
        // 100 MHz → 100 cycles per microsecond (Table V's clock).
        assert_eq!(cycles_to_us(17_216, 100.0), 172.16);
        assert_eq!(cycles_to_us(0, 100.0), 0.0);
    }

    #[test]
    fn cycles_to_us_at_200mhz() {
        // FINN's Zynq7000 instances run at 200 MHz (Table VI).
        assert_eq!(cycles_to_us(488, 200.0), 2.44);
    }
}
