//! Rate-limited stream endpoints.
//!
//! The NetPU-M runtime control is "only the data streaming" (§III.B.3):
//! the host pre-packages the whole network and pushes it through a DMA
//! channel into the Network Input FIFO. [`StreamSource`] models that
//! channel: a word sequence delivered at a fixed number of 64-bit words
//! per cycle (1 for the paper's configuration). [`StreamSink`] models the
//! Network Output FIFO drain.

/// A 64-bit word source with per-cycle bandwidth gating.
#[derive(Clone, Debug)]
pub struct StreamSource {
    words: Vec<u64>,
    pos: usize,
    words_per_cycle: u32,
    issued_this_cycle: u32,
    /// Cycles during which the source had data but no word was taken.
    idle_cycles: u64,
}

impl StreamSource {
    /// Creates a source over `words` delivering at most `words_per_cycle`
    /// per clock cycle.
    pub fn new(words: Vec<u64>, words_per_cycle: u32) -> StreamSource {
        assert!(words_per_cycle > 0, "bandwidth must be positive");
        StreamSource {
            words,
            pos: 0,
            words_per_cycle,
            issued_this_cycle: 0,
            idle_cycles: 0,
        }
    }

    /// Words remaining to be delivered.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// `true` once every word has been taken.
    pub fn exhausted(&self) -> bool {
        self.pos == self.words.len()
    }

    /// Total words in the stream.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the stream holds no words at all.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `true` when a `take` would succeed this cycle.
    pub fn ready(&self) -> bool {
        !self.exhausted() && self.issued_this_cycle < self.words_per_cycle
    }

    /// Takes the next word if bandwidth and data allow.
    pub fn take(&mut self) -> Option<u64> {
        if !self.ready() {
            return None;
        }
        let w = self.words[self.pos];
        self.pos += 1;
        self.issued_this_cycle += 1;
        Some(w)
    }

    /// Peeks at the next word without consuming bandwidth.
    pub fn peek(&self) -> Option<u64> {
        self.words.get(self.pos).copied()
    }

    /// Advances to the next cycle, resetting the bandwidth budget and
    /// recording whether the cycle left deliverable data on the table.
    pub fn next_cycle(&mut self) {
        if !self.exhausted() && self.issued_this_cycle == 0 {
            self.idle_cycles += 1;
        }
        self.issued_this_cycle = 0;
    }

    /// Cycles in which the source had data but the consumer took nothing —
    /// the "parameter loading is not the bottleneck here" signal.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Fast-path take: consumes the next word without touching the
    /// per-cycle bandwidth gate.
    ///
    /// Bulk consumers ([`crate::engine::BulkClocked`] implementations)
    /// model their own word-per-cycle timing in closed form, so the
    /// `issued_this_cycle` bookkeeping that [`StreamSource::take`] /
    /// [`StreamSource::next_cycle`] maintain is bypassed; the caller
    /// accounts idle cycles explicitly via
    /// [`StreamSource::add_idle_cycles`].
    pub fn take_unmetered(&mut self) -> Option<u64> {
        let w = self.words.get(self.pos).copied()?;
        self.pos += 1;
        Some(w)
    }

    /// Fast-path bulk take: consumes the next `count` words (one per
    /// modelled cycle) and returns them as a slice. `count` must not
    /// exceed [`StreamSource::remaining`].
    pub fn take_words(&mut self, count: usize) -> &[u64] {
        assert!(count <= self.remaining(), "bulk take past end of stream");
        let lo = self.pos;
        self.pos += count;
        &self.words[lo..self.pos]
    }

    /// Fast-path idle accounting: records `cycles` cycles during which
    /// the source held data but the consumer took nothing. Mirrors what
    /// [`StreamSource::next_cycle`] accumulates one cycle at a time.
    pub fn add_idle_cycles(&mut self, cycles: u64) {
        self.idle_cycles += cycles;
    }
}

/// A word sink with unbounded capacity, recording arrival cycles.
#[derive(Clone, Debug, Default)]
pub struct StreamSink {
    words: Vec<(u64, u64)>,
}

impl StreamSink {
    /// Creates an empty sink.
    pub fn new() -> StreamSink {
        StreamSink::default()
    }

    /// Records `word` arriving at `cycle`.
    pub fn push(&mut self, cycle: u64, word: u64) {
        self.words.push((cycle, word));
    }

    /// All received words in arrival order.
    pub fn words(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().map(|&(_, w)| w)
    }

    /// `(cycle, word)` pairs in arrival order.
    pub fn timed_words(&self) -> &[(u64, u64)] {
        &self.words
    }

    /// Number of received words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when nothing has been received.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Cycle at which the last word arrived, if any.
    pub fn last_cycle(&self) -> Option<u64> {
        self.words.last().map(|&(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_delivers_in_order_with_bandwidth_one() {
        let mut s = StreamSource::new(vec![10, 20, 30], 1);
        assert_eq!(s.take(), Some(10));
        // Second take in the same cycle is refused.
        assert_eq!(s.take(), None);
        s.next_cycle();
        assert_eq!(s.take(), Some(20));
        s.next_cycle();
        assert_eq!(s.take(), Some(30));
        assert!(s.exhausted());
        s.next_cycle();
        assert_eq!(s.take(), None);
    }

    #[test]
    fn source_honours_wider_bandwidth() {
        let mut s = StreamSource::new(vec![1, 2, 3, 4, 5], 2);
        assert_eq!(s.take(), Some(1));
        assert_eq!(s.take(), Some(2));
        assert_eq!(s.take(), None);
        s.next_cycle();
        assert_eq!(s.remaining(), 3);
    }

    #[test]
    fn source_counts_idle_cycles() {
        let mut s = StreamSource::new(vec![1, 2], 1);
        s.next_cycle(); // nothing taken, data present → idle
        assert_eq!(s.idle_cycles(), 1);
        s.take();
        s.next_cycle(); // word taken → not idle
        assert_eq!(s.idle_cycles(), 1);
        s.take();
        s.next_cycle(); // exhausted → not idle
        assert_eq!(s.idle_cycles(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut s = StreamSource::new(vec![7], 1);
        assert_eq!(s.peek(), Some(7));
        assert_eq!(s.peek(), Some(7));
        assert_eq!(s.take(), Some(7));
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn unmetered_take_ignores_bandwidth_but_not_data() {
        let mut s = StreamSource::new(vec![1, 2, 3], 1);
        assert_eq!(s.take_unmetered(), Some(1));
        // A metered take in the same cycle would refuse; unmetered does not.
        assert_eq!(s.take_unmetered(), Some(2));
        assert_eq!(s.take_words(1), &[3]);
        assert!(s.exhausted());
        assert_eq!(s.take_unmetered(), None);
        s.add_idle_cycles(7);
        assert_eq!(s.idle_cycles(), 7);
    }

    #[test]
    #[should_panic(expected = "bulk take past end of stream")]
    fn bulk_take_rejects_overrun() {
        StreamSource::new(vec![1], 1).take_words(2);
    }

    #[test]
    fn sink_records_arrival_cycles() {
        let mut k = StreamSink::new();
        k.push(5, 100);
        k.push(9, 200);
        assert_eq!(k.len(), 2);
        assert_eq!(k.words().collect::<Vec<_>>(), vec![100, 200]);
        assert_eq!(k.last_cycle(), Some(9));
        assert_eq!(k.timed_words()[0], (5, 100));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        StreamSource::new(vec![], 0);
    }
}
