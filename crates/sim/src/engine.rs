//! The simulation run harness.
//!
//! A hardware model implements [`Clocked`]; [`Simulator`] steps it one
//! cycle at a time until it reports completion, a cycle budget is
//! exhausted, or a deadlock is detected (no observable progress for a
//! configurable window — a stuck handshake in the model).

use crate::Cycle;
use std::fmt;

/// Outcome of one clock edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tick {
    /// The component did observable work this cycle.
    Progress,
    /// The component was stalled (waiting on data or space).
    Stall,
    /// The component has finished its task.
    Done,
}

/// A synchronous hardware component stepped once per clock cycle.
pub trait Clocked {
    /// Advances the component by one cycle.
    fn tick(&mut self, cycle: Cycle) -> Tick;
}

/// A [`Clocked`] component that can also skip ahead through phases whose
/// cycle count it knows in closed form (pipeline drains, buffer waits,
/// fixed-rate streaming loops).
///
/// Contract: `bulk_tick(cycle, budget)` simulates `advanced` consecutive
/// clock edges starting at `cycle`, with `1 ≤ advanced ≤ budget`. The
/// first `advanced − 1` edges must all have been [`Tick::Progress`]; the
/// returned [`Tick`] is the outcome of the final edge. A component that
/// cannot look ahead (e.g. it is stalled on external data) must fall
/// back to a single edge so stall timing — and therefore deadlock
/// detection — stays cycle-exact.
pub trait BulkClocked: Clocked {
    /// Advances up to `budget` cycles at once (see the trait contract).
    ///
    /// The default implementation steps one cycle via [`Clocked::tick`],
    /// so any clocked component runs unchanged under
    /// [`Simulator::run_fast`].
    fn bulk_tick(&mut self, cycle: Cycle, budget: Cycle) -> (Cycle, Tick) {
        let _ = budget;
        (1, self.tick(cycle))
    }
}

/// Errors from [`Simulator::run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget elapsed before the model finished.
    CycleLimit {
        /// The configured budget.
        limit: Cycle,
    },
    /// No progress was observed for the deadlock window.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        at: Cycle,
        /// Length of the progress-free window.
        window: Cycle,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle budget")
            }
            SimError::Deadlock { at, window } => {
                write!(f, "deadlock at cycle {at}: no progress for {window} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cycle-stepping harness with a budget and deadlock watchdog.
#[derive(Clone, Debug)]
pub struct Simulator {
    cycle_limit: Cycle,
    deadlock_window: Cycle,
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator {
            cycle_limit: 500_000_000,
            deadlock_window: 100_000,
        }
    }
}

impl Simulator {
    /// Creates a harness with the default budget (5·10⁸ cycles ≈ 5 s of
    /// 100 MHz time) and watchdog window (10⁵ cycles).
    pub fn new() -> Simulator {
        Simulator::default()
    }

    /// Sets the cycle budget.
    pub fn with_cycle_limit(mut self, limit: Cycle) -> Simulator {
        self.cycle_limit = limit;
        self
    }

    /// Sets the deadlock watchdog window.
    pub fn with_deadlock_window(mut self, window: Cycle) -> Simulator {
        self.deadlock_window = window;
        self
    }

    /// Runs `component` to completion, returning the number of cycles
    /// consumed (the cycle count *including* the final `Done` edge).
    pub fn run<C: Clocked>(&self, component: &mut C) -> Result<Cycle, SimError> {
        let mut last_progress: Cycle = 0;
        for cycle in 0..self.cycle_limit {
            match component.tick(cycle) {
                Tick::Done => return Ok(cycle + 1),
                Tick::Progress => last_progress = cycle,
                Tick::Stall => {
                    if cycle - last_progress >= self.deadlock_window {
                        return Err(SimError::Deadlock {
                            at: cycle,
                            window: self.deadlock_window,
                        });
                    }
                }
            }
        }
        Err(SimError::CycleLimit {
            limit: self.cycle_limit,
        })
    }

    /// Runs `component` to completion on the phase-skipping fast path.
    ///
    /// Produces exactly the result [`Simulator::run`] would — the same
    /// cycle count, the same [`SimError::Deadlock`] cycle, the same
    /// [`SimError::CycleLimit`] — but lets the component advance many
    /// cycles per call. The watchdog treats the `advanced − 1` leading
    /// edges of each bulk step as progress, matching the trait contract.
    pub fn run_fast<C: BulkClocked>(&self, component: &mut C) -> Result<Cycle, SimError> {
        let mut last_progress: Cycle = 0;
        let mut cycle: Cycle = 0;
        while cycle < self.cycle_limit {
            let budget = self.cycle_limit - cycle;
            let (advanced, tick) = component.bulk_tick(cycle, budget);
            debug_assert!(advanced >= 1, "bulk_tick must advance at least one cycle");
            debug_assert!(advanced <= budget, "bulk_tick overran its budget");
            let advanced = advanced.clamp(1, budget);
            let last = cycle + advanced - 1;
            if advanced > 1 {
                // Leading edges were all Progress per the contract.
                last_progress = last - 1;
            }
            match tick {
                Tick::Done => return Ok(last + 1),
                Tick::Progress => last_progress = last,
                Tick::Stall => {
                    if last - last_progress >= self.deadlock_window {
                        return Err(SimError::Deadlock {
                            at: last,
                            window: self.deadlock_window,
                        });
                    }
                }
            }
            cycle = last + 1;
        }
        Err(SimError::CycleLimit {
            limit: self.cycle_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down and then reports done.
    struct Countdown(u64);

    impl Clocked for Countdown {
        fn tick(&mut self, _cycle: Cycle) -> Tick {
            if self.0 == 0 {
                Tick::Done
            } else {
                self.0 -= 1;
                Tick::Progress
            }
        }
    }

    /// Stalls forever.
    struct Stuck;

    impl Clocked for Stuck {
        fn tick(&mut self, _cycle: Cycle) -> Tick {
            Tick::Stall
        }
    }

    #[test]
    fn run_counts_cycles_to_done() {
        let mut c = Countdown(9);
        let cycles = Simulator::new().run(&mut c).unwrap();
        assert_eq!(cycles, 10); // 9 progress edges + the done edge
    }

    #[test]
    fn zero_work_completes_in_one_cycle() {
        let mut c = Countdown(0);
        assert_eq!(Simulator::new().run(&mut c).unwrap(), 1);
    }

    #[test]
    fn watchdog_detects_deadlock() {
        let mut s = Stuck;
        let err = Simulator::new()
            .with_deadlock_window(50)
            .run(&mut s)
            .unwrap_err();
        assert_eq!(err, SimError::Deadlock { at: 50, window: 50 });
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut c = Countdown(u64::MAX);
        let err = Simulator::new()
            .with_cycle_limit(100)
            .run(&mut c)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn intermittent_stalls_do_not_trip_watchdog() {
        /// Alternates stall/progress; finishes after n progresses.
        struct Chopper {
            n: u64,
            phase: bool,
        }
        impl Clocked for Chopper {
            fn tick(&mut self, _c: Cycle) -> Tick {
                self.phase = !self.phase;
                if self.n == 0 {
                    Tick::Done
                } else if self.phase {
                    self.n -= 1;
                    Tick::Progress
                } else {
                    Tick::Stall
                }
            }
        }
        let mut c = Chopper {
            n: 100,
            phase: false,
        };
        let cycles = Simulator::new()
            .with_deadlock_window(3)
            .run(&mut c)
            .unwrap();
        // 100 progress edges on even cycles, 99 interleaved stalls, and
        // the done edge at cycle 199.
        assert_eq!(cycles, 200);
    }

    // Every Clocked component is bulk-clockable via the default
    // single-step implementation.
    impl BulkClocked for Countdown {}
    impl BulkClocked for Stuck {}

    /// Bulk-advances through its countdown in capped strides.
    struct BulkCountdown {
        left: u64,
        stride: u64,
    }

    impl Clocked for BulkCountdown {
        fn tick(&mut self, _cycle: Cycle) -> Tick {
            if self.left == 0 {
                Tick::Done
            } else {
                self.left -= 1;
                Tick::Progress
            }
        }
    }

    impl BulkClocked for BulkCountdown {
        fn bulk_tick(&mut self, _cycle: Cycle, budget: Cycle) -> (Cycle, Tick) {
            if self.left == 0 {
                return (1, Tick::Done);
            }
            let k = self.left.min(self.stride).min(budget);
            self.left -= k;
            (k, Tick::Progress)
        }
    }

    #[test]
    fn run_fast_matches_run_via_default_single_step() {
        let tick_cycles = Simulator::new().run(&mut Countdown(9)).unwrap();
        let fast_cycles = Simulator::new().run_fast(&mut Countdown(9)).unwrap();
        assert_eq!(tick_cycles, fast_cycles);
        assert_eq!(Simulator::new().run_fast(&mut Countdown(0)).unwrap(), 1);
    }

    #[test]
    fn run_fast_counts_bulk_strides_exactly() {
        for stride in [1, 3, 7, 100] {
            let mut c = BulkCountdown { left: 9, stride };
            assert_eq!(Simulator::new().run_fast(&mut c).unwrap(), 10);
        }
    }

    #[test]
    fn run_fast_watchdog_matches_run() {
        let tick_err = Simulator::new()
            .with_deadlock_window(50)
            .run(&mut Stuck)
            .unwrap_err();
        let fast_err = Simulator::new()
            .with_deadlock_window(50)
            .run_fast(&mut Stuck)
            .unwrap_err();
        assert_eq!(tick_err, fast_err);
    }

    #[test]
    fn run_fast_cycle_limit_caps_bulk_budget() {
        let mut c = BulkCountdown {
            left: u64::MAX,
            stride: u64::MAX,
        };
        let err = Simulator::new()
            .with_cycle_limit(100)
            .run_fast(&mut c)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn run_fast_progress_before_stall_resets_watchdog() {
        /// Bulk-advances `burst` progress cycles ending in a stall, over
        /// and over: the watchdog must see the embedded progress.
        struct BurstyStall {
            burst: u64,
            rounds: u64,
        }
        impl Clocked for BurstyStall {
            fn tick(&mut self, _c: Cycle) -> Tick {
                unreachable!("bulk path only")
            }
        }
        impl BulkClocked for BurstyStall {
            fn bulk_tick(&mut self, _cycle: Cycle, _budget: Cycle) -> (Cycle, Tick) {
                if self.rounds == 0 {
                    (1, Tick::Done)
                } else {
                    self.rounds -= 1;
                    (self.burst + 1, Tick::Stall)
                }
            }
        }
        let mut c = BurstyStall {
            burst: 4,
            rounds: 1000,
        };
        // Window 2 > the 1-cycle stall gap after each burst's progress.
        let cycles = Simulator::new()
            .with_deadlock_window(2)
            .run_fast(&mut c)
            .unwrap();
        assert_eq!(cycles, 1000 * 5 + 1);
    }
}
