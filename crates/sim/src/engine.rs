//! The simulation run harness.
//!
//! A hardware model implements [`Clocked`]; [`Simulator`] steps it one
//! cycle at a time until it reports completion, a cycle budget is
//! exhausted, or a deadlock is detected (no observable progress for a
//! configurable window — a stuck handshake in the model).

use crate::Cycle;
use std::fmt;

/// Outcome of one clock edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tick {
    /// The component did observable work this cycle.
    Progress,
    /// The component was stalled (waiting on data or space).
    Stall,
    /// The component has finished its task.
    Done,
}

/// A synchronous hardware component stepped once per clock cycle.
pub trait Clocked {
    /// Advances the component by one cycle.
    fn tick(&mut self, cycle: Cycle) -> Tick;
}

/// Errors from [`Simulator::run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget elapsed before the model finished.
    CycleLimit {
        /// The configured budget.
        limit: Cycle,
    },
    /// No progress was observed for the deadlock window.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        at: Cycle,
        /// Length of the progress-free window.
        window: Cycle,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle budget")
            }
            SimError::Deadlock { at, window } => {
                write!(f, "deadlock at cycle {at}: no progress for {window} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cycle-stepping harness with a budget and deadlock watchdog.
#[derive(Clone, Debug)]
pub struct Simulator {
    cycle_limit: Cycle,
    deadlock_window: Cycle,
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator {
            cycle_limit: 500_000_000,
            deadlock_window: 100_000,
        }
    }
}

impl Simulator {
    /// Creates a harness with the default budget (5·10⁸ cycles ≈ 5 s of
    /// 100 MHz time) and watchdog window (10⁵ cycles).
    pub fn new() -> Simulator {
        Simulator::default()
    }

    /// Sets the cycle budget.
    pub fn with_cycle_limit(mut self, limit: Cycle) -> Simulator {
        self.cycle_limit = limit;
        self
    }

    /// Sets the deadlock watchdog window.
    pub fn with_deadlock_window(mut self, window: Cycle) -> Simulator {
        self.deadlock_window = window;
        self
    }

    /// Runs `component` to completion, returning the number of cycles
    /// consumed (the cycle count *including* the final `Done` edge).
    pub fn run<C: Clocked>(&self, component: &mut C) -> Result<Cycle, SimError> {
        let mut last_progress: Cycle = 0;
        for cycle in 0..self.cycle_limit {
            match component.tick(cycle) {
                Tick::Done => return Ok(cycle + 1),
                Tick::Progress => last_progress = cycle,
                Tick::Stall => {
                    if cycle - last_progress >= self.deadlock_window {
                        return Err(SimError::Deadlock {
                            at: cycle,
                            window: self.deadlock_window,
                        });
                    }
                }
            }
        }
        Err(SimError::CycleLimit {
            limit: self.cycle_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down and then reports done.
    struct Countdown(u64);

    impl Clocked for Countdown {
        fn tick(&mut self, _cycle: Cycle) -> Tick {
            if self.0 == 0 {
                Tick::Done
            } else {
                self.0 -= 1;
                Tick::Progress
            }
        }
    }

    /// Stalls forever.
    struct Stuck;

    impl Clocked for Stuck {
        fn tick(&mut self, _cycle: Cycle) -> Tick {
            Tick::Stall
        }
    }

    #[test]
    fn run_counts_cycles_to_done() {
        let mut c = Countdown(9);
        let cycles = Simulator::new().run(&mut c).unwrap();
        assert_eq!(cycles, 10); // 9 progress edges + the done edge
    }

    #[test]
    fn zero_work_completes_in_one_cycle() {
        let mut c = Countdown(0);
        assert_eq!(Simulator::new().run(&mut c).unwrap(), 1);
    }

    #[test]
    fn watchdog_detects_deadlock() {
        let mut s = Stuck;
        let err = Simulator::new()
            .with_deadlock_window(50)
            .run(&mut s)
            .unwrap_err();
        assert_eq!(err, SimError::Deadlock { at: 50, window: 50 });
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut c = Countdown(u64::MAX);
        let err = Simulator::new()
            .with_cycle_limit(100)
            .run(&mut c)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn intermittent_stalls_do_not_trip_watchdog() {
        /// Alternates stall/progress; finishes after n progresses.
        struct Chopper {
            n: u64,
            phase: bool,
        }
        impl Clocked for Chopper {
            fn tick(&mut self, _c: Cycle) -> Tick {
                self.phase = !self.phase;
                if self.n == 0 {
                    Tick::Done
                } else if self.phase {
                    self.n -= 1;
                    Tick::Progress
                } else {
                    Tick::Stall
                }
            }
        }
        let mut c = Chopper {
            n: 100,
            phase: false,
        };
        let cycles = Simulator::new()
            .with_deadlock_window(3)
            .run(&mut c)
            .unwrap();
        // 100 progress edges on even cycles, 99 interleaved stalls, and
        // the done edge at cycle 199.
        assert_eq!(cycles, 200);
    }
}
