//! FPGA resource-accounting types shared by hardware models.
//!
//! [`Utilization`] bundles LUT/DSP/FF/BRAM costs, [`Platform`] is a
//! device envelope. Cost *models* live with the architectures that own
//! them (`netpu-core::resources`, `netpu-finn::resources`); only the
//! accounting vocabulary lives here.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// A resource bundle (LUTs, DSP slices, flip-flops, BRAM36 blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Look-up tables.
    pub luts: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Block RAM in RAMB36 units (halves are RAMB18s).
    pub bram36: f64,
}

impl Add for Utilization {
    type Output = Utilization;
    fn add(self, rhs: Utilization) -> Utilization {
        Utilization {
            luts: self.luts + rhs.luts,
            dsps: self.dsps + rhs.dsps,
            ffs: self.ffs + rhs.ffs,
            bram36: self.bram36 + rhs.bram36,
        }
    }
}

impl Utilization {
    /// Scales the bundle by an instance count.
    pub fn times(self, n: u64) -> Utilization {
        Utilization {
            luts: self.luts * n,
            dsps: self.dsps * n,
            ffs: self.ffs * n,
            bram36: self.bram36 * n as f64,
        }
    }

    /// Utilization rates against a platform envelope, as fractions.
    pub fn rates(&self, platform: &Platform) -> UtilizationRates {
        UtilizationRates {
            luts: self.luts as f64 / platform.luts as f64,
            dsps: self.dsps as f64 / platform.dsps as f64,
            ffs: self.ffs as f64 / platform.ffs as f64,
            bram36: self.bram36 / platform.bram36,
        }
    }

    /// `true` when the design fits the platform.
    pub fn fits(&self, platform: &Platform) -> bool {
        self.luts <= platform.luts
            && self.dsps <= platform.dsps
            && self.ffs <= platform.ffs
            && self.bram36 <= platform.bram36
    }
}

/// Utilization as fractions of a platform envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRates {
    /// LUT fraction.
    pub luts: f64,
    /// DSP fraction.
    pub dsps: f64,
    /// FF fraction.
    pub ffs: f64,
    /// BRAM fraction.
    pub bram36: f64,
}

/// An FPGA platform's resource envelope.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name.
    pub name: &'static str,
    /// Available LUTs.
    pub luts: u64,
    /// Available DSP slices.
    pub dsps: u64,
    /// Available flip-flops.
    pub ffs: u64,
    /// Available BRAM36 blocks.
    pub bram36: f64,
}

/// The Ultra96-V2 (Zynq UltraScale+ ZU3EG) envelope used in Tables IV/V.
pub const ULTRA96_V2: Platform = Platform {
    name: "Ultra96-V2",
    luts: 70_560,
    dsps: 360,
    ffs: 141_120,
    bram36: 216.0,
};

/// The Zynq-7000 (ZC706, XC7Z045) envelope of the FINN instances in
/// Table VI.
pub const ZYNQ7000_ZC706: Platform = Platform {
    name: "Zynq-7000 ZC706",
    luts: 218_600,
    dsps: 900,
    ffs: 437_200,
    bram36: 545.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_add_and_times() {
        let a = Utilization {
            luts: 10,
            dsps: 2,
            ffs: 5,
            bram36: 1.5,
        };
        let b = a.times(3);
        assert_eq!(b.luts, 30);
        assert_eq!((a + b).dsps, 8);
        assert_eq!((a + b).bram36, 6.0);
    }

    #[test]
    fn rates_and_fits() {
        let u = Utilization {
            luts: 70_560,
            dsps: 180,
            ffs: 0,
            bram36: 108.0,
        };
        let r = u.rates(&ULTRA96_V2);
        assert_eq!(r.luts, 1.0);
        assert_eq!(r.dsps, 0.5);
        assert_eq!(r.bram36, 0.5);
        assert!(u.fits(&ULTRA96_V2));
        let over = Utilization { luts: 70_561, ..u };
        assert!(!over.fits(&ULTRA96_V2));
    }

    #[test]
    fn platform_envelopes() {
        assert_eq!(ULTRA96_V2.luts, 70_560);
        assert_eq!(ULTRA96_V2.dsps, 360);
        assert_eq!(ZYNQ7000_ZC706.luts, 218_600);
    }
}
