//! Bounded event tracing for datapath debugging.
//!
//! A [`Tracer`] is threaded through the accelerator model; when enabled
//! it records `(cycle, scope, message)` events into a bounded ring so a
//! runaway simulation cannot exhaust memory. Tracing is off by default
//! and costs one branch per call site when disabled.

use crate::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Clock cycle at which the event occurred.
    pub cycle: Cycle,
    /// Component scope, e.g. `"lpu0.weight_buf"`.
    pub scope: &'static str,
    /// Human-readable event description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<24} {}",
            self.cycle, self.scope, self.message
        )
    }
}

/// A bounded event trace.
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A disabled tracer: every `record` call is a no-op.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled tracer keeping the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Tracer {
        Tracer {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. The message closure is only evaluated when
    /// tracing is enabled, keeping disabled tracing free of formatting.
    pub fn record(&mut self, cycle: Cycle, scope: &'static str, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            scope,
            message: message(),
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consumes the tracer, returning the retained events oldest first.
    ///
    /// This is the hand-off point for per-run hooks: a caller threads a
    /// bounded tracer through one accelerator run and takes the events
    /// out afterwards without copying.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }

    /// Number of events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Writes the retained events as text, one per line, to `w`.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        if self.dropped > 0 {
            writeln!(
                w,
                "# {} earlier events dropped by the ring bound",
                self.dropped
            )?;
        }
        for e in &self.events {
            writeln!(w, "{e}")?;
        }
        Ok(())
    }

    /// Writes the retained events to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(1, "x", || "never".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn disabled_tracer_skips_message_evaluation() {
        let mut t = Tracer::disabled();
        t.record(1, "x", || panic!("must not be evaluated"));
        assert!(t.is_empty());
    }

    #[test]
    fn bounded_tracer_keeps_most_recent() {
        let mut t = Tracer::bounded(3);
        for i in 0..5u64 {
            t.record(i, "s", || format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn into_events_preserves_order() {
        let mut t = Tracer::bounded(3);
        for i in 0..5u64 {
            t.record(i, "s", || format!("e{i}"));
        }
        let events = t.into_events();
        let msgs: Vec<_> = events.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn write_to_emits_one_line_per_event() {
        let mut t = Tracer::bounded(2);
        for i in 0..3u64 {
            t.record(i, "s", || format!("e{i}"));
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // dropped-note + 2 events
        assert!(lines[0].contains("1 earlier events dropped"));
        assert!(lines[2].contains("e2"));
    }

    #[test]
    fn display_formats_cycle_and_scope() {
        let e = TraceEvent {
            cycle: 42,
            scope: "lpu0",
            message: "layer init".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("42"));
        assert!(s.contains("lpu0"));
        assert!(s.contains("layer init"));
    }
}
