//! Hardware FIFO model with geometry, statistics, and BRAM mapping.
//!
//! The LPU Data Buffer Cluster (Table III) is a set of FIFOs with fixed
//! output widths and depths backed by on-chip block RAM. [`Fifo`] models
//! one such buffer: bounded capacity, single-cycle push/pop semantics
//! (the caller enforces one access per port per cycle), and counters the
//! latency analysis and resource model read out afterwards.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Runtime statistics accumulated by a [`Fifo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes refused because the FIFO was full (write-side stalls).
    pub push_stalls: u64,
    /// Pops refused because the FIFO was empty (read-side stalls).
    pub pop_stalls: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

/// A bounded hardware FIFO of `T` words.
///
/// `width_bits` is the width of one entry on the read port; together with
/// `depth` it determines the block-RAM cost via [`bram36_for`].
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    name: &'static str,
    width_bits: u32,
    depth: usize,
    items: VecDeque<T>,
    stats: FifoStats,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given geometry.
    pub fn new(name: &'static str, width_bits: u32, depth: usize) -> Fifo<T> {
        assert!(depth > 0, "FIFO depth must be positive");
        Fifo {
            name,
            width_bits,
            depth,
            items: VecDeque::with_capacity(depth),
            stats: FifoStats::default(),
        }
    }

    /// The buffer's name (matches the Table III row it models).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Entry width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Capacity in entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy in entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when a push would stall.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.depth
    }

    /// Free entries remaining.
    pub fn free(&self) -> usize {
        self.depth - self.items.len()
    }

    /// Attempts to push one entry; returns `false` (and counts a
    /// write-side stall) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.is_full() {
            self.stats.push_stalls += 1;
            return false;
        }
        self.items.push_back(item);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.items.len());
        true
    }

    /// Attempts to pop one entry; returns `None` (and counts a read-side
    /// stall) when empty.
    pub fn pop(&mut self) -> Option<T> {
        match self.items.pop_front() {
            Some(v) => {
                self.stats.pops += 1;
                Some(v)
            }
            None => {
                self.stats.pop_stalls += 1;
                None
            }
        }
    }

    /// Fast-path combined push+pop for the streaming pattern "ingest one
    /// word, dispatch one word on the same edge". Exactly equivalent to
    /// `push(item)` followed by `pop()` — statistics included — but skips
    /// the queue when it is empty, the steady state of a rate-matched
    /// stream.
    pub fn push_pop(&mut self, item: T) -> Option<T> {
        if self.items.is_empty() {
            self.stats.pushes += 1;
            self.stats.pops += 1;
            self.stats.max_occupancy = self.stats.max_occupancy.max(1);
            return Some(item);
        }
        self.push(item);
        self.pop()
    }

    /// Statistics settlement for a burst of `count` [`Fifo::push_pop`]
    /// calls on an **empty** FIFO (the steady state of a rate-matched
    /// stream): each word passes straight through, so occupancy never
    /// exceeds one and contents are unchanged. The caller keeps the words
    /// themselves; this only books the push/pop counters.
    pub fn settle_push_pops(&mut self, count: u64) {
        debug_assert!(self.items.is_empty(), "burst settlement on non-empty FIFO");
        if count == 0 {
            return;
        }
        self.stats.pushes += count;
        self.stats.pops += count;
        self.stats.max_occupancy = self.stats.max_occupancy.max(1);
    }

    /// Peeks at the head entry without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Drops all buffered entries (an LPU reset), keeping statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// Block-RAM cost of this buffer in BRAM36 units.
    pub fn bram36(&self) -> f64 {
        bram36_for(self.width_bits, self.depth)
    }
}

/// Maps a FIFO geometry onto Xilinx block RAM, in units of RAMB36.
///
/// A RAMB36 offers 36 Kbit configurable as 32K×1 … 1K×36, or 512×72 in
/// simple-dual-port mode; it splits into two independent RAMB18s (hence
/// half-unit results like Table V's 129.5). The mapping picks the aspect
/// ratio that minimises block count for the requested geometry.
pub fn bram36_for(width_bits: u32, depth: usize) -> f64 {
    if width_bits == 0 || depth == 0 {
        return 0.0;
    }
    // Widest data-port configuration available at a given depth.
    fn max_width_at_depth(depth: usize, kbit: u32) -> u32 {
        // kbit = 36 for RAMB36, 18 for RAMB18. Depth steps double as
        // width halves: 512×72/36, 1K×36/18, 2K×18/9, 4K×9/4, ...
        let (mut d, mut w) = if kbit == 36 { (512, 72) } else { (256, 72) };
        while d < depth {
            d *= 2;
            w /= 2;
            if w == 0 {
                return 0;
            }
        }
        w
    }
    // Try a single RAMB18 first (half a RAMB36).
    let w18 = max_width_at_depth(depth, 18);
    if w18 >= width_bits {
        return 0.5;
    }
    let w36 = max_width_at_depth(depth, 36);
    if w36 == 0 {
        // Deeper than a single column supports: stack by depth.
        let per_block_depth = 32 * 1024; // 32K×1
        let cols = width_bits as usize;
        let rows = depth.div_ceil(per_block_depth);
        return (cols * rows) as f64;
    }
    (width_bits as f64 / w36 as f64).ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut f: Fifo<u64> = Fifo::new("t", 64, 4);
        assert!(f.push(1) && f.push(2) && f.push(3));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert!(f.push(4));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_fifo_stalls_writes() {
        let mut f: Fifo<u8> = Fifo::new("t", 8, 2);
        assert!(f.push(1) && f.push(2));
        assert!(f.is_full());
        assert!(!f.push(3));
        assert_eq!(f.stats().push_stalls, 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_fifo_stalls_reads() {
        let mut f: Fifo<u8> = Fifo::new("t", 8, 2);
        assert_eq!(f.pop(), None);
        assert_eq!(f.stats().pop_stalls, 1);
    }

    #[test]
    fn stats_track_occupancy_highwater() {
        let mut f: Fifo<u8> = Fifo::new("t", 8, 8);
        for i in 0..5 {
            f.push(i);
        }
        f.pop();
        f.pop();
        assert_eq!(f.stats().max_occupancy, 5);
        assert_eq!(f.stats().pushes, 5);
        assert_eq!(f.stats().pops, 2);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut f: Fifo<u8> = Fifo::new("t", 8, 8);
        f.push(1);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.stats().pushes, 1);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _f: Fifo<u8> = Fifo::new("t", 8, 0);
    }

    #[test]
    fn bram_mapping_matches_table3_buffers() {
        // Layer Input: 64 bits × 1024 → two RAMB36 in 1K×36 mode.
        assert_eq!(bram36_for(64, 1024), 2.0);
        // BN Scale: 128 bits × 2048 → eight RAMB36 in 2K×18 mode.
        assert_eq!(bram36_for(128, 2048), 8.0);
        // A small control FIFO fits in half a block.
        assert_eq!(bram36_for(32, 512), 0.5);
        assert_eq!(bram36_for(64, 256), 0.5);
    }

    #[test]
    fn bram_mapping_edge_cases() {
        assert_eq!(bram36_for(0, 1024), 0.0);
        assert_eq!(bram36_for(64, 0), 0.0);
        // 72-wide shallow buffer: one RAMB36 in SDP mode.
        assert_eq!(bram36_for(72, 512), 1.0);
        // Very deep single-bit FIFO: stacked 32K×1 blocks.
        assert_eq!(bram36_for(1, 65536), 2.0);
    }

    #[test]
    fn fifo_reports_own_bram() {
        let f: Fifo<u64> = Fifo::new("layer_input", 64, 1024);
        assert_eq!(f.bram36(), 2.0);
    }
}
