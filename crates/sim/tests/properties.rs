//! Property tests for the simulation kernel.

use netpu_sim::fifo::{bram36_for, Fifo};
use netpu_sim::{StreamSink, StreamSource};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// A Fifo behaves exactly like a bounded VecDeque under any
    /// push/pop interleaving.
    #[test]
    fn fifo_matches_model(
        depth in 1usize..16,
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 0..200),
    ) {
        let mut fifo: Fifo<u8> = Fifo::new("model", 8, depth);
        let mut model: VecDeque<u8> = VecDeque::new();
        let mut push_attempts = 0usize;
        for (is_push, v) in ops {
            if is_push {
                push_attempts += 1;
                let accepted = fifo.push(v);
                prop_assert_eq!(accepted, model.len() < depth);
                if accepted {
                    model.push_back(v);
                }
            } else {
                prop_assert_eq!(fifo.pop(), model.pop_front());
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert_eq!(fifo.is_full(), model.len() == depth);
            prop_assert_eq!(fifo.peek().copied(), model.front().copied());
        }
        prop_assert_eq!(
            fifo.stats().pushes as usize + fifo.stats().push_stalls as usize,
            push_attempts
        );
    }

    /// BRAM cost is monotone in both width and depth, and zero only for
    /// empty geometry.
    #[test]
    fn bram_cost_is_monotone(w in 1u32..256, d in 1usize..16384) {
        let base = bram36_for(w, d);
        prop_assert!(base > 0.0);
        prop_assert!(bram36_for(w + 1, d) >= base);
        prop_assert!(bram36_for(w, d + 1) >= base);
        prop_assert!(bram36_for(w, 2 * d) >= base);
    }

    /// A bandwidth-1 source delivers exactly its words, one per cycle,
    /// in order.
    #[test]
    fn stream_source_delivers_everything(words in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut src = StreamSource::new(words.clone(), 1);
        let mut sink = StreamSink::new();
        let mut cycle = 0u64;
        while !src.exhausted() {
            if let Some(w) = src.take() {
                sink.push(cycle, w);
            }
            src.next_cycle();
            cycle += 1;
        }
        prop_assert_eq!(sink.words().collect::<Vec<_>>(), words);
        prop_assert_eq!(sink.len() as u64, cycle);
        prop_assert_eq!(src.idle_cycles(), 0);
    }

    /// Bandwidth gating: at width B, a source of N words needs exactly
    /// ceil(N/B) cycles.
    #[test]
    fn stream_bandwidth_gating(n in 0usize..200, b in 1u32..8) {
        let mut src = StreamSource::new(vec![7; n], b);
        let mut cycles = 0usize;
        while !src.exhausted() {
            while src.take().is_some() {}
            src.next_cycle();
            cycles += 1;
        }
        prop_assert_eq!(cycles, n.div_ceil(b as usize));
    }
}
