//! Fleet traffic replay: swap-aware scheduling vs naive FIFO on the
//! acceptance-scale workload (64 boards, 20 models, 12 tenants,
//! 10 000 seeded requests).
//!
//! The replay is a deterministic virtual-time simulation
//! (`netpu_fleet::run_replay`), so the numbers here are a pure function
//! of the config — rerunning on any host reproduces them bit for bit.
//! The two policy rows are merged into `BENCH_serve.json` alongside
//! `serve_scaling`'s board-sweep rows; the headline columns are
//! swaps-per-request (the §V weight-stream loading cost the swap-aware
//! scheduler amortizes) and the compiled-cache hit rate.

use netpu_bench::ExperimentRecord;
use netpu_fleet::{run_replay, DispatchPolicy, ReplayConfig, ReplayReport};
use netpu_runtime::Driver;

fn row(report: &ReplayReport) -> serde_json::Value {
    serde_json::json!({
        "name": format!("fleet_replay_{}", report.policy),
        "policy": report.policy.clone(),
        "seed": report.seed,
        "boards": report.boards,
        "shards": report.shards,
        "models": report.models,
        "offered": report.offered,
        "throttled": report.throttled,
        "completed": report.completed,
        "deadline_missed": report.deadline_missed,
        "p50_us": report.p50_us,
        "p99_us": report.p99_us,
        "p999_us": report.p999_us,
        "mean_us": report.mean_us,
        "jain_fairness": report.jain_fairness,
        "cache_hit_rate": report.cache_hit_rate,
        "cache_evictions": report.cache_evictions,
        "swaps": report.swaps,
        "swaps_per_request": report.swaps_per_request,
        "resident_hit_rate": report.resident_hit_rate,
        "makespan_us": report.makespan_us,
        "measured_fps": report.measured_fps,
        "analytic_fps_bound": report.analytic_fps_bound,
        "bound_ratio": report.bound_ratio,
        "dma_utilization": report.dma_utilization,
    })
}

fn main() {
    let driver = Driver::builder().build();
    let cfg = ReplayConfig::acceptance();

    let aware = run_replay(&driver, &cfg).expect("swap-aware replay");
    let naive = run_replay(&driver, &cfg.clone().with_policy(DispatchPolicy::NaiveFifo))
        .expect("naive replay");

    println!(
        "policy      completed  throttled  p50_us    p99_us    swaps/req  res_hit  cache_hit  fps"
    );
    for r in [&naive, &aware] {
        println!(
            "{:<10}  {:>9}  {:>9}  {:>8.1}  {:>8.1}  {:>9.3}  {:>7.3}  {:>9.4}  {:>8.0}",
            r.policy,
            r.completed,
            r.throttled,
            r.p50_us,
            r.p99_us,
            r.swaps_per_request,
            r.resident_hit_rate,
            r.cache_hit_rate,
            r.measured_fps,
        );
    }
    let reduction = if naive.swaps_per_request > 0.0 {
        1.0 - aware.swaps_per_request / naive.swaps_per_request
    } else {
        0.0
    };
    println!(
        "swap-aware cuts swaps/request by {:.1}% vs naive FIFO ({:.3} -> {:.3})",
        reduction * 100.0,
        naive.swaps_per_request,
        aware.swaps_per_request
    );

    let mut record = ExperimentRecord::new(
        "BENCH_serve",
        "Serving throughput vs boards: measured scheduler vs analytic bound (TfcW1A1)",
    );
    record.push(row(&naive));
    record.push(row(&aware));
    let path = record.write_merged().expect("write BENCH_serve.json");
    println!("trajectory record: {}", path.display());
}
