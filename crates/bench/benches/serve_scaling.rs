//! Serving throughput vs board count: the executing `netpu-serve`
//! scheduler against the analytic `ClusterThroughput` bound.
//!
//! For each board count the bench drives a saturated server (every
//! request queued up front) over TFC-W1A1 and compares the measured
//! virtual-time rate with `min(boards/latency, 1/transfer)` — the
//! shared-DMA loading bottleneck of §V at system scale. The run writes
//! a `BENCH_serve.json` record (under `target/experiments/`, or
//! `NETPU_EXPERIMENT_DIR`) so the saturation trajectory survives in
//! machine-readable form.

use netpu_bench::ExperimentRecord;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Cluster, Driver, InferRequest};
use netpu_serve::{Server, ServerConfig};

fn main() {
    let driver = Driver::builder().build();
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let loadable = netpu_compiler::compile(&model, &vec![100u8; 784]).unwrap();
    let n = 128usize;

    let mut record = ExperimentRecord::new(
        "BENCH_serve",
        "Serving throughput vs boards: measured scheduler vs analytic bound (TfcW1A1)",
    );

    println!("boards  measured_fps  analytic_fps  bound     dma_util");
    for boards in [1usize, 2, 4, 8] {
        let analytic = Cluster::new(boards, driver.clone())
            .throughput(&model)
            .unwrap();
        let server = Server::start(
            driver.clone(),
            ServerConfig {
                boards,
                queue_capacity: n,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..n)
            .map(|_| {
                server
                    .submit(InferRequest::loadable(loadable.clone()))
                    .expect_accepted()
            })
            .collect();
        for t in tickets {
            t.wait().expect("saturation run must not fail");
        }
        let m = server.shutdown();
        let measured = m.measured_fps().expect("completed frames");
        let bound = if analytic.fps == analytic.transfer_bound_fps {
            "transfer"
        } else {
            "compute"
        };
        println!(
            "{boards:>6}  {measured:>12.0}  {:>12.0}  {bound:<8}  {:.2}",
            analytic.fps,
            m.dma_utilization()
        );
        record.push(serde_json::json!({
            "name": format!("tfc_w1a1_{boards}_boards"),
            "boards": boards,
            "requests": n,
            "measured_fps": measured,
            "analytic_fps": analytic.fps,
            "compute_bound_fps": analytic.compute_bound_fps,
            "transfer_bound_fps": analytic.transfer_bound_fps,
            "binding": bound,
            "relative_error": (measured - analytic.fps).abs() / analytic.fps,
            "dma_utilization": m.dma_utilization(),
            "board_utilization": m.board_utilization(),
            "makespan_us": m.makespan_us,
        }));
    }

    // Merged write: `fleet_replay` owns the fleet rows of the same file.
    let path = record.write_merged().expect("write BENCH_serve.json");
    println!("trajectory record: {}", path.display());
}
