//! Criterion microbenchmarks over the reproduction stack.
//!
//! The `table*` binaries regenerate the paper's tables; these benches
//! measure the *host cost* of each regeneration workload plus the hot
//! component paths (XNOR MAC, reference inference, stream compilation,
//! cycle simulation, FINN pipeline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netpu_arith::binary::binary_dot8;
use netpu_core::netpu::run_inference;
use netpu_core::resources::{netpu_utilization, tnpu_utilization};
use netpu_core::HwConfig;
use netpu_finn::{instance_utilization, run_pipeline, FinnInstance};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{reference, QuantMlp};

fn tfc(bn: BnMode) -> QuantMlp {
    ZooModel::TfcW1A1.build_untrained(1, bn).unwrap()
}

fn bench_arith(c: &mut Criterion) {
    c.bench_function("arith/xnor_popcount_dot", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for i in 0..=255u8 {
                acc += binary_dot8(black_box(i), black_box(i.wrapping_mul(31)), 8);
            }
            acc
        })
    });
    c.bench_function("arith/pwl_sigmoid", |b| {
        b.iter(|| {
            let mut acc = netpu_arith::Fix::ZERO;
            for i in -100..100i32 {
                acc = acc
                    + netpu_arith::activation::sigmoid(netpu_arith::Fix::from_f64(
                        black_box(i as f64) / 10.0,
                    ));
            }
            acc
        })
    });
}

fn bench_reference(c: &mut Criterion) {
    let model = tfc(BnMode::Folded);
    let px = vec![128u8; 784];
    c.bench_function("reference/tfc_w1a1_inference", |b| {
        b.iter(|| reference::infer(black_box(&model), black_box(&px)))
    });
}

fn bench_compile(c: &mut Criterion) {
    let model = tfc(BnMode::Folded);
    let px = vec![128u8; 784];
    c.bench_function("compiler/tfc_w1a1_loadable", |b| {
        b.iter(|| netpu_compiler::compile(black_box(&model), black_box(&px)).unwrap())
    });
}

/// The Table IV/V workload: composing the resource model.
fn bench_table4_table5_resources(c: &mut Criterion) {
    let cfg = HwConfig::paper_instance();
    c.bench_function("table4/tnpu_resource_model", |b| {
        b.iter(|| tnpu_utilization(black_box(&cfg)))
    });
    c.bench_function("table5/netpu_resource_model", |b| {
        b.iter(|| netpu_utilization(black_box(&cfg)))
    });
}

/// The Table V workload: one full cycle-accurate TFC inference.
fn bench_table5_simulation(c: &mut Criterion) {
    let cfg = HwConfig::paper_instance();
    let model = tfc(BnMode::Folded);
    let px = vec![128u8; 784];
    let words = netpu_compiler::compile(&model, &px).unwrap().words;
    c.bench_function("table5/tfc_w1a1_cycle_simulation", |b| {
        b.iter(|| run_inference(black_box(&cfg), black_box(words.clone())).unwrap())
    });
}

/// The Table VI workload: FINN pipeline simulation + resource model.
fn bench_table6_comparison(c: &mut Criterion) {
    let inst = FinnInstance::sfc_max();
    c.bench_function("table6/finn_sfc_max_pipeline", |b| {
        b.iter(|| run_pipeline(black_box(&inst.layers), 16))
    });
    c.bench_function("table6/finn_resource_model", |b| {
        b.iter(|| instance_utilization(black_box(&inst)))
    });
}

/// The §V packing extension: dense vs lane-packed simulation cost.
fn bench_packing_modes(c: &mut Criterion) {
    let model = ZooModel::TfcW2A2
        .build_untrained(2, BnMode::Folded)
        .unwrap();
    let px = vec![128u8; 784];
    let cfg = HwConfig {
        dense_weight_packing: true,
        ..HwConfig::paper_instance()
    };
    let lanes = netpu_compiler::compile_packed(&model, &px, netpu_compiler::PackingMode::Lanes8)
        .unwrap()
        .words;
    let dense = netpu_compiler::compile_packed(&model, &px, netpu_compiler::PackingMode::Dense)
        .unwrap()
        .words;
    c.bench_function("packing/lanes8_simulation", |b| {
        b.iter(|| run_inference(black_box(&cfg), black_box(lanes.clone())).unwrap())
    });
    c.bench_function("packing/dense_simulation", |b| {
        b.iter(|| run_inference(black_box(&cfg), black_box(dense.clone())).unwrap())
    });
}

/// One QAT training epoch on a TFC-sized model.
fn bench_training_epoch(c: &mut Criterion) {
    use netpu_nn::train::{train, TrainConfig};
    let (ds, _) = netpu_nn::dataset::standard_splits(256, 0, 7);
    c.bench_function("training/tfc_w1a1_epoch_256ex", |b| {
        b.iter(|| {
            let mut fm = netpu_nn::FloatMlp::init(ZooModel::TfcW1A1.spec(), 3);
            train(
                &mut fm,
                &ds,
                &TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                },
            )
        })
    });
}

/// The SoftMax unit's fixed-point exponential.
fn bench_softmax(c: &mut Criterion) {
    use netpu_arith::Fix;
    let scores: Vec<Fix> = (0..10).map(|i| Fix::from_f64(i as f64 - 5.0)).collect();
    c.bench_function("softmax/ten_class", |b| {
        b.iter(|| netpu_arith::softmax::softmax(black_box(&scores)))
    });
}

criterion_group!(
    benches,
    bench_arith,
    bench_reference,
    bench_compile,
    bench_table4_table5_resources,
    bench_table5_simulation,
    bench_table6_comparison,
    bench_packing_modes,
    bench_training_epoch,
    bench_softmax,
);
criterion_main!(benches);
