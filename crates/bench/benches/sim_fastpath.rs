//! Fast-path simulation throughput: tick-level vs phase-skipping
//! single-inference simulation, sequential vs memoized+parallel
//! `Driver::infer_batch`, and the batch-major bitsliced kernel against
//! the scalar and per-frame-packed batch strategies across the binary
//! zoo.
//!
//! Besides the criterion console output, the run writes a
//! `BENCH_sim.json` trajectory record (under `target/experiments/`, or
//! `NETPU_EXPERIMENT_DIR`) with the measured wall-clock times and
//! speedups so the perf history survives in machine-readable form.

use criterion::{black_box, Criterion};
use netpu_bench::ExperimentRecord;
use netpu_core::netpu::{run_inference, run_inference_fast};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::Driver;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Mean seconds per iteration: one warm-up call, then at least three
/// iterations or 300 ms of measurement, whichever is longer.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if (iters >= 3 && start.elapsed() >= Duration::from_millis(300)) || iters >= 200 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn main() {
    let cfg = HwConfig::paper_instance();
    let model = ZooModel::LfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let pixels: Vec<u8> = (0..784).map(|i| (i % 251) as u8).collect();
    let words = netpu_compiler::compile(&model, &pixels).unwrap().words;

    let mut record = ExperimentRecord::new(
        "BENCH_sim",
        "Fast-path simulation wall-clock trajectory (LfcW1A1)",
    );

    // Single-inference simulation: reference tick loop vs fast path.
    let run = run_inference(&cfg, words.clone()).unwrap();
    let fast = run_inference_fast(&cfg, words.clone()).unwrap();
    assert_eq!(run, fast, "fast path diverged from the tick path");
    let tick_s = measure(|| {
        black_box(run_inference(&cfg, black_box(words.clone())).unwrap());
    });
    let fast_s = measure(|| {
        black_box(run_inference_fast(&cfg, black_box(words.clone())).unwrap());
    });
    println!(
        "sim/lfc_w1a1 tick {:.3} ms  fast {:.3} ms  speedup {:.1}x  ({} cycles)",
        tick_s * 1e3,
        fast_s * 1e3,
        tick_s / fast_s,
        run.cycles
    );
    record.push(serde_json::json!({
        "name": "lfc_w1a1_single_inference",
        "cycles": run.cycles,
        "tick_s": tick_s,
        "fast_s": fast_s,
        "speedup": tick_s / fast_s,
    }));

    // Batched inference: per-frame full simulation (sequential) vs the
    // memoized, rayon-parallel `infer_batch`.
    let driver = Driver::builder().build();
    let frames: Vec<Vec<u8>> = (0..16u8)
        .map(|f| {
            (0..784)
                .map(|i| (i as u16 * (f as u16 + 3) % 251) as u8)
                .collect()
        })
        .collect();
    let sequential_s = measure(|| {
        let mut loadable = netpu_compiler::compile(&model, &frames[0]).unwrap();
        let mut runs = vec![driver.run_loadable(&loadable).unwrap()];
        for pixels in &frames[1..] {
            loadable.replace_input(pixels).unwrap();
            runs.push(driver.run_loadable(&loadable).unwrap());
        }
        black_box(runs);
    });
    let parallel_s = measure(|| {
        black_box(driver.infer_batch(&model, black_box(&frames)).unwrap());
    });
    let n = frames.len() as f64;
    println!(
        "batch/lfc_w1a1 x{} sequential {:.3} ms ({:.0} fps)  parallel {:.3} ms ({:.0} fps)  speedup {:.1}x",
        frames.len(),
        sequential_s * 1e3,
        n / sequential_s,
        parallel_s * 1e3,
        n / parallel_s,
        sequential_s / parallel_s
    );
    record.push(serde_json::json!({
        "name": "infer_batch_16_frames",
        "frames": frames.len(),
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "frames_per_s_before": n / sequential_s,
        "frames_per_s_after": n / parallel_s,
        "speedup": sequential_s / parallel_s,
    }));

    // Batch-major bitsliced kernel vs the two older batch strategies,
    // across the binary zoo at a realistic batch size. Three honest
    // contenders, all bit-exact against each other (asserted below):
    //   scalar    — per-frame phase-skipping simulation, sequential
    //               (the seed's only batch story);
    //   packed    — one sim run + per-frame `PackedMlp` fan-out with
    //               rayon (the pre-bitslice `infer_batch`, replicated
    //               inline);
    //   bitsliced — today's `infer_batch`: 64-image slabs through the
    //               batch-major kernel, slabs swept across workers.
    let batch = 256usize;
    for (zoo, seed) in [
        (ZooModel::TfcW1A1, 21u64),
        (ZooModel::SfcW1A1, 22),
        (ZooModel::LfcW1A1, 23),
    ] {
        let model = zoo.build_untrained(seed, BnMode::Folded).unwrap();
        let frames: Vec<Vec<u8>> = (0..batch)
            .map(|f| {
                (0..model.input.len)
                    .map(|i| ((i * 29 + f * 13 + 7) % 251) as u8)
                    .collect()
            })
            .collect();

        let scalar_s = measure(|| {
            let mut loadable = netpu_compiler::compile(&model, &frames[0]).unwrap();
            let mut classes = vec![driver.run_loadable(&loadable).unwrap().class];
            for pixels in &frames[1..] {
                loadable.replace_input(pixels).unwrap();
                classes.push(driver.run_loadable(&loadable).unwrap().class);
            }
            black_box(classes);
        });
        let packed = netpu_nn::reference::PackedMlp::new(&model);
        let packed_s = measure(|| {
            let loadable = netpu_compiler::compile(&model, &frames[0]).unwrap();
            black_box(run_inference_fast(&cfg, loadable.words).unwrap());
            let classes: Vec<usize> = frames
                .par_iter()
                .map(|pixels| packed.infer_traced(pixels).class)
                .collect();
            black_box(classes);
        });
        let bitsliced_s = measure(|| {
            black_box(driver.infer_batch(&model, black_box(&frames)).unwrap());
        });

        // All three strategies must agree frame-for-frame.
        let batch_runs = driver.infer_batch(&model, &frames).unwrap();
        for (run, pixels) in batch_runs.iter().zip(&frames) {
            assert_eq!(run.class, packed.infer_traced(pixels).class);
        }

        let n = batch as f64;
        println!(
            "zoo/{} x{} scalar {:.0} fps  packed {:.0} fps  bitsliced {:.0} fps  \
             ({:.1}x over scalar, {:.1}x over packed)",
            zoo.name(),
            batch,
            n / scalar_s,
            n / packed_s,
            n / bitsliced_s,
            scalar_s / bitsliced_s,
            packed_s / bitsliced_s,
        );
        record.push(serde_json::json!({
            "name": format!("batch256_{}", zoo.name()),
            "frames": batch,
            "scalar_s": scalar_s,
            "packed_s": packed_s,
            "bitsliced_s": bitsliced_s,
            "frames_per_s_scalar": n / scalar_s,
            "frames_per_s_packed": n / packed_s,
            "frames_per_s_bitsliced": n / bitsliced_s,
            "speedup_vs_scalar": scalar_s / bitsliced_s,
            "speedup_vs_packed": packed_s / bitsliced_s,
        }));
    }

    // Multi-core slab sweep: `infer_batch` splits a batch into 64-image
    // slabs and sweeps them across worker threads, so cross-slab scaling
    // only exists on multi-core hosts. Gated so a single-core runner
    // records no misleading 1.0x row; the core count travels with the
    // row so trajectories from different hosts stay comparable.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        let sweep_batch = 512usize;
        let model = ZooModel::LfcW1A1
            .build_untrained(23, BnMode::Folded)
            .unwrap();
        let frames: Vec<Vec<u8>> = (0..sweep_batch)
            .map(|f| {
                (0..model.input.len)
                    .map(|i| ((i * 31 + f * 17 + 5) % 251) as u8)
                    .collect()
            })
            .collect();
        // Baseline: one slab per call — no cross-slab parallelism.
        let slab_serial_s = measure(|| {
            let mut runs = Vec::with_capacity(sweep_batch);
            for slab in frames.chunks(64) {
                runs.extend(driver.infer_batch(&model, black_box(slab)).unwrap());
            }
            black_box(runs);
        });
        // Sweep: the full batch in one call, slabs fanned across cores.
        let sweep_s = measure(|| {
            black_box(driver.infer_batch(&model, black_box(&frames)).unwrap());
        });
        let n = sweep_batch as f64;
        println!(
            "sweep/lfc_w1a1 x{sweep_batch} serial-slab {:.0} fps  {cores}-core sweep {:.0} fps  scaling {:.2}x",
            n / slab_serial_s,
            n / sweep_s,
            slab_serial_s / sweep_s,
        );
        record.push(serde_json::json!({
            "name": "batch512_multicore_slab_sweep",
            "frames": sweep_batch,
            "cores": cores,
            "slab_serial_s": slab_serial_s,
            "sweep_s": sweep_s,
            "frames_per_s_serial": n / slab_serial_s,
            "frames_per_s_sweep": n / sweep_s,
            "core_scaling": slab_serial_s / sweep_s,
        }));
    } else {
        println!("sweep/lfc_w1a1 skipped: single-core host, no cross-slab parallelism to measure");
    }

    let path = record.write().expect("write BENCH_sim.json");
    println!("trajectory record: {}", path.display());

    // Criterion views of the same workloads, for the bench console.
    let mut c = Criterion::default().measurement_time(Duration::from_millis(300));
    c.bench_function("sim/lfc_w1a1_tick", |b| {
        b.iter(|| run_inference(&cfg, black_box(words.clone())).unwrap())
    });
    c.bench_function("sim/lfc_w1a1_fast", |b| {
        b.iter(|| run_inference_fast(&cfg, black_box(words.clone())).unwrap())
    });
    c.bench_function("batch/infer_batch_16_frames", |b| {
        b.iter(|| driver.infer_batch(&model, black_box(&frames)).unwrap())
    });
}
