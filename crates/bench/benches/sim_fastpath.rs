//! Fast-path simulation throughput: tick-level vs phase-skipping
//! single-inference simulation, and sequential vs memoized+parallel
//! `Driver::infer_batch`.
//!
//! Besides the criterion console output, the run writes a
//! `BENCH_sim.json` trajectory record (under `target/experiments/`, or
//! `NETPU_EXPERIMENT_DIR`) with the measured wall-clock times and
//! speedups so the perf history survives in machine-readable form.

use criterion::{black_box, Criterion};
use netpu_bench::ExperimentRecord;
use netpu_core::netpu::{run_inference, run_inference_fast};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::Driver;
use std::time::{Duration, Instant};

/// Mean seconds per iteration: one warm-up call, then at least three
/// iterations or 300 ms of measurement, whichever is longer.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if (iters >= 3 && start.elapsed() >= Duration::from_millis(300)) || iters >= 200 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn main() {
    let cfg = HwConfig::paper_instance();
    let model = ZooModel::LfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let pixels: Vec<u8> = (0..784).map(|i| (i % 251) as u8).collect();
    let words = netpu_compiler::compile(&model, &pixels).unwrap().words;

    let mut record = ExperimentRecord::new(
        "BENCH_sim",
        "Fast-path simulation wall-clock trajectory (LfcW1A1)",
    );

    // Single-inference simulation: reference tick loop vs fast path.
    let run = run_inference(&cfg, words.clone()).unwrap();
    let fast = run_inference_fast(&cfg, words.clone()).unwrap();
    assert_eq!(run, fast, "fast path diverged from the tick path");
    let tick_s = measure(|| {
        black_box(run_inference(&cfg, black_box(words.clone())).unwrap());
    });
    let fast_s = measure(|| {
        black_box(run_inference_fast(&cfg, black_box(words.clone())).unwrap());
    });
    println!(
        "sim/lfc_w1a1 tick {:.3} ms  fast {:.3} ms  speedup {:.1}x  ({} cycles)",
        tick_s * 1e3,
        fast_s * 1e3,
        tick_s / fast_s,
        run.cycles
    );
    record.push(serde_json::json!({
        "name": "lfc_w1a1_single_inference",
        "cycles": run.cycles,
        "tick_s": tick_s,
        "fast_s": fast_s,
        "speedup": tick_s / fast_s,
    }));

    // Batched inference: per-frame full simulation (sequential) vs the
    // memoized, rayon-parallel `infer_batch`.
    let driver = Driver::builder().build();
    let frames: Vec<Vec<u8>> = (0..16u8)
        .map(|f| {
            (0..784)
                .map(|i| (i as u16 * (f as u16 + 3) % 251) as u8)
                .collect()
        })
        .collect();
    let sequential_s = measure(|| {
        let mut loadable = netpu_compiler::compile(&model, &frames[0]).unwrap();
        let mut runs = vec![driver.run_loadable(&loadable).unwrap()];
        for pixels in &frames[1..] {
            loadable.replace_input(pixels).unwrap();
            runs.push(driver.run_loadable(&loadable).unwrap());
        }
        black_box(runs);
    });
    let parallel_s = measure(|| {
        black_box(driver.infer_batch(&model, black_box(&frames)).unwrap());
    });
    let n = frames.len() as f64;
    println!(
        "batch/lfc_w1a1 x{} sequential {:.3} ms ({:.0} fps)  parallel {:.3} ms ({:.0} fps)  speedup {:.1}x",
        frames.len(),
        sequential_s * 1e3,
        n / sequential_s,
        parallel_s * 1e3,
        n / parallel_s,
        sequential_s / parallel_s
    );
    record.push(serde_json::json!({
        "name": "infer_batch_16_frames",
        "frames": frames.len(),
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "frames_per_s_before": n / sequential_s,
        "frames_per_s_after": n / parallel_s,
        "speedup": sequential_s / parallel_s,
    }));

    let path = record.write().expect("write BENCH_sim.json");
    println!("trajectory record: {}", path.display());

    // Criterion views of the same workloads, for the bench console.
    let mut c = Criterion::default().measurement_time(Duration::from_millis(300));
    c.bench_function("sim/lfc_w1a1_tick", |b| {
        b.iter(|| run_inference(&cfg, black_box(words.clone())).unwrap())
    });
    c.bench_function("sim/lfc_w1a1_fast", |b| {
        b.iter(|| run_inference_fast(&cfg, black_box(words.clone())).unwrap())
    });
    c.bench_function("batch/infer_batch_16_frames", |b| {
        b.iter(|| driver.infer_batch(&model, black_box(&frames)).unwrap())
    });
}
