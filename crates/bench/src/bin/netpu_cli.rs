//! `netpu_cli` — the end-to-end workflow from a shell.
//!
//! ```text
//! netpu_cli train   --model tfc-w1a1 --epochs 8 --out model.json
//! netpu_cli compile --model model.json --out inference.npu [--dense]
//! netpu_cli run     --loadable inference.npu [--softmax on] [--trace t.log]
//! netpu_cli info    --loadable inference.npu
//! netpu_cli bench   --model model.json [--frames 16]
//! netpu_cli macros  [--lpus 2] [--tnpus 8]
//! netpu_cli zoo
//! ```
//!
//! Arguments are `--key value` pairs; unknown keys are rejected.

use netpu_compiler::{compile_packed, decode, Loadable, PackingMode};
use netpu_core::netpu::{run_to_completion, NetPu};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::train::TrainConfig;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{dataset, io, metrics};
use netpu_sim::{StreamSource, Tracer};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key, got {key}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn zoo_by_name(name: &str) -> Result<ZooModel, String> {
    ZooModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown zoo model {name}; try `netpu_cli zoo`"))
}

fn bn_mode(args: &HashMap<String, String>) -> Result<BnMode, String> {
    match args.get("bn").map(String::as_str) {
        None | Some("folded") => Ok(BnMode::Folded),
        Some("hardware") => Ok(BnMode::Hardware),
        Some(other) => Err(format!("--bn must be folded|hardware, got {other}")),
    }
}

fn cmd_zoo() -> Result<(), String> {
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>12}",
        "model", "width", "w bits", "act bits", "weights"
    );
    for m in ZooModel::ALL {
        println!(
            "{:<10} {:>7} {:>8} {:>9} {:>12}",
            m.name(),
            m.hidden_width(),
            m.weight_bits(),
            m.act_bits(),
            m.weight_count()
        );
    }
    Ok(())
}

fn cmd_train(args: &HashMap<String, String>) -> Result<(), String> {
    let model = zoo_by_name(args.get("model").ok_or("--model required")?)?;
    let epochs: usize = args
        .get("epochs")
        .map_or(Ok(8), |v| v.parse())
        .map_err(|e| format!("--epochs: {e}"))?;
    let examples: usize = args
        .get("examples")
        .map_or(Ok(2000), |v| v.parse())
        .map_err(|e| format!("--examples: {e}"))?;
    let out = args.get("out").ok_or("--out required")?;
    let bn = bn_mode(args)?;
    let (train_ds, test_ds) = dataset::standard_splits(examples, examples / 5, 2026);
    eprintln!(
        "training {} for {epochs} epochs on {examples} examples…",
        model.name()
    );
    let (_, qm) = model
        .train(
            &train_ds,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
            bn,
        )
        .map_err(|e| e.to_string())?;
    let acc = metrics::accuracy(&qm, &test_ds);
    io::save_quant(&qm, out).map_err(|e| e.to_string())?;
    println!("saved {out}: test accuracy {:.1}%", acc * 100.0);
    Ok(())
}

fn cmd_compile(args: &HashMap<String, String>) -> Result<(), String> {
    let model =
        io::load_quant(args.get("model").ok_or("--model required")?).map_err(|e| e.to_string())?;
    let out = args.get("out").ok_or("--out required")?;
    let mode = match args.get("packing").map(String::as_str) {
        None | Some("lanes8") => PackingMode::Lanes8,
        Some("dense") => PackingMode::Dense,
        Some(other) => return Err(format!("--packing must be lanes8|dense, got {other}")),
    };
    // A fresh synthetic input; replaceable per inference via the API.
    let seed: u64 = args
        .get("input-seed")
        .map_or(Ok(0), |v| v.parse())
        .map_err(|e| format!("--input-seed: {e}"))?;
    let ds = dataset::generate(1, seed, &dataset::GeneratorConfig::default());
    let loadable =
        compile_packed(&model, &ds.examples[0].pixels, mode).map_err(|e| e.to_string())?;
    loadable.save(out).map_err(|e| e.to_string())?;
    println!(
        "compiled {} → {out}: {} words ({} bytes), input digit {}",
        model.name,
        loadable.len(),
        loadable.len() * 8 + 16,
        ds.examples[0].label
    );
    Ok(())
}

fn cmd_run(args: &HashMap<String, String>) -> Result<(), String> {
    let loadable = Loadable::load(args.get("loadable").ok_or("--loadable required")?)
        .map_err(|e| e.to_string())?;
    let decoded = decode(&loadable.words).map_err(|e| e.to_string())?;
    let cfg = HwConfig {
        softmax_output: args.contains_key("softmax"),
        dense_weight_packing: decoded.packing == PackingMode::Dense,
        ..HwConfig::paper_instance()
    };
    let mut netpu =
        NetPu::new(cfg, StreamSource::new(loadable.words.clone(), 1)).map_err(|e| e.to_string())?;
    if args.contains_key("trace") {
        netpu = netpu.with_tracer(Tracer::bounded(10_000));
    }
    let cycles = run_to_completion(&mut netpu).map_err(|e| e.to_string())?;
    let (class, score) = netpu.result().expect("completed");
    println!(
        "class {class} (score {score}) in {cycles} cycles = {:.2} us at {} MHz",
        netpu_sim::cycles_to_us(cycles, cfg.clock_mhz),
        cfg.clock_mhz
    );
    if let Some(probs) = netpu.probabilities() {
        let line: Vec<String> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{i}:{p:.3}"))
            .collect();
        println!("probabilities: {}", line.join(" "));
    }
    if let Some(path) = args.get("trace") {
        netpu.tracer().save(path).map_err(|e| e.to_string())?;
        println!("trace written to {path} ({} events)", netpu.tracer().len());
    }
    Ok(())
}

fn cmd_info(args: &HashMap<String, String>) -> Result<(), String> {
    let loadable = Loadable::load(args.get("loadable").ok_or("--loadable required")?)
        .map_err(|e| e.to_string())?;
    let d = decode(&loadable.words).map_err(|e| e.to_string())?;
    println!(
        "loadable: {} words, packing {:?}, {} layers",
        loadable.len(),
        d.packing,
        d.settings.len()
    );
    for (i, s) in d.settings.iter().enumerate() {
        println!(
            "  layer {i}: {:?} {}x{} in={} w={} out={} act={} bn_folded={}",
            s.layer_type,
            s.neurons,
            s.input_len,
            s.in_precision,
            s.weight_precision,
            s.out_precision,
            s.activation,
            s.bn_folded
        );
    }
    Ok(())
}

fn cmd_bench(args: &HashMap<String, String>) -> Result<(), String> {
    let model =
        io::load_quant(args.get("model").ok_or("--model required")?).map_err(|e| e.to_string())?;
    let frames: usize = args
        .get("frames")
        .map_or(Ok(16), |v| v.parse())
        .map_err(|e| format!("--frames: {e}"))?;
    let driver = netpu_runtime::Driver::builder().build();
    let inputs: Vec<Vec<u8>> = dataset::generate(frames, 1, &dataset::GeneratorConfig::default())
        .examples
        .iter()
        .map(|e| e.pixels.clone())
        .filter(|p| p.len() == model.input.len)
        .collect();
    if inputs.is_empty() {
        // Non-image input width: synthesize flat frames.
        let flat = vec![vec![128u8; model.input.len]; frames];
        let (_, fps) = driver
            .infer_burst(&model, &flat)
            .map_err(|e| e.to_string())?;
        println!("{}: {frames}-frame burst sustains {fps:.0} fps", model.name);
        return Ok(());
    }
    let single = driver
        .infer(&model, &inputs[0])
        .map_err(|e| e.to_string())?;
    let (_, fps) = driver
        .infer_burst(&model, &inputs)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: latency {:.2} us (sim {:.2}), {} stream words, burst of {frames} sustains {fps:.0} fps, {:.2} W",
        model.name,
        single.measured_latency_us,
        single.sim_latency_us,
        single.stream_words,
        single.power_w
    );
    Ok(())
}

fn cmd_macros(args: &HashMap<String, String>) -> Result<(), String> {
    let mut cfg = HwConfig::paper_instance();
    if let Some(v) = args.get("lpus") {
        cfg.lpus = v.parse().map_err(|e| format!("--lpus: {e}"))?;
    }
    if let Some(v) = args.get("tnpus") {
        cfg.tnpus_per_lpu = v.parse().map_err(|e| format!("--tnpus: {e}"))?;
    }
    cfg.validate().map_err(|e| e.to_string())?;
    print!("{}", netpu_core::genconfig::to_verilog_macros(&cfg));
    let util = netpu_core::resources::netpu_utilization(&cfg);
    let rates = util.rates(&netpu_core::resources::ULTRA96_V2);
    eprintln!(
        "// estimated: {} LUTs ({:.1}%), {} DSPs ({:.1}%), {:.1} BRAM36 ({:.1}%) on Ultra96-V2",
        util.luts,
        rates.luts * 100.0,
        util.dsps,
        rates.dsps * 100.0,
        util.bram36,
        rates.bram36 * 100.0
    );
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = argv
        .split_first()
        .ok_or("usage: netpu_cli <zoo|train|compile|run|info|bench|macros> [--key value]…")?;
    let args = parse_args(rest)?;
    match cmd.as_str() {
        "zoo" => cmd_zoo(),
        "train" => cmd_train(&args),
        "compile" => cmd_compile(&args),
        "run" => cmd_run(&args),
        "info" => cmd_info(&args),
        "bench" => cmd_bench(&args),
        "macros" => cmd_macros(&args),
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
