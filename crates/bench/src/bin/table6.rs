//! Regenerates Table VI: NetPU-M *measured* latency and wall power
//! (DMA/PS overhead included) against the four FINN instances.

use netpu_bench::{delta, paper, ExperimentRecord, TableWriter};
use netpu_core::resources::netpu_utilization;
use netpu_finn::{instance_utilization, FinnInstance};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, PowerParams};

fn measure(driver: &Driver, model: ZooModel, bn: BnMode) -> f64 {
    let qm = model.build_untrained(0xBEEF, bn).expect("build");
    let pixels = vec![128u8; qm.input.len];
    driver
        .infer(&qm, &pixels)
        .expect("infer")
        .measured_latency_us
}

fn main() {
    let driver = Driver::builder().build();
    let mut record = ExperimentRecord::new("table6", "NetPU-M vs FINN comparison");

    println!("Table VI — NetPU-M (Ultra96-V2, 100 MHz, measured) vs FINN (Zynq-7000, 200 MHz)\n");
    println!("NetPU-M instance resources:");
    let u = netpu_utilization(&driver.hw);
    let pr = &paper::TABLE6_NETPU_RESOURCES;
    println!(
        "  paper: {} LUT / {} BRAM / {} DSP   model: {} LUT / {} BRAM / {} DSP\n",
        pr.luts, pr.bram36, pr.dsps, u.luts, u.bram36, u.dsps
    );

    println!("NetPU-M measured latency (us) and wall power:");
    let mut np = TableWriter::new(&[
        "Precision",
        "Model",
        "Paper us",
        "Model us",
        "Δ",
        "Paper W",
        "Model W",
    ]);
    let power = driver.power.wall_power_w(&u, driver.hw.clock_mhz);
    type PrecisionRow<'a> = (&'a str, &'a [(&'a str, ZooModel, BnMode)], f64);
    let rows: [PrecisionRow; 3] = [
        (
            "W1A1",
            &[
                ("TFC", ZooModel::TfcW1A1, BnMode::Folded),
                ("SFC", ZooModel::SfcW1A1, BnMode::Folded),
                ("LFC", ZooModel::LfcW1A1, BnMode::Folded),
            ],
            paper::TABLE6_NETPU[0].power_w,
        ),
        (
            "W2A2",
            &[
                ("TFC", ZooModel::TfcW2A2, BnMode::Folded),
                ("SFC", ZooModel::SfcW2A2, BnMode::Folded),
            ],
            paper::TABLE6_NETPU[1].power_w,
        ),
        (
            "W1A2",
            &[("LFC", ZooModel::LfcW1A2, BnMode::Folded)],
            paper::TABLE6_NETPU[2].power_w,
        ),
    ];
    let paper_cells = |prec: &str, model: &str| -> Option<f64> {
        let row = paper::TABLE6_NETPU.iter().find(|r| r.precision == prec)?;
        match model {
            "TFC" => row.tfc_us,
            "SFC" => row.sfc_us,
            "LFC" => row.lfc_us,
            _ => None,
        }
    };
    for (prec, models, paper_w) in rows {
        for (name, model, bn) in models {
            let got = measure(&driver, *model, *bn);
            let published = paper_cells(prec, name);
            np.row(&[
                prec.into(),
                (*name).into(),
                published.map_or("—".into(), |v| format!("{v:.2}")),
                format!("{got:.2}"),
                published.map_or("—".into(), |v| delta(v, got)),
                format!("{paper_w:.2}"),
                format!("{power:.2}"),
            ]);
            record.push(serde_json::json!({
                "work": "NetPU-M", "precision": prec, "model": name,
                "paper_us": published, "model_us": got,
                "paper_w": paper_w, "model_w": power,
            }));
        }
    }
    np.print();

    println!("\nFINN instances (W1A1):");
    let zc = PowerParams::zc706();
    let mut ft = TableWriter::new(&[
        "Instance",
        "Paper LUT",
        "Model LUT",
        "Paper BRAM",
        "Model BRAM",
        "Paper us",
        "Model us",
        "Δ",
        "Paper W",
        "Model W",
    ]);
    for (inst, p) in FinnInstance::table6().iter().zip(&paper::TABLE6_FINN) {
        let fu = instance_utilization(inst);
        let us = inst.latency_us();
        let w = zc.wall_power_w(&fu, inst.clock_mhz);
        ft.row(&[
            inst.name.into(),
            p.luts.to_string(),
            fu.luts.to_string(),
            p.bram36.to_string(),
            format!("{:.1}", fu.bram36),
            format!("{:.2}", p.latency_us),
            format!("{us:.2}"),
            delta(p.latency_us, us),
            format!("{:.1}", p.power_w),
            format!("{w:.1}"),
        ]);
        record.push(serde_json::json!({
            "work": "FINN", "instance": inst.name,
            "paper": { "luts": p.luts, "bram36": p.bram36, "us": p.latency_us, "w": p.power_w },
            "model": { "luts": fu.luts, "bram36": fu.bram36, "us": us, "w": w },
        }));
    }
    ft.print();

    println!(
        "\nShape checks: one NetPU-M bitstream runs all six models while each FINN\n\
         instance serves one; FINN-max is orders of magnitude faster at 3x the power;\n\
         FINN-fix is comparable in resources but single-model; NetPU-M draws the least\n\
         wall power of all instances."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
