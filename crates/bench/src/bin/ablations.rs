//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Weight-buffer double buffering** — the §V "optimize the data
//!    loading schemes" future work.
//! 2. **TNPU / LPU scaling** — how instance size trades resources
//!    against latency (and where the 64-bit stream becomes the wall).
//! 3. **Multi-channel low-precision weight packing** — the §V future
//!    work of packing 1/2/4-bit weights densely instead of one per
//!    8-bit lane, run executably through the dense-capable instance.
//! 4. **Multi-Threshold precision cap** — Table IV's 4-bit vs 8-bit
//!    resource story at instance scale.

use netpu_bench::{ExperimentRecord, TableWriter};
use netpu_core::netpu::run_inference;
use netpu_core::resources::{netpu_utilization, ULTRA96_V2};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;

fn latency_us(cfg: &HwConfig, model: ZooModel) -> f64 {
    let qm = model.build_untrained(7, BnMode::Folded).unwrap();
    let px = vec![128u8; qm.input.len];
    let words = netpu_compiler::compile(&qm, &px).unwrap().words;
    run_inference(cfg, words).unwrap().latency_us
}

fn main() {
    let base = HwConfig::paper_instance();
    let mut record = ExperimentRecord::new("ablations", "Design-choice ablations");

    println!("Ablation 1 — weight-buffer double buffering (SFC-w1a1 / SFC-w2a2)\n");
    let mut t1 = TableWriter::new(&["Model", "Single-port us", "Double-buffered us", "Speedup"]);
    for model in [ZooModel::SfcW1A1, ZooModel::SfcW2A2] {
        let single = latency_us(&base, model);
        let double = latency_us(
            &HwConfig {
                double_buffered_weights: true,
                ..base
            },
            model,
        );
        t1.row(&[
            model.name().into(),
            format!("{single:.2}"),
            format!("{double:.2}"),
            format!("{:.2}x", single / double),
        ]);
        record.push(serde_json::json!({
            "ablation": "double_buffer", "model": model.name(),
            "single_us": single, "double_us": double,
        }));
    }
    t1.print();

    println!("\nAblation 2 — instance scaling (SFC-w2a2 latency vs resources)\n");
    let mut t2 = TableWriter::new(&["LPUs x TNPUs", "Latency us", "LUTs", "DSPs", "Fits Ultra96"]);
    for (lpus, tnpus) in [(2usize, 2usize), (2, 4), (2, 8), (2, 16), (4, 8)] {
        let cfg = HwConfig {
            lpus,
            tnpus_per_lpu: tnpus,
            ..base
        };
        let us = latency_us(&cfg, ZooModel::SfcW2A2);
        let u = netpu_utilization(&cfg);
        t2.row(&[
            format!("{lpus} x {tnpus}"),
            format!("{us:.2}"),
            u.luts.to_string(),
            u.dsps.to_string(),
            u.fits(&ULTRA96_V2).to_string(),
        ]);
        record.push(serde_json::json!({
            "ablation": "scaling", "lpus": lpus, "tnpus": tnpus,
            "latency_us": us, "luts": u.luts, "dsps": u.dsps,
            "fits": u.fits(&ULTRA96_V2),
        }));
    }
    t2.print();
    println!(
        "\n  Latency saturates quickly with TNPU count: the single 64-bit weight stream\n\
         is the wall (the paper's §V bottleneck), while resources keep growing."
    );

    println!("\nAblation 3 — multi-channel low-precision weight packing (executable)\n");
    let mut t3 = TableWriter::new(&[
        "Model",
        "Lane words",
        "Dense words",
        "Lane us",
        "Dense us",
        "Speedup",
    ]);
    let dense_cfg = HwConfig {
        dense_weight_packing: true,
        ..base
    };
    for model in [ZooModel::TfcW2A2, ZooModel::SfcW2A2] {
        let qm = model.build_untrained(7, BnMode::Folded).unwrap();
        let px = vec![128u8; qm.input.len];
        let lane_loadable =
            netpu_compiler::compile_packed(&qm, &px, netpu_compiler::PackingMode::Lanes8).unwrap();
        let dense_loadable =
            netpu_compiler::compile_packed(&qm, &px, netpu_compiler::PackingMode::Dense).unwrap();
        let lane_us = run_inference(&dense_cfg, lane_loadable.words.clone())
            .unwrap()
            .latency_us;
        let dense_us = run_inference(&dense_cfg, dense_loadable.words.clone())
            .unwrap()
            .latency_us;
        t3.row(&[
            model.name().into(),
            lane_loadable.len().to_string(),
            dense_loadable.len().to_string(),
            format!("{lane_us:.2}"),
            format!("{dense_us:.2}"),
            format!("{:.2}x", lane_us / dense_us),
        ]);
        record.push(serde_json::json!({
            "ablation": "packing", "model": model.name(),
            "lane_words": lane_loadable.len(), "dense_words": dense_loadable.len(),
            "lane_us": lane_us, "dense_us": dense_us,
        }));
    }
    t3.print();
    println!(
        "\n  Dense packing (§V multi-channel future work) cuts the 2-bit weight stream ~4x\n\
         but the latency gain is only ~1.6x: with 8 multiplier lanes, a 32-weight word\n\
         takes 4 dispatch cycles — the bottleneck moves from loading to compute."
    );

    println!("\nAblation 4 — Multi-Threshold precision cap at instance scale\n");
    let mut t4 = TableWriter::new(&["Max MT bits", "Instance LUTs", "LUT rate", "Fits Ultra96"]);
    for bits in [1u8, 2, 4, 8] {
        let cfg = HwConfig {
            max_multithreshold_bits: bits,
            ..base
        };
        let u = netpu_utilization(&cfg);
        t4.row(&[
            bits.to_string(),
            u.luts.to_string(),
            format!("{:.1}%", u.rates(&ULTRA96_V2).luts * 100.0),
            u.fits(&ULTRA96_V2).to_string(),
        ]);
        record.push(serde_json::json!({
            "ablation": "mt_cap", "bits": bits, "luts": u.luts,
            "fits": u.fits(&ULTRA96_V2),
        }));
    }
    t4.print();
    println!(
        "\n  An 8-bit Multi-Threshold cap would need ~5x the platform's LUTs at 16 TNPUs —\n\
         the quantitative reason the paper's instance stops at 4 bits."
    );

    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
