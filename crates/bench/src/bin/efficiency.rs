//! Energy efficiency: the figure the paper's Table VI power data
//! implies but does not draw. Energy per inference (µJ) and inferences
//! per joule for NetPU-M vs the FINN instances, plus the multi-board
//! scaling curve from `netpu-runtime::Cluster`.

use netpu_bench::{ExperimentRecord, TableWriter};
use netpu_finn::{instance_utilization, FinnInstance};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Cluster, Driver, PowerParams};

fn main() {
    let driver = Driver::builder().build();
    let mut record = ExperimentRecord::new("efficiency", "Energy per inference and scaling");

    println!("Energy per inference (NetPU-M measured, FINN from published latency):\n");
    let mut t = TableWriter::new(&["Work", "Model", "Latency us", "Power W", "uJ/inf", "inf/J"]);
    for zm in ZooModel::ALL {
        let qm = zm.build_untrained(1, BnMode::Folded).unwrap();
        let run = driver.infer(&qm, &vec![128u8; qm.input.len]).unwrap();
        t.row(&[
            "NetPU-M".into(),
            zm.name().into(),
            format!("{:.2}", run.measured_latency_us),
            format!("{:.2}", run.power_w),
            format!("{:.0}", run.energy_uj),
            format!("{:.0}", 1e6 / run.energy_uj),
        ]);
        record.push(serde_json::json!({
            "work": "NetPU-M", "model": zm.name(),
            "latency_us": run.measured_latency_us, "power_w": run.power_w,
            "energy_uj": run.energy_uj,
        }));
    }
    let zc = PowerParams::zc706();
    for inst in FinnInstance::table6() {
        let u = instance_utilization(&inst);
        let us = inst.latency_us();
        let w = zc.wall_power_w(&u, inst.clock_mhz);
        let uj = w * us;
        t.row(&[
            "FINN".into(),
            inst.name.into(),
            format!("{us:.2}"),
            format!("{w:.2}"),
            format!("{uj:.1}"),
            format!("{:.0}", 1e6 / uj),
        ]);
        record.push(serde_json::json!({
            "work": "FINN", "model": inst.name,
            "latency_us": us, "power_w": w, "energy_uj": uj,
        }));
    }
    t.print();
    println!(
        "\nShape: FINN-max dominates energy per inference (its latency advantage\n\
         outruns its 3x power draw); NetPU-M's draw is lowest but it pays the\n\
         full weight stream every inference — generality costs energy, not watts."
    );

    println!("\nMulti-board throughput scaling (SFC-w1a1, shared host DMA):\n");
    let sfc = ZooModel::SfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let mut t2 = TableWriter::new(&["Boards", "fps", "Bound", "Cluster W", "inf/J"]);
    for boards in [1usize, 2, 3, 4, 6, 8] {
        let cluster = Cluster::new(boards, driver.clone());
        let tp = cluster.throughput(&sfc).unwrap();
        let bound = if tp.fps < tp.transfer_bound_fps {
            "compute"
        } else {
            "stream"
        };
        let w = cluster.power_w();
        t2.row(&[
            boards.to_string(),
            format!("{:.0}", tp.fps),
            bound.into(),
            format!("{w:.1}"),
            format!("{:.0}", tp.fps / w),
        ]);
        record.push(serde_json::json!({
            "scaling": { "boards": boards, "fps": tp.fps, "bound": bound, "power_w": w },
        }));
    }
    t2.print();
    println!(
        "\nThe shared stream link caps the cluster: once stream-bound, extra boards\n\
         burn watts without adding throughput (inf/J degrades)."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
