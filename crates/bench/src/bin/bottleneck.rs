//! §V bottleneck analysis: *"the bottleneck of parameter loading causes
//! most of the inference latency."* The cycle model's per-layer phase
//! accounting quantifies that claim for each evaluation model: what
//! fraction of the latency is weight streaming, parameter ingestion,
//! neuron initialisation, pipeline drain, and control.

use netpu_bench::{ExperimentRecord, TableWriter};
use netpu_core::netpu::run_inference;
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;

fn main() {
    let cfg = HwConfig::paper_instance();
    let mut record = ExperimentRecord::new("bottleneck", "Latency phase decomposition");
    println!("Latency decomposition per model (paper instance, 100 MHz):\n");
    let mut t = TableWriter::new(&[
        "Model",
        "Total cyc",
        "Weights %",
        "Params %",
        "Init %",
        "Drain %",
        "Output %",
        "Input %",
        "Ctrl %",
    ]);
    for zm in ZooModel::ALL {
        let qm = zm.build_untrained(0xBEEF, BnMode::Folded).unwrap();
        let px = vec![128u8; qm.input.len];
        let run = run_inference(&cfg, netpu_compiler::compile(&qm, &px).unwrap().words).unwrap();
        let s = &run.stats;
        let weights: u64 = s.layers.iter().map(|l| l.weight_cycles).sum();
        let init: u64 = s.layers.iter().map(|l| l.init_cycles).sum();
        let drain: u64 = s.layers.iter().map(|l| l.drain_cycles).sum();
        let output: u64 = s.layers.iter().map(|l| l.output_cycles).sum();
        let input: u64 = s.layers.iter().map(|l| l.input_cycles).sum();
        let params = s.param_cycles + s.settings_cycles + s.input_ingest_cycles;
        let ctrl = run
            .cycles
            .saturating_sub(weights + init + drain + output + input + params);
        let pct = |v: u64| format!("{:.1}", 100.0 * v as f64 / run.cycles as f64);
        t.row(&[
            zm.name().into(),
            run.cycles.to_string(),
            pct(weights),
            pct(params),
            pct(init),
            pct(drain),
            pct(output),
            pct(input),
            pct(ctrl),
        ]);
        record.push(serde_json::json!({
            "model": zm.name(), "cycles": run.cycles,
            "weights": weights, "params": params, "init": init,
            "drain": drain, "output": output, "input": input, "ctrl": ctrl,
        }));
    }
    t.print();
    println!(
        "\nThe §V claim holds: weight/parameter streaming dominates every model\n\
         (>75% for the large ones), which is why the paper's future work targets\n\
         the data loading path (double buffering, dense packing — see `ablations`)."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
