//! Regenerates Table V: resource utilization of the 2-LPU × 8-TNPU
//! NetPU-M instance and its simulated inference latency at 100 MHz for
//! the TFC/SFC/LFC models under the three activation/BN configurations.
//!
//! Latency is data- and weight-value-independent, so the models are
//! deterministic random-weight builds of the paper's topologies.

use netpu_bench::{delta, paper, ExperimentRecord, TableWriter};
use netpu_core::netpu::run_inference;
use netpu_core::resources::{netpu_utilization, ULTRA96_V2};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;

fn simulate(model: ZooModel, bn: BnMode, cfg: &HwConfig) -> f64 {
    let qm = model.build_untrained(0xBEEF, bn).expect("build model");
    let pixels = vec![128u8; qm.input.len];
    let loadable = netpu_compiler::compile(&qm, &pixels).expect("compile");
    run_inference(cfg, loadable.words).expect("run").latency_us
}

fn main() {
    let cfg = HwConfig::paper_instance();

    println!("Table V — NetPU-M instance on Ultra96-V2 (2 LPUs x 8 TNPUs, 100 MHz)\n");
    println!("Resources:");
    let u = netpu_utilization(&cfg);
    let r = u.rates(&ULTRA96_V2);
    let p = &paper::TABLE5_RESOURCES;
    let mut res = TableWriter::new(&["Resource", "Paper", "Model", "Δ", "Rate"]);
    res.row(&[
        "LUTs".into(),
        p.luts.to_string(),
        u.luts.to_string(),
        delta(p.luts as f64, u.luts as f64),
        format!("{:.2}%", r.luts * 100.0),
    ]);
    res.row(&[
        "DSPs".into(),
        p.dsps.to_string(),
        u.dsps.to_string(),
        delta(p.dsps as f64, u.dsps as f64),
        format!("{:.2}%", r.dsps * 100.0),
    ]);
    res.row(&[
        "FFs".into(),
        p.ffs.to_string(),
        u.ffs.to_string(),
        delta(p.ffs as f64, u.ffs as f64),
        format!("{:.2}%", r.ffs * 100.0),
    ]);
    res.row(&[
        "BRAM36".into(),
        p.bram36.to_string(),
        u.bram36.to_string(),
        delta(p.bram36, u.bram36),
        format!("{:.2}%", r.bram36 * 100.0),
    ]);
    res.print();

    println!("\nSimulated inference latency (us):");
    let mut record = ExperimentRecord::new("table5", "NetPU-M resources + simulated latency");
    record.push(serde_json::json!({
        "resources": {
            "paper": { "luts": p.luts, "dsps": p.dsps, "ffs": p.ffs, "bram36": p.bram36 },
            "model": { "luts": u.luts, "dsps": u.dsps, "ffs": u.ffs, "bram36": u.bram36 },
        }
    }));

    // Row 1-2: the Multi-Threshold (w2a2 / w1a2) models, BN folded / not.
    // Row 3: the Sign (w1a1) models (BN always folds into the threshold).
    let configs: [(&str, [ZooModel; 3], BnMode); 3] = [
        (
            "Multi-Thres, BN folded",
            [ZooModel::TfcW2A2, ZooModel::SfcW2A2, ZooModel::LfcW1A2],
            BnMode::Folded,
        ),
        (
            "Multi-Thres, BN hardware",
            [ZooModel::TfcW2A2, ZooModel::SfcW2A2, ZooModel::LfcW1A2],
            BnMode::Hardware,
        ),
        (
            "Sign (BNN)",
            [ZooModel::TfcW1A1, ZooModel::SfcW1A1, ZooModel::LfcW1A1],
            BnMode::Folded,
        ),
    ];
    let mut lat = TableWriter::new(&[
        "Configuration",
        "TFC paper",
        "TFC model",
        "Δ",
        "SFC paper",
        "SFC model",
        "Δ",
        "LFC paper",
        "LFC model",
        "Δ",
    ]);
    for ((label, models, bn), paper_row) in configs.iter().zip(&paper::TABLE5_LATENCY) {
        let got: Vec<f64> = models.iter().map(|&m| simulate(m, *bn, &cfg)).collect();
        lat.row(&[
            label.to_string(),
            format!("{:.3}", paper_row.tfc_us),
            format!("{:.3}", got[0]),
            delta(paper_row.tfc_us, got[0]),
            format!("{:.3}", paper_row.sfc_us),
            format!("{:.3}", got[1]),
            delta(paper_row.sfc_us, got[1]),
            format!("{:.3}", paper_row.lfc_us),
            format!("{:.3}", got[2]),
            delta(paper_row.lfc_us, got[2]),
        ]);
        record.push(serde_json::json!({
            "config": label,
            "paper_us": { "tfc": paper_row.tfc_us, "sfc": paper_row.sfc_us, "lfc": paper_row.lfc_us },
            "model_us": { "tfc": got[0], "sfc": got[1], "lfc": got[2] },
        }));
    }
    lat.print();
    println!(
        "\nShape checks: Sign (1-bit) models run ~4-8x faster than 2-bit models (8-channel\n\
         binary weight packing); BN folding saves ~1-3%; latency scales with weight count."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
