//! Regenerates Table IV: resource utilization of the four single-TNPU
//! instances on the Ultra96-V2 (max Multi-Threshold precision 8 vs 4
//! bits × DSP vs LUT BN-multiplier mode).

use netpu_bench::{delta, paper, ExperimentRecord, TableWriter};
use netpu_core::resources::{tnpu_utilization, ULTRA96_V2};
use netpu_core::{HwConfig, MulImpl};

fn main() {
    println!("Table IV — Resource Utilization of Single TNPU on Ultra96-V2\n");
    let mut table = TableWriter::new(&[
        "Max MT bits",
        "BN Mul Mode",
        "LUTs (paper)",
        "LUTs (model)",
        "Δ",
        "LUT rate",
        "DSPs (paper)",
        "DSPs (model)",
        "FFs (paper)",
        "FFs (model)",
    ]);
    let mut record = ExperimentRecord::new("table4", "Single-TNPU resource utilization");
    for row in &paper::TABLE4 {
        let cfg = HwConfig {
            max_multithreshold_bits: row.max_mt_bits,
            bn_mul: if row.bn_mode == "DSP" {
                MulImpl::Dsp
            } else {
                MulImpl::Lut
            },
            ..HwConfig::paper_instance()
        };
        let u = tnpu_utilization(&cfg);
        let rates = u.rates(&ULTRA96_V2);
        table.row(&[
            row.max_mt_bits.to_string(),
            row.bn_mode.to_string(),
            row.luts.to_string(),
            u.luts.to_string(),
            delta(row.luts as f64, u.luts as f64),
            format!("{:.2}%", rates.luts * 100.0),
            row.dsps.to_string(),
            u.dsps.to_string(),
            row.ffs.to_string(),
            u.ffs.to_string(),
        ]);
        record.push(serde_json::json!({
            "max_mt_bits": row.max_mt_bits,
            "bn_mode": row.bn_mode,
            "paper": { "luts": row.luts, "dsps": row.dsps, "ffs": row.ffs },
            "model": { "luts": u.luts, "dsps": u.dsps, "ffs": u.ffs },
        }));
    }
    table.print();
    println!(
        "\nTotal resources on Ultra96-V2: {} LUTs, {} DSPs, {} FFs.",
        ULTRA96_V2.luts, ULTRA96_V2.dsps, ULTRA96_V2.ffs
    );
    println!(
        "Shape check: 8-bit Multi-Threshold support costs ~27-29% of the platform's LUTs\n\
         per TNPU; capping at 4 bits drops that to ~4-5% — the paper's reason for the\n\
         4-bit limit in the evaluated instance."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
