//! Regenerates Table III: the LPU data-buffer cluster geometry, plus
//! its block-RAM mapping (which feeds the Table V BRAM column).

use netpu_bench::{ExperimentRecord, TableWriter};
use netpu_core::lpu::{Lpu, BUFFER_CLUSTER};
use netpu_sim::fifo::bram36_for;

fn main() {
    println!("Table III — Data Buffer Cluster in LPU\n");
    let mut table = TableWriter::new(&["Buffer Name", "Output Width", "Depth", "BRAM36"]);
    let mut record = ExperimentRecord::new("table3", "LPU data-buffer cluster");
    for &(name, width, depth) in &BUFFER_CLUSTER {
        let bram = bram36_for(width, depth);
        table.row(&[
            name.to_string(),
            format!("{width} bits"),
            depth.to_string(),
            format!("{bram}"),
        ]);
        record.push(serde_json::json!({
            "buffer": name, "width_bits": width, "depth": depth, "bram36": bram,
        }));
    }
    table.print();
    println!(
        "\nPer-LPU buffer BRAM total: {} RAMB36 (paper instance: 2 LPUs → {}).",
        Lpu::buffer_bram36(),
        2.0 * Lpu::buffer_bram36()
    );
    println!(
        "Max input length / neuron count per layer at 8-bit precision: 8192 (paper §III.B.2)."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
