//! Consolidated reproduction report: collects every JSON experiment
//! record under `target/experiments/` and renders one markdown document
//! with paper-vs-reproduced deltas — the machine-checked companion to
//! the hand-written `EXPERIMENTS.md`.
//!
//! Run the `table*`/`accuracy`/`ablations`/`efficiency`/`bottleneck`
//! binaries first, then:
//!
//! ```sh
//! cargo run --release -p netpu-bench --bin report > reproduction_report.md
//! ```

use netpu_bench::{delta, ExperimentRecord};
use serde_json::Value;
use std::collections::BTreeMap;

fn load_records() -> BTreeMap<String, Value> {
    let dir = ExperimentRecord::default_dir();
    let mut records = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return records;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map(|e| e == "json") != Some(true) {
            continue;
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(v) = serde_json::from_str::<Value>(&text) {
                if let Some(id) = v["id"].as_str() {
                    records.insert(id.to_string(), v);
                }
            }
        }
    }
    records
}

fn f(v: &Value) -> Option<f64> {
    v.as_f64()
}

fn table5_section(rec: &Value) -> String {
    let mut out = String::from("## Table V — simulated latency\n\n| Configuration | Model | Paper µs | Repro µs | Δ |\n|---|---|---|---|---|\n");
    for row in rec["rows"].as_array().into_iter().flatten() {
        let Some(config) = row["config"].as_str() else {
            continue;
        };
        for model in ["tfc", "sfc", "lfc"] {
            let (Some(p), Some(m)) = (f(&row["paper_us"][model]), f(&row["model_us"][model]))
            else {
                continue;
            };
            out += &format!(
                "| {config} | {} | {p:.3} | {m:.3} | {} |\n",
                model.to_uppercase(),
                delta(p, m)
            );
        }
    }
    out
}

fn table6_section(rec: &Value) -> String {
    let mut out = String::from("## Table VI — measured latency and power\n\n| Work | Instance/Model | Paper µs | Repro µs | Δ | Paper W | Repro W |\n|---|---|---|---|---|---|---|\n");
    for row in rec["rows"].as_array().into_iter().flatten() {
        match row["work"].as_str() {
            Some("NetPU-M") => {
                let name = format!(
                    "{} {}",
                    row["precision"].as_str().unwrap_or("?"),
                    row["model"].as_str().unwrap_or("?")
                );
                let m = f(&row["model_us"]).unwrap_or(f64::NAN);
                let (p_str, d_str) = match f(&row["paper_us"]) {
                    Some(p) => (format!("{p:.2}"), delta(p, m)),
                    None => ("—".into(), "—".into()),
                };
                out += &format!(
                    "| NetPU-M | {name} | {p_str} | {m:.2} | {d_str} | {:.2} | {:.2} |\n",
                    f(&row["paper_w"]).unwrap_or(f64::NAN),
                    f(&row["model_w"]).unwrap_or(f64::NAN),
                );
            }
            Some("FINN") => {
                let p = f(&row["paper"]["us"]).unwrap_or(f64::NAN);
                let m = f(&row["model"]["us"]).unwrap_or(f64::NAN);
                out += &format!(
                    "| FINN | {} | {p:.2} | {m:.2} | {} | {:.1} | {:.1} |\n",
                    row["instance"].as_str().unwrap_or("?"),
                    delta(p, m),
                    f(&row["paper"]["w"]).unwrap_or(f64::NAN),
                    f(&row["model"]["w"]).unwrap_or(f64::NAN),
                );
            }
            _ => {}
        }
    }
    out
}

fn table4_section(rec: &Value) -> String {
    let mut out = String::from("## Table IV — single-TNPU resources\n\n| Max MT bits | BN mul | LUTs paper | LUTs repro | Δ |\n|---|---|---|---|---|\n");
    for row in rec["rows"].as_array().into_iter().flatten() {
        let p = f(&row["paper"]["luts"]).unwrap_or(f64::NAN);
        let m = f(&row["model"]["luts"]).unwrap_or(f64::NAN);
        out += &format!(
            "| {} | {} | {p:.0} | {m:.0} | {} |\n",
            row["max_mt_bits"],
            row["bn_mode"].as_str().unwrap_or("?"),
            delta(p, m)
        );
    }
    out
}

fn accuracy_section(rec: &Value) -> String {
    let mut out = String::from("## Six-model functional experiment\n\n| Model | Test accuracy | Accelerator ≡ reference | Measured µs |\n|---|---|---|---|\n");
    for row in rec["rows"].as_array().into_iter().flatten() {
        out += &format!(
            "| {} | {:.1}% | {} | {:.2} |\n",
            row["model"].as_str().unwrap_or("?"),
            f(&row["test_accuracy"]).unwrap_or(f64::NAN) * 100.0,
            row["accelerator_agreement"].as_str().unwrap_or("?"),
            f(&row["measured_latency_us"]).unwrap_or(f64::NAN),
        );
    }
    out
}

fn main() {
    let records = load_records();
    println!("# NetPU-M reproduction report (generated)\n");
    if records.is_empty() {
        println!(
            "No experiment records found in `{}`.\nRun the table binaries first (see EXPERIMENTS.md).",
            ExperimentRecord::default_dir().display()
        );
        return;
    }
    println!(
        "Generated from {} experiment record(s): {}.\n",
        records.len(),
        records.keys().cloned().collect::<Vec<_>>().join(", ")
    );
    if let Some(rec) = records.get("table4") {
        println!("{}", table4_section(rec));
    }
    if let Some(rec) = records.get("table5") {
        println!("{}", table5_section(rec));
    }
    if let Some(rec) = records.get("table6") {
        println!("{}", table6_section(rec));
    }
    if let Some(rec) = records.get("accuracy") {
        println!("{}", accuracy_section(rec));
    }
    for extra in ["ablations", "efficiency", "bottleneck", "table3"] {
        if let Some(rec) = records.get(extra) {
            println!(
                "## {} — {} row(s) recorded\n\nSee `target/experiments/{extra}.json` for the data.\n",
                rec["title"].as_str().unwrap_or(extra),
                rec["rows"].as_array().map_or(0, Vec::len),
            );
        }
    }
}
