//! The §IV functional claim: one NetPU-M instance infers all six
//! TFC/SFC/LFC models, without hardware regeneration, at the accuracy
//! the trained models achieve in software.
//!
//! Trains each zoo model with quantization-aware training on the
//! synthetic digit dataset, then verifies that the accelerator's
//! classification matches the bit-exact reference on every test image
//! (and therefore reproduces the same accuracy).
//!
//! Usage: `accuracy [--full]` — by default LFC is trained with a reduced
//! budget; `--full` trains all six models with the full budget.

use netpu_bench::{ExperimentRecord, TableWriter};
use netpu_nn::export::BnMode;
use netpu_nn::train::TrainConfig;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{dataset, metrics, reference};
use netpu_runtime::Driver;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (train_ds, test_ds) = dataset::standard_splits(3_000, 500, 2026);
    let driver = Driver::builder().build();
    let mut record = ExperimentRecord::new("accuracy", "Six-model accuracy through one instance");
    let mut table = TableWriter::new(&[
        "Model",
        "Train size",
        "Epochs",
        "Test accuracy",
        "Accelerator agreement",
        "Latency us",
        "Train s",
    ]);

    for model in ZooModel::ALL {
        // LFC is 50x the weight count of TFC; reduce its budget unless
        // --full is requested.
        let is_lfc = model.hidden_width() == 1024;
        let (epochs, n_train) = match (is_lfc, full) {
            (true, false) => (4, 1_500),
            (true, true) => (10, 3_000),
            (false, _) => (10, 3_000),
        };
        let subset = dataset::Dataset {
            examples: train_ds.examples[..n_train].to_vec(),
        };
        let started = Instant::now();
        let (_, qm) = model
            .train(
                &subset,
                &TrainConfig {
                    epochs,
                    ..TrainConfig::default()
                },
                BnMode::Folded,
            )
            .expect("train+export");
        let train_s = started.elapsed().as_secs_f64();
        let acc = metrics::accuracy(&qm, &test_ds);

        // Drive a sample of test images through the cycle-level
        // accelerator and check agreement with the reference.
        let sample = 25.min(test_ds.len());
        let mut agree = 0usize;
        let mut latency = 0.0;
        for e in test_ds.examples.iter().take(sample) {
            let run = driver.infer(&qm, &e.pixels).expect("infer");
            latency = run.measured_latency_us;
            agree += usize::from(run.class == reference::infer(&qm, &e.pixels));
        }
        table.row(&[
            model.name().into(),
            n_train.to_string(),
            epochs.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{agree}/{sample}"),
            format!("{latency:.2}"),
            format!("{train_s:.1}"),
        ]);
        record.push(serde_json::json!({
            "model": model.name(),
            "train_size": n_train,
            "epochs": epochs,
            "test_accuracy": acc,
            "accelerator_agreement": format!("{agree}/{sample}"),
            "measured_latency_us": latency,
        }));
        assert_eq!(
            agree, sample,
            "{model}: accelerator diverged from reference"
        );
    }

    println!("Accuracy of the six zoo models through one NetPU-M instance\n");
    table.print();
    println!(
        "\nEvery model runs on the same instance (no hardware regeneration); the\n\
         accelerator agrees with the bit-exact reference on every sampled image."
    );
    let path = record.write().expect("write experiment record");
    println!("\nrecord: {}", path.display());
}
