//! Machine-readable experiment records.
//!
//! Every `table*` binary writes its reproduced rows as JSON to
//! `target/experiments/<id>.json`, so `EXPERIMENTS.md` and downstream
//! tooling never parse console output.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// One experiment's machine-readable output.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"table5"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Reproduced data rows.
    pub rows: Vec<serde_json::Value>,
}

impl serde_json::ToJson for ExperimentRecord {
    fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert("id".into(), self.id.clone().into());
        m.insert("title".into(), self.title.clone().into());
        m.insert("rows".into(), serde_json::Value::Array(self.rows.clone()));
        serde_json::Value::Object(m)
    }
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: &str, title: &str) -> ExperimentRecord {
        ExperimentRecord {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, row: serde_json::Value) {
        self.rows.push(row);
    }

    /// The default output directory (`target/experiments` under the
    /// workspace, or `NETPU_EXPERIMENT_DIR` when set).
    pub fn default_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("NETPU_EXPERIMENT_DIR") {
            return PathBuf::from(dir);
        }
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
    }

    /// Writes the record as pretty JSON, returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = ExperimentRecord::default_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, serde_json::to_string_pretty(self)?)?;
        Ok(path)
    }

    /// Writes the record, merging with any existing record of the same
    /// id already on disk. Rows are keyed by their `"name"` field: rows
    /// in `self` replace same-named rows, every other existing row
    /// survives (unnamed rows are kept). This lets several benches feed
    /// one trajectory file — e.g. `serve_scaling` and `fleet_replay`
    /// both own rows of `BENCH_serve.json` — without clobbering each
    /// other's results.
    pub fn write_merged(&self) -> std::io::Result<PathBuf> {
        let dir = ExperimentRecord::default_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let new_names: Vec<&str> = self
            .rows
            .iter()
            .filter_map(|r| r.get("name").and_then(serde_json::Value::as_str))
            .collect();
        let mut merged: Vec<serde_json::Value> = Vec::new();
        if let Ok(text) = fs::read_to_string(&path) {
            if let Ok(old) = serde_json::from_str::<serde_json::Value>(&text) {
                if let Some(rows) = old.get("rows").and_then(serde_json::Value::as_array) {
                    for row in rows {
                        let keep = match row.get("name").and_then(serde_json::Value::as_str) {
                            Some(name) => !new_names.contains(&name),
                            None => true,
                        };
                        if keep {
                            merged.push(row.clone());
                        }
                    }
                }
            }
        }
        merged.extend(self.rows.iter().cloned());
        let combined = ExperimentRecord {
            id: self.id.clone(),
            title: self.title.clone(),
            rows: merged,
        };
        fs::write(&path, serde_json::to_string_pretty(&combined)?)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("netpu-record-test");
        std::env::set_var("NETPU_EXPERIMENT_DIR", &dir);
        let mut r = ExperimentRecord::new("test_rec", "A test");
        r.push(serde_json::json!({"k": 1}));
        let path = r.write().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["id"], "test_rec");
        assert_eq!(v["rows"][0]["k"], 1);
        std::env::remove_var("NETPU_EXPERIMENT_DIR");
    }

    #[test]
    fn merged_writes_replace_by_name_and_keep_the_rest() {
        let dir = std::env::temp_dir().join("netpu-record-merge-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("NETPU_EXPERIMENT_DIR", &dir);
        let mut first = ExperimentRecord::new("test_merge", "first");
        first.push(serde_json::json!({"name": "a", "v": 1}));
        first.push(serde_json::json!({"name": "b", "v": 2}));
        first.write_merged().unwrap();
        let mut second = ExperimentRecord::new("test_merge", "second");
        second.push(serde_json::json!({"name": "b", "v": 20}));
        second.push(serde_json::json!({"name": "c", "v": 3}));
        let path = second.write_merged().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rows = v.get("rows").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(rows.len(), 3, "a survives, b replaced, c appended");
        assert_eq!(rows[0]["name"], "a");
        assert_eq!(rows[0]["v"], 1);
        assert_eq!(rows[1]["name"], "b");
        assert_eq!(rows[1]["v"], 20);
        assert_eq!(rows[2]["name"], "c");
        std::env::remove_var("NETPU_EXPERIMENT_DIR");
    }
}
