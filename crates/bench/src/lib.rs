#![deny(missing_docs)]
//! Benchmark-harness support: the paper's published values, table
//! rendering, and machine-readable experiment records.
//!
//! Each `table*` binary in this crate regenerates one table of the
//! paper's evaluation section, printing the published row next to the
//! reproduced row and emitting a JSON record under
//! `target/experiments/` that `EXPERIMENTS.md` is written from.

pub mod paper;
pub mod record;
pub mod table;

pub use record::ExperimentRecord;
pub use table::TableWriter;

/// Formats a reproduced-vs-published delta as a signed percentage.
pub fn delta(published: f64, reproduced: f64) -> String {
    if published == 0.0 {
        return "—".into();
    }
    let pct = (reproduced / published - 1.0) * 100.0;
    format!("{pct:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_formats_signed_percentages() {
        assert_eq!(delta(100.0, 105.0), "+5.0%");
        assert_eq!(delta(100.0, 95.0), "-5.0%");
        assert_eq!(delta(0.0, 95.0), "—");
    }
}
