//! The paper's published evaluation numbers, transcribed from Tables
//! IV, V, and VI for side-by-side comparison.

/// One Table IV row: a single-TNPU instance.
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// Maximum Multi-Threshold precision supported (bits).
    pub max_mt_bits: u8,
    /// BN multiplier mode ("DSP" or "LUT").
    pub bn_mode: &'static str,
    /// Published LUT count.
    pub luts: u64,
    /// Published DSP count.
    pub dsps: u64,
    /// Published FF count.
    pub ffs: u64,
}

/// Table IV: resource utilization of a single TNPU on the Ultra96-V2.
pub const TABLE4: [Table4Row; 4] = [
    Table4Row {
        max_mt_bits: 8,
        bn_mode: "DSP",
        luts: 19_049,
        dsps: 16,
        ffs: 32,
    },
    Table4Row {
        max_mt_bits: 8,
        bn_mode: "LUT",
        luts: 20_138,
        dsps: 12,
        ffs: 32,
    },
    Table4Row {
        max_mt_bits: 4,
        bn_mode: "DSP",
        luts: 2_705,
        dsps: 16,
        ffs: 32,
    },
    Table4Row {
        max_mt_bits: 4,
        bn_mode: "LUT",
        luts: 3_794,
        dsps: 12,
        ffs: 32,
    },
];

/// Table V: published resources of the 2-LPU × 8-TNPU NetPU-M instance.
pub struct Table5Resources {
    /// Published LUTs.
    pub luts: u64,
    /// Published DSPs.
    pub dsps: u64,
    /// Published FFs.
    pub ffs: u64,
    /// Published BRAM36 blocks.
    pub bram36: f64,
}

/// Table V resource row.
pub const TABLE5_RESOURCES: Table5Resources = Table5Resources {
    luts: 59_755,
    dsps: 256,
    ffs: 14_601,
    bram36: 129.5,
};

/// One Table V latency configuration row.
#[derive(Clone, Copy, Debug)]
pub struct Table5Latency {
    /// Configuration label.
    pub config: &'static str,
    /// TFC / SFC / LFC simulated latency (µs at 100 MHz).
    pub tfc_us: f64,
    /// SFC latency (µs).
    pub sfc_us: f64,
    /// LFC latency (µs).
    pub lfc_us: f64,
}

/// Table V: simulated inference latency per activation/BN configuration.
pub const TABLE5_LATENCY: [Table5Latency; 3] = [
    Table5Latency {
        config: "Multi-Thres, BN folded",
        tfc_us: 172.165,
        sfc_us: 882.085,
        lfc_us: 7_408.225,
    },
    Table5Latency {
        config: "Multi-Thres, BN in hardware",
        tfc_us: 175.805,
        sfc_us: 895.805,
        lfc_us: 7_462.205,
    },
    Table5Latency {
        config: "Sign (BNN)",
        tfc_us: 38.745,
        sfc_us: 133.785,
        lfc_us: 974.745,
    },
];

/// One Table VI NetPU-M measured row.
#[derive(Clone, Copy, Debug)]
pub struct Table6NetPu {
    /// Model precision label (`W1A1`, `W2A2`, `W1A2`).
    pub precision: &'static str,
    /// Measured TFC latency, µs (None where the paper has no entry).
    pub tfc_us: Option<f64>,
    /// Measured SFC latency, µs.
    pub sfc_us: Option<f64>,
    /// Measured LFC latency, µs.
    pub lfc_us: Option<f64>,
    /// Wall power, W (per-model measurements averaged in the paper).
    pub power_w: f64,
}

/// Table VI: NetPU-M (CGM-64, Ultra96-V2, 100 MHz) measured rows.
pub const TABLE6_NETPU: [Table6NetPu; 3] = [
    Table6NetPu {
        precision: "W1A1",
        tfc_us: Some(44.64),
        sfc_us: Some(139.75),
        lfc_us: Some(980.63),
        power_w: 6.93,
    },
    Table6NetPu {
        precision: "W2A2",
        tfc_us: Some(178.18),
        sfc_us: Some(888.0),
        lfc_us: None,
        power_w: 6.98,
    },
    Table6NetPu {
        precision: "W1A2",
        tfc_us: None,
        sfc_us: None,
        lfc_us: Some(7_414.13),
        power_w: 6.88,
    },
];

/// Published NetPU-M instance resources in Table VI (LUT/BRAM/DSP).
pub struct Table6NetPuResources {
    /// LUTs.
    pub luts: u64,
    /// BRAM36 blocks.
    pub bram36: f64,
    /// DSP slices.
    pub dsps: u64,
}

/// Table VI NetPU-M resource row.
pub const TABLE6_NETPU_RESOURCES: Table6NetPuResources = Table6NetPuResources {
    luts: 66_494,
    bram36: 126.5,
    dsps: 256,
};

/// One Table VI FINN row.
#[derive(Clone, Copy, Debug)]
pub struct Table6Finn {
    /// Instance name.
    pub name: &'static str,
    /// Published LUTs.
    pub luts: u64,
    /// Published BRAM36.
    pub bram36: f64,
    /// Published latency, µs.
    pub latency_us: f64,
    /// Published wall power, W.
    pub power_w: f64,
}

/// Table VI: the four FINN instances (Zynq-7000, 200 MHz, W1A1).
pub const TABLE6_FINN: [Table6Finn; 4] = [
    Table6Finn {
        name: "SFC-max",
        luts: 91_131,
        bram36: 4.5,
        latency_us: 0.31,
        power_w: 21.2,
    },
    Table6Finn {
        name: "LFC-max",
        luts: 82_988,
        bram36: 396.0,
        latency_us: 2.44,
        power_w: 22.6,
    },
    Table6Finn {
        name: "SFC-fix",
        luts: 5_155,
        bram36: 16.0,
        latency_us: 240.0,
        power_w: 8.1,
    },
    Table6Finn {
        name: "LFC-fix",
        luts: 5_636,
        bram36: 114.5,
        latency_us: 282.0,
        power_w: 7.9,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcriptions_are_internally_consistent() {
        // Sign is the fastest Table V configuration everywhere.
        let sign = TABLE5_LATENCY[2];
        for cfg in &TABLE5_LATENCY[..2] {
            assert!(sign.tfc_us < cfg.tfc_us);
            assert!(sign.sfc_us < cfg.sfc_us);
            assert!(sign.lfc_us < cfg.lfc_us);
        }
        // FINN max instances are faster but hungrier than fix ones.
        assert!(TABLE6_FINN[0].latency_us < TABLE6_FINN[2].latency_us);
        assert!(TABLE6_FINN[0].luts > TABLE6_FINN[2].luts);
        assert!(TABLE6_FINN[0].power_w > TABLE6_FINN[2].power_w);
    }

    #[test]
    fn measured_exceeds_simulated() {
        // Table VI measured ≥ Table V simulated for every shared cell.
        assert!(TABLE6_NETPU[0].tfc_us.unwrap() > TABLE5_LATENCY[2].tfc_us);
        assert!(TABLE6_NETPU[1].tfc_us.unwrap() > TABLE5_LATENCY[0].tfc_us);
        assert!(TABLE6_NETPU[2].lfc_us.unwrap() > TABLE5_LATENCY[0].lfc_us);
    }
}
