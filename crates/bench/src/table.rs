//! Console table rendering for the benchmark binaries.

/// A simple fixed-width console table.
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TableWriter {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer-name"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
