//! The compiled-loadable cache: full admission exactly once per model.
//!
//! Every request entering the fleet references a model by id. The first
//! request for a model pays the whole compile + admission pipeline
//! (`netpu-check` NPC001–NPC020 structural and abstract-interpretation
//! range checks, plus — on a strict-equiv driver — NPC021–NPC026
//! translation validation against the source model) and one
//! cycle-accurate simulation;
//! every later request reuses the [`AdmittedModel`] from the cache and
//! splices its own input words into a clone of the compiled stream
//! (`Loadable::replace_input`), never re-running admission. The cache
//! is byte-budgeted LRU: admitting a model past the budget evicts the
//! least-recently-used residents first.
//!
//! [`LruCore`] — the budget/recency bookkeeping — is public on its own
//! so the property suite can drive arbitrary admit/evict/lookup
//! sequences against a reference model without paying for real
//! compilation (see `tests/cache_proptest.rs`).

use netpu_arith::cast;
use netpu_compiler::{compile, Loadable};
use netpu_nn::QuantMlp;
use netpu_runtime::{Driver, DriverError, MeasuredRun};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// One cached slot.
struct Slot<V> {
    value: V,
    bytes: u64,
    last_used: u64,
}

/// Outcome of an [`LruCore::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Inserted; `evicted` lists the ids displaced to make room, in
    /// eviction order.
    Inserted {
        /// Ids evicted to fit the new entry.
        evicted: Vec<u64>,
    },
    /// The entry alone exceeds the whole budget; nothing was cached and
    /// nothing was evicted.
    TooLarge {
        /// Size of the rejected entry, bytes.
        bytes: u64,
        /// The configured budget, bytes.
        capacity: u64,
    },
}

/// Byte-budgeted LRU bookkeeping over opaque values.
///
/// Invariants (property-tested in `tests/cache_proptest.rs`):
/// resident bytes never exceed the budget, and a lookup only ever
/// returns a value that was inserted and has not been evicted since.
pub struct LruCore<V> {
    capacity_bytes: u64,
    resident_bytes: u64,
    tick: u64,
    entries: HashMap<u64, Slot<V>>,
}

impl<V> LruCore<V> {
    /// An empty cache with the given byte budget.
    pub fn new(capacity_bytes: u64) -> LruCore<V> {
        LruCore {
            capacity_bytes,
            resident_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured budget, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently resident (always ≤ the budget).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `id`, refreshing its recency on a hit.
    pub fn lookup(&mut self, id: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&id).map(|slot| {
            slot.last_used = tick;
            &slot.value
        })
    }

    /// Inserts `value` under `id`, evicting least-recently-used entries
    /// until it fits. Re-inserting an existing id replaces the old
    /// value (its bytes are released first). Entries larger than the
    /// whole budget are refused.
    pub fn insert(&mut self, id: u64, value: V, bytes: u64) -> Admit {
        if bytes > self.capacity_bytes {
            return Admit::TooLarge {
                bytes,
                capacity: self.capacity_bytes,
            };
        }
        if let Some(old) = self.entries.remove(&id) {
            self.resident_bytes -= old.bytes;
        }
        let mut evicted = Vec::new();
        while self.resident_bytes + bytes > self.capacity_bytes {
            // Victim: oldest recency, ties broken by smaller id so the
            // walk over the unordered map stays deterministic.
            let victim = self
                .entries
                .iter()
                .map(|(&vid, slot)| (slot.last_used, vid))
                .min();
            let Some((_, vid)) = victim else { break };
            if let Some(slot) = self.entries.remove(&vid) {
                self.resident_bytes -= slot.bytes;
                evicted.push(vid);
            }
        }
        self.tick += 1;
        self.entries.insert(
            id,
            Slot {
                value,
                bytes,
                last_used: self.tick,
            },
        );
        self.resident_bytes += bytes;
        Admit::Inserted { evicted }
    }

    /// Removes `id`, returning its value if it was resident.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        self.entries.remove(&id).map(|slot| {
            self.resident_bytes -= slot.bytes;
            slot.value
        })
    }

    /// Resident ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// A model that has passed full admission, with the swap-cost figures
/// the scheduler needs.
///
/// The split between `transfer_us` and `resident_transfer_us` is the
/// paper's §V reconfiguration economics: a board that already holds the
/// model's weight sections only needs the header + layer settings +
/// input words re-streamed, so a residency hit skips
/// `weight_stream_us` of DMA occupancy — the quantity swap-aware
/// scheduling exists to amortize.
#[derive(Clone, Debug)]
pub struct AdmittedModel {
    /// Fleet-wide model id (the cache key).
    pub id: u64,
    /// The admitted stream (input section spliced per request).
    pub loadable: Loadable,
    /// The admission run's measurements (input-independent timing).
    pub run: MeasuredRun,
    /// DMA occupancy streaming the whole loadable, µs.
    pub transfer_us: f64,
    /// DMA occupancy streaming only header + settings + input, µs.
    pub resident_transfer_us: f64,
    /// DMA time a residency hit saves: `transfer_us -
    /// resident_transfer_us`, µs.
    pub weight_stream_us: f64,
    /// End-to-end latency when the board already holds the weights, µs.
    pub resident_latency_us: f64,
    /// Cache footprint: the stream words, bytes.
    pub bytes: u64,
}

impl AdmittedModel {
    /// `(dma_transfer_us, total_latency_us)` for a placement, given
    /// whether the chosen board already holds this model's weights.
    pub fn service_cost(&self, resident_hit: bool) -> (f64, f64) {
        if resident_hit {
            (self.resident_transfer_us, self.resident_latency_us)
        } else {
            (self.transfer_us, self.run.measured_latency_us)
        }
    }
}

/// Point-in-time cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run admission.
    pub misses: u64,
    /// Models evicted to respect the byte budget.
    pub evictions: u64,
    /// Admissions refused (check failure or entry above the budget).
    pub rejected: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// The configured budget, bytes.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, `None` before any.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| cast::f64_from_u64(self.hits) / cast::f64_from_u64(total))
    }
}

struct CacheInner {
    lru: LruCore<Arc<AdmittedModel>>,
    in_flight: HashSet<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

/// The shared compiled-model cache.
///
/// Thread-safe and admission-coalescing: when several workers miss on
/// the same model id concurrently, exactly one runs the admission
/// pipeline while the rest block on a condvar and reuse its result —
/// admission happens once per model, not once per racing worker.
pub struct CompiledModelCache {
    driver: Driver,
    inner: Mutex<CacheInner>,
    admitted: Condvar,
}

impl CompiledModelCache {
    /// An empty cache admitting through `driver` (whose `strict_range`,
    /// `strict_equiv`, and hardware instance govern what passes),
    /// budgeted to `capacity_bytes` of stream words.
    pub fn new(driver: Driver, capacity_bytes: u64) -> CompiledModelCache {
        CompiledModelCache {
            driver,
            inner: Mutex::new(CacheInner {
                lru: LruCore::new(capacity_bytes),
                in_flight: HashSet::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
                rejected: 0,
            }),
            admitted: Condvar::new(),
        }
    }

    /// The driver admissions run against.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// Returns the admitted form of `model`, running the full admission
    /// pipeline at most once per id. Concurrent misses on one id
    /// coalesce into a single admission. A model larger than the whole
    /// budget is still admitted and returned — it just isn't cached.
    pub fn get_or_admit(
        &self,
        id: u64,
        model: &QuantMlp,
    ) -> Result<Arc<AdmittedModel>, DriverError> {
        {
            let mut inner = lock(&self.inner);
            loop {
                if let Some(hit) = inner.lru.lookup(id).map(Arc::clone) {
                    inner.hits += 1;
                    return Ok(hit);
                }
                if !inner.in_flight.contains(&id) {
                    inner.in_flight.insert(id);
                    inner.misses += 1;
                    break;
                }
                inner = self
                    .admitted
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Admission runs outside the lock: other models stay servable
        // while this one compiles, checks, and simulates.
        let outcome = self.admit(id, model);
        let mut inner = lock(&self.inner);
        inner.in_flight.remove(&id);
        match &outcome {
            Ok(admitted) => match inner.lru.insert(id, Arc::clone(admitted), admitted.bytes) {
                Admit::Inserted { evicted } => {
                    inner.evictions += cast::u64_from_usize(evicted.len());
                }
                Admit::TooLarge { .. } => inner.rejected += 1,
            },
            Err(_) => inner.rejected += 1,
        }
        drop(inner);
        self.admitted.notify_all();
        outcome
    }

    /// Looks `id` up without admitting on a miss. Counts toward the
    /// hit/miss statistics.
    pub fn lookup(&self, id: u64) -> Option<Arc<AdmittedModel>> {
        let mut inner = lock(&self.inner);
        match inner.lru.lookup(id) {
            Some(hit) => {
                let hit = Arc::clone(hit);
                inner.hits += 1;
                Some(hit)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// `true` when `id` is resident, without touching recency or the
    /// hit/miss statistics.
    pub fn contains(&self, id: u64) -> bool {
        lock(&self.inner).lru.ids().binary_search(&id).is_ok()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = lock(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            rejected: inner.rejected,
            resident_bytes: inner.lru.resident_bytes(),
            capacity_bytes: inner.lru.capacity_bytes(),
        }
    }

    /// Compile + full admission + one simulation. The source model is
    /// in hand here, so the pre-flight runs through
    /// [`Driver::run_loadable_against`]: a strict-equiv driver extends
    /// the two structural/range tiers with translation validation of
    /// the compiled stream against `model` (NPC021–NPC026), paid — like
    /// the rest of admission — exactly once per model id.
    fn admit(&self, id: u64, model: &QuantMlp) -> Result<Arc<AdmittedModel>, DriverError> {
        let zeros = vec![0u8; model.input.len];
        let loadable = compile(model, &zeros).map_err(DriverError::Compile)?;
        let run = self.driver.run_loadable_against(&loadable, model)?;
        let clock = self.driver.hw.clock_mhz;
        // §V swap economics, sourced from the static timing certificate
        // (`netpu-check::timing`, DESIGN.md §4.9) rather than the
        // host-side layout metadata: the certified closed form derives
        // the full-stream/resident word split from the decoded stream +
        // `HwConfig` alone, and `xtask certify-timing` pins it to the
        // simulator — so these figures are provably the ones replay
        // measures. An admitted stream always decodes; the layout
        // fallback merely keeps admission total.
        let (stream_words, resident_words) = match netpu_compiler::decode(&loadable.words) {
            Ok(decoded) => {
                let t = netpu_check::timing::analyze(&decoded, &self.driver.hw);
                (t.stream_words, t.resident_words)
            }
            Err(_) => (
                loadable.words.len(),
                loadable.layout.header.len()
                    + loadable.layout.settings.len()
                    + loadable.layout.input.len(),
            ),
        };
        let transfer_us = self.driver.dma.occupancy_us(stream_words, clock);
        let resident_transfer_us = self.driver.dma.occupancy_us(resident_words, clock);
        let weight_stream_us = (transfer_us - resident_transfer_us).max(0.0);
        let resident_latency_us =
            (run.measured_latency_us - weight_stream_us).max(resident_transfer_us);
        let bytes = cast::u64_from_usize(loadable.words.len()) * 8;
        Ok(Arc::new(AdmittedModel {
            id,
            loadable,
            run,
            transfer_us,
            resident_transfer_us,
            weight_stream_us,
            resident_latency_us,
            bytes,
        }))
    }
}

fn lock(m: &Mutex<CacheInner>) -> std::sync::MutexGuard<'_, CacheInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    #[test]
    fn lru_evicts_oldest_first_and_respects_the_budget() {
        let mut lru = LruCore::new(100);
        assert_eq!(lru.insert(1, "a", 40), Admit::Inserted { evicted: vec![] });
        assert_eq!(lru.insert(2, "b", 40), Admit::Inserted { evicted: vec![] });
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(lru.lookup(1), Some(&"a"));
        assert_eq!(lru.insert(3, "c", 40), Admit::Inserted { evicted: vec![2] });
        assert!(lru.resident_bytes() <= lru.capacity_bytes());
        assert_eq!(lru.ids(), vec![1, 3]);
        assert_eq!(lru.lookup(2), None);
    }

    #[test]
    fn lru_refuses_entries_above_the_whole_budget() {
        let mut lru = LruCore::new(10);
        lru.insert(1, "a", 8);
        assert_eq!(
            lru.insert(2, "big", 11),
            Admit::TooLarge {
                bytes: 11,
                capacity: 10
            }
        );
        // The refusal evicted nothing.
        assert_eq!(lru.ids(), vec![1]);
    }

    #[test]
    fn reinserting_an_id_releases_its_old_bytes() {
        let mut lru = LruCore::new(100);
        lru.insert(1, "a", 60);
        lru.insert(1, "a2", 30);
        assert_eq!(lru.resident_bytes(), 30);
        // Room for another 70 without evicting 1.
        assert_eq!(lru.insert(2, "b", 70), Admit::Inserted { evicted: vec![] });
    }

    #[test]
    fn admission_runs_once_and_hits_after() {
        let model = ZooModel::SfcW1A1
            .build_untrained(5, BnMode::Folded)
            .unwrap();
        let cache = CompiledModelCache::new(Driver::builder().build(), 64 << 20);
        let first = cache.get_or_admit(42, &model).unwrap();
        let second = cache.get_or_admit(42, &model).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second lookup re-admitted");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, first.bytes);
        assert!(first.weight_stream_us > 0.0);
        assert!(first.resident_latency_us < first.run.measured_latency_us);
        assert!(first.resident_transfer_us < first.transfer_us);
    }

    #[test]
    fn timing_sourced_economics_are_bit_identical_to_the_layout_figures() {
        // Regression for the switch to timing-certificate-sourced swap
        // economics: the certificate's word split and cycle count are
        // bit-identical to the layout/run-derived figures they
        // replaced, so replay results (swaps/request, fps) cannot
        // drift.
        let model = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        let cache = CompiledModelCache::new(Driver::builder().build(), 64 << 20);
        let m = cache.get_or_admit(1, &model).unwrap();
        let reference = Driver::builder().build();
        let decoded = netpu_compiler::decode(&m.loadable.words).unwrap();
        let t = netpu_check::timing::analyze(&decoded, &reference.hw);
        // The certificate reproduces the stream geometry exactly …
        assert_eq!(t.stream_words, m.loadable.words.len());
        assert_eq!(
            t.resident_words,
            m.loadable.layout.header.len()
                + m.loadable.layout.settings.len()
                + m.loadable.layout.input.len()
        );
        // … and the admission run's cycle count to the cycle.
        assert_eq!(t.total_cycles(), m.run.cycles);
        // The stored economics are bit-for-bit the pre-switch formulas.
        let clock = reference.hw.clock_mhz;
        let transfer = reference.dma.occupancy_us(m.loadable.words.len(), clock);
        let resident_transfer = reference.dma.occupancy_us(t.resident_words, clock);
        let weight_stream = (transfer - resident_transfer).max(0.0);
        let resident_latency = (m.run.measured_latency_us - weight_stream).max(resident_transfer);
        assert_eq!(m.transfer_us.to_bits(), transfer.to_bits());
        assert_eq!(
            m.resident_transfer_us.to_bits(),
            resident_transfer.to_bits()
        );
        assert_eq!(m.weight_stream_us.to_bits(), weight_stream.to_bits());
        assert_eq!(m.resident_latency_us.to_bits(), resident_latency.to_bits());
    }

    #[test]
    fn strict_equiv_admission_certifies_the_compiled_stream() {
        // A strict-equiv fleet runs translation validation at cache
        // admission; its own honestly-compiled streams must certify
        // equivalent (no false inequivalences) and admit normally.
        let model = ZooModel::SfcW2A2
            .build_untrained(8, BnMode::Folded)
            .unwrap();
        let cache = CompiledModelCache::new(Driver::builder().strict_equiv(true).build(), 64 << 20);
        cache.get_or_admit(3, &model).unwrap();
        assert!(cache.contains(3));
        assert_eq!(cache.stats().rejected, 0);
    }

    #[test]
    fn service_cost_rewards_residency() {
        let model = ZooModel::SfcW1A1
            .build_untrained(6, BnMode::Folded)
            .unwrap();
        let cache = CompiledModelCache::new(Driver::builder().build(), 64 << 20);
        let admitted = cache.get_or_admit(1, &model).unwrap();
        let (cold_t, cold_l) = admitted.service_cost(false);
        let (hot_t, hot_l) = admitted.service_cost(true);
        assert!(hot_t < cold_t);
        assert!(hot_l < cold_l);
        assert!((cold_t - hot_t - admitted.weight_stream_us).abs() < 1e-9);
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_admission() {
        let model = Arc::new(
            ZooModel::SfcW1A1
                .build_untrained(7, BnMode::Folded)
                .unwrap(),
        );
        let cache = Arc::new(CompiledModelCache::new(Driver::builder().build(), 64 << 20));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let model = Arc::clone(&model);
                std::thread::spawn(move || cache.get_or_admit(9, &model).unwrap().bytes)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "racing workers each ran admission");
        assert_eq!(stats.hits, 3);
    }
}
