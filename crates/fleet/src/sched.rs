//! Swap-aware board scheduling over the shared-DMA arbiter.
//!
//! NetPU-M reconfigures by weight stream (§V): placing a request on a
//! board that already holds its model's weights skips the weight
//! sections' DMA occupancy entirely ([`AdmittedModel::weight_stream_us`]),
//! while any other placement re-streams them and *swaps* the board's
//! residency. [`BoardPool`] tracks which model each board holds and
//! offers two policies:
//!
//! * [`DispatchPolicy::NaiveFifo`] — the `netpu-serve` baseline:
//!   head-of-queue onto the earliest-free board, residency ignored at
//!   choice time (hits still happen by accident and are charged
//!   honestly).
//! * [`DispatchPolicy::SwapAware`] — placement minimizes estimated
//!   completion *including* the swap premium, so an affinity board is
//!   preferred whenever waiting for it beats re-streaming weights
//!   elsewhere; dispatch order may promote a request out of a bounded
//!   queue window when its deadline is at risk (earliest-deadline-first
//!   among at-risk candidates), with a per-position bypass penalty so
//!   reordering stays bounded and head-of-line requests cannot be
//!   starved.
//!
//! All timing is virtual-µs through [`DmaArbiter`], so identical
//! request sequences produce identical schedules on any host.

use crate::cache::AdmittedModel;
use netpu_arith::cast;
use netpu_serve::{DmaArbiter, Grant};
use serde::Serialize;

/// How the dispatcher picks boards and orders its queue window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub enum DispatchPolicy {
    /// Head-of-queue onto the earliest-free board.
    NaiveFifo,
    /// Residency-affine placement with bounded EDF window reordering.
    #[default]
    SwapAware,
}

impl DispatchPolicy {
    /// Stable lower-case name for experiment rows.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::NaiveFifo => "naive_fifo",
            DispatchPolicy::SwapAware => "swap_aware",
        }
    }
}

/// Virtual-µs the bypass penalty charges per queue position skipped
/// when a later window candidate is promoted over the head.
const BYPASS_PENALTY_US: f64 = 2.0;

/// One placement decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The arbiter's schedule for the request.
    pub grant: Grant,
    /// The chosen board already held the model's weights.
    pub resident_hit: bool,
    /// The placement displaced another model's residency.
    pub swapped: bool,
}

/// A dispatch candidate in the queue window.
#[derive(Clone, Copy, Debug)]
pub struct Candidate<'a> {
    /// The admitted model the request targets.
    pub model: &'a AdmittedModel,
    /// Request arrival, virtual µs.
    pub arrival_us: f64,
    /// Absolute completion deadline, virtual µs (`f64::INFINITY` for
    /// best-effort requests).
    pub deadline_us: f64,
}

/// A shard's boards: the DMA arbiter plus per-board weight residency.
#[derive(Clone, Debug)]
pub struct BoardPool {
    arbiter: DmaArbiter,
    resident: Vec<Option<u64>>,
    last_touch_us: Vec<f64>,
    placements: u64,
    swaps: u64,
    resident_hits: u64,
}

impl BoardPool {
    /// An idle pool of `boards` boards with no weights resident.
    pub fn new(boards: usize) -> BoardPool {
        BoardPool {
            arbiter: DmaArbiter::new(boards),
            resident: vec![None; boards],
            last_touch_us: vec![0.0; boards],
            placements: 0,
            swaps: 0,
            resident_hits: 0,
        }
    }

    /// Number of boards in the pool.
    pub fn boards(&self) -> usize {
        self.resident.len()
    }

    /// The underlying virtual-time arbiter.
    pub fn arbiter(&self) -> &DmaArbiter {
        &self.arbiter
    }

    /// Total placements so far.
    pub fn placements(&self) -> u64 {
        self.placements
    }

    /// Placements that displaced another model's residency.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Placements that reused resident weights.
    pub fn resident_hits(&self) -> u64 {
        self.resident_hits
    }

    /// Model currently resident on `board`.
    pub fn resident_on(&self, board: usize) -> Option<u64> {
        self.resident.get(board).copied().flatten()
    }

    /// Estimated `(board, complete_us, resident_hit)` for placing
    /// `model` arriving at `arrival_us` under `policy`, without
    /// committing anything.
    pub fn estimate(
        &self,
        policy: DispatchPolicy,
        model: &AdmittedModel,
        arrival_us: f64,
    ) -> (usize, f64, bool) {
        let board = match policy {
            DispatchPolicy::NaiveFifo => self.earliest_free_board(),
            DispatchPolicy::SwapAware => self.swap_aware_board(model, arrival_us),
        };
        let hit = self.resident.get(board).copied().flatten() == Some(model.id);
        (
            board,
            self.completion_on(board, model, arrival_us, hit),
            hit,
        )
    }

    /// Places `model` on the board `policy` chooses, committing the
    /// grant and updating residency.
    pub fn place(
        &mut self,
        policy: DispatchPolicy,
        model: &AdmittedModel,
        arrival_us: f64,
    ) -> Placement {
        let (board, _, resident_hit) = self.estimate(policy, model, arrival_us);
        let (transfer_us, latency_us) = model.service_cost(resident_hit);
        let grant = self
            .arbiter
            .grant_on(board, arrival_us, transfer_us, latency_us);
        let swapped = !resident_hit && self.resident[board].is_some();
        self.resident[board] = Some(model.id);
        self.last_touch_us[board] = grant.complete_us;
        self.placements += 1;
        if swapped {
            self.swaps += 1;
        }
        if resident_hit {
            self.resident_hits += 1;
        }
        Placement {
            grant,
            resident_hit,
            swapped,
        }
    }

    /// Picks which window candidate to dispatch next. `NaiveFifo`
    /// always takes the head. `SwapAware` promotes the earliest
    /// deadline among candidates whose deadline the estimated schedule
    /// would already miss; otherwise it takes the candidate with the
    /// cheapest estimated completion plus a per-position bypass
    /// penalty. Returns an index into `window` (0 when empty-adjacent
    /// callers pass a single item).
    pub fn pick_next(&self, policy: DispatchPolicy, window: &[Candidate<'_>]) -> usize {
        if window.len() <= 1 || policy == DispatchPolicy::NaiveFifo {
            return 0;
        }
        let mut best_at_risk: Option<(f64, usize)> = None;
        let mut best_effort: Option<(f64, usize)> = None;
        for (i, c) in window.iter().enumerate() {
            let (_, complete_us, _) = self.estimate(policy, c.model, c.arrival_us);
            if complete_us > c.deadline_us {
                // Deadline already at risk: EDF among these, stale
                // residency on whatever board it lands on is preempted.
                let key = (c.deadline_us, i);
                if best_at_risk.is_none_or(|(d, j)| key < (d, j)) {
                    best_at_risk = Some(key);
                }
            } else {
                let score = complete_us + BYPASS_PENALTY_US * cast::f64_from_usize(i);
                if best_effort.is_none_or(|(s, j)| (score, i) < (s, j)) {
                    best_effort = Some((score, i));
                }
            }
        }
        best_at_risk.or(best_effort).map_or(0, |(_, i)| i)
    }

    fn earliest_free_board(&self) -> usize {
        let mut best = 0usize;
        for b in 1..self.boards() {
            if self.arbiter.board_free_us(b) < self.arbiter.board_free_us(best) {
                best = b;
            }
        }
        best
    }

    /// The board minimizing estimated completion including the swap
    /// premium. Ties (e.g. several idle boards) prefer a residency hit,
    /// then the board whose residency went stale longest ago (cheapest
    /// to preempt), then the lowest index.
    fn swap_aware_board(&self, model: &AdmittedModel, arrival_us: f64) -> usize {
        let mut best = 0usize;
        let mut best_key = self.board_key(0, model, arrival_us);
        for b in 1..self.boards() {
            let key = self.board_key(b, model, arrival_us);
            if key.0 < best_key.0 - 1e-9
                || ((key.0 - best_key.0).abs() <= 1e-9 && (key.1, key.2) < (best_key.1, best_key.2))
            {
                best = b;
                best_key = key;
            }
        }
        best
    }

    /// `(complete_us, !resident_hit, last_touch_us)` — lower is better
    /// on every component.
    fn board_key(&self, board: usize, model: &AdmittedModel, arrival_us: f64) -> (f64, bool, f64) {
        let hit = self.resident[board] == Some(model.id);
        let complete = self.completion_on(board, model, arrival_us, hit);
        (complete, !hit, self.last_touch_us[board])
    }

    fn completion_on(
        &self,
        board: usize,
        model: &AdmittedModel,
        arrival_us: f64,
        resident_hit: bool,
    ) -> f64 {
        let (transfer_us, latency_us) = model.service_cost(resident_hit);
        let start = arrival_us
            .max(self.arbiter.dma_free_us())
            .max(self.arbiter.board_free_us(board));
        start + latency_us.max(transfer_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CompiledModelCache;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use netpu_runtime::Driver;
    use std::sync::Arc;

    fn admitted(id: u64, zoo: ZooModel) -> Arc<AdmittedModel> {
        let model = zoo.build_untrained(id + 100, BnMode::Folded).unwrap();
        CompiledModelCache::new(Driver::builder().build(), 256 << 20)
            .get_or_admit(id, &model)
            .unwrap()
    }

    #[test]
    fn swap_aware_prefers_the_resident_board() {
        let a = admitted(1, ZooModel::SfcW1A1);
        let mut pool = BoardPool::new(4);
        let first = pool.place(DispatchPolicy::SwapAware, &a, 0.0);
        assert!(!first.resident_hit);
        // The board is busy, but waiting for it still beats paying the
        // weight stream again on an idle board for back-to-back work.
        let second = pool.place(DispatchPolicy::SwapAware, &a, first.grant.complete_us);
        assert_eq!(second.grant.board, first.grant.board);
        assert!(second.resident_hit);
        assert!(!second.swapped);
        assert_eq!(pool.resident_hits(), 1);
    }

    #[test]
    fn naive_fifo_spreads_and_swaps() {
        let a = admitted(1, ZooModel::SfcW1A1);
        let b = admitted(2, ZooModel::SfcW2A2);
        let mut pool = BoardPool::new(1);
        assert!(!pool.place(DispatchPolicy::NaiveFifo, &a, 0.0).swapped);
        let p = pool.place(DispatchPolicy::NaiveFifo, &b, 0.0);
        assert!(p.swapped, "placing b over a's residency is a swap");
        assert_eq!(pool.swaps(), 1);
        assert_eq!(pool.resident_on(0), Some(2));
    }

    #[test]
    fn residency_hit_finishes_sooner_than_a_cold_board() {
        let a = admitted(1, ZooModel::SfcW1A1);
        let mut hot = BoardPool::new(1);
        hot.place(DispatchPolicy::SwapAware, &a, 0.0);
        let t0 = hot.arbiter().makespan_us();
        let hit = hot.place(DispatchPolicy::SwapAware, &a, t0);
        let mut cold = BoardPool::new(1);
        let miss = cold.place(DispatchPolicy::SwapAware, &a, t0);
        assert!(
            hit.grant.complete_us < miss.grant.complete_us,
            "resident {} vs cold {}",
            hit.grant.complete_us,
            miss.grant.complete_us
        );
    }

    #[test]
    fn window_promotes_at_risk_deadlines_first() {
        let a = admitted(1, ZooModel::SfcW1A1);
        let b = admitted(2, ZooModel::SfcW2A2);
        let pool = BoardPool::new(1);
        let relaxed = Candidate {
            model: &a,
            arrival_us: 0.0,
            deadline_us: f64::INFINITY,
        };
        let urgent = Candidate {
            model: &b,
            arrival_us: 0.0,
            deadline_us: 1.0, // impossible: already at risk
        };
        let picked = pool.pick_next(DispatchPolicy::SwapAware, &[relaxed, urgent]);
        assert_eq!(picked, 1, "EDF promotes the at-risk request");
        // FIFO never reorders.
        assert_eq!(
            pool.pick_next(DispatchPolicy::NaiveFifo, &[relaxed, urgent]),
            0
        );
    }

    #[test]
    fn bypass_penalty_keeps_equal_candidates_in_order() {
        let a = admitted(1, ZooModel::SfcW1A1);
        let pool = BoardPool::new(2);
        let c = Candidate {
            model: &a,
            arrival_us: 0.0,
            deadline_us: f64::INFINITY,
        };
        // Identical candidates: the head must win.
        assert_eq!(pool.pick_next(DispatchPolicy::SwapAware, &[c, c, c]), 0);
    }
}
