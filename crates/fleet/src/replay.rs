//! Deterministic synthetic-traffic replay over the fleet scheduler.
//!
//! The harness generates a seeded bursty heavy-tail arrival process
//! (many tenants × many models × few boards), pushes it through the
//! same admission pipeline, cache, token buckets, and
//! [`BoardPool`] placement the live server uses, and measures the
//! resulting schedule entirely in virtual µs. Everything is a pure
//! function of [`ReplayConfig`] — one thread, no wall clock, no
//! `HashMap` iteration — so the same config reproduces the same
//! [`ReplayReport`] bit for bit on any host; the determinism suite
//! asserts exactly that.
//!
//! What it exists to show (BENCH_serve.json rows): tail latency
//! (p50/p99/p999), per-tenant fairness under token-bucket throttling,
//! compiled-cache hit rate, and — the headline — swaps-per-request
//! under [`DispatchPolicy::SwapAware`] versus
//! [`DispatchPolicy::NaiveFifo`], measured against the analytic
//! [`ClusterThroughput`] transfer bound from the paper's §V loading
//! economics.

use crate::cache::{AdmittedModel, CompiledModelCache};
use crate::sched::{BoardPool, Candidate, DispatchPolicy};
use crate::shard::route;
use crate::tenant::{TenantLimiter, TenantPolicy};
use netpu_arith::cast;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{ClusterThroughput, Driver, DriverError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;

/// Shape of one replay run. Everything downstream is a pure function
/// of this struct.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// RNG seed for traffic generation.
    pub seed: u64,
    /// Dispatch shards (each with its own DMA and boards).
    pub shards: usize,
    /// Boards per shard.
    pub boards_per_shard: usize,
    /// Number of tenants offering load (skewed toward low ids).
    pub tenants: usize,
    /// Number of distinct models (cycled over the zoo with distinct
    /// weight seeds).
    pub models: usize,
    /// Total requests generated.
    pub requests: usize,
    /// Mean of the exponential inter-arrival gap, µs.
    pub mean_interarrival_us: f64,
    /// Probability an arrival rides the previous one (zero gap): burst
    /// trains.
    pub burst_prob: f64,
    /// Probability a gap stretches 8×: heavy-tail lulls between bursts.
    pub lull_prob: f64,
    /// Dispatch reorder window (1 = strict FIFO order even for
    /// swap-aware placement).
    pub window: usize,
    /// Per-request completion deadline relative to arrival, µs.
    pub deadline_us: f64,
    /// Board placement / dispatch ordering policy.
    pub policy: DispatchPolicy,
    /// Per-tenant token-bucket policy.
    pub tenant_policy: TenantPolicy,
    /// Compiled-model cache budget, bytes.
    pub cache_capacity_bytes: u64,
}

impl ReplayConfig {
    /// The acceptance-scale workload: 64 boards (8 shards × 8), 20
    /// models, 12 tenants, 10 000 requests.
    pub fn acceptance() -> ReplayConfig {
        ReplayConfig {
            seed: 7,
            shards: 8,
            boards_per_shard: 8,
            tenants: 12,
            models: 20,
            requests: 10_000,
            mean_interarrival_us: 40.0,
            burst_prob: 0.35,
            lull_prob: 0.05,
            window: 32,
            deadline_us: 50_000.0,
            policy: DispatchPolicy::SwapAware,
            tenant_policy: TenantPolicy {
                rate_rps: 4_000.0,
                burst: 64.0,
            },
            cache_capacity_bytes: 256 << 20,
        }
    }

    /// A seconds-scale smoke workload for CI: 4 boards, 6 models,
    /// 600 requests.
    pub fn smoke() -> ReplayConfig {
        ReplayConfig {
            seed: 11,
            shards: 2,
            boards_per_shard: 2,
            tenants: 5,
            models: 6,
            requests: 600,
            mean_interarrival_us: 60.0,
            burst_prob: 0.3,
            lull_prob: 0.05,
            window: 16,
            deadline_us: 50_000.0,
            policy: DispatchPolicy::SwapAware,
            tenant_policy: TenantPolicy {
                rate_rps: 6_000.0,
                burst: 32.0,
            },
            cache_capacity_bytes: 64 << 20,
        }
    }

    /// The same workload under the other policy (for A/B rows).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> ReplayConfig {
        self.policy = policy;
        self
    }
}

/// Per-tenant outcome row.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantRow {
    /// Tenant id.
    pub tenant: u64,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Requests the token bucket refused.
    pub throttled: u64,
    /// Requests completed.
    pub completed: u64,
    /// Mean end-to-end latency of the completed requests, µs.
    pub mean_latency_us: f64,
}

/// Everything one replay run measured.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ReplayReport {
    /// Policy the run used (`naive_fifo` / `swap_aware`).
    pub policy: String,
    /// RNG seed.
    pub seed: u64,
    /// Total boards (shards × boards per shard).
    pub boards: usize,
    /// Shards.
    pub shards: usize,
    /// Distinct models.
    pub models: usize,
    /// Requests generated.
    pub offered: u64,
    /// Requests the token buckets refused.
    pub throttled: u64,
    /// Requests scheduled to completion.
    pub completed: u64,
    /// Completions later than their deadline.
    pub deadline_missed: u64,
    /// Median end-to-end latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Jain fairness index over per-tenant completion ratios, `(0, 1]`.
    pub jain_fairness: f64,
    /// Compiled-cache hits.
    pub cache_hits: u64,
    /// Compiled-cache misses (= admissions run).
    pub cache_misses: u64,
    /// Compiled-cache hit rate.
    pub cache_hit_rate: f64,
    /// Models evicted from the cache.
    pub cache_evictions: u64,
    /// Placements that displaced a board's weight residency.
    pub swaps: u64,
    /// Swaps per completed request.
    pub swaps_per_request: f64,
    /// Placements that reused resident weights.
    pub resident_hits: u64,
    /// Fraction of placements that reused resident weights.
    pub resident_hit_rate: f64,
    /// Virtual time at which every shard finished, µs.
    pub makespan_us: f64,
    /// Completed requests per second of virtual time.
    pub measured_fps: f64,
    /// Analytic `min(boards/latency, 1/transfer)` bound summed over
    /// shards, using request-weighted mean cold-service figures.
    pub analytic_fps_bound: f64,
    /// `measured_fps / analytic_fps_bound`.
    pub bound_ratio: f64,
    /// Mean DMA busy fraction across shards.
    pub dma_utilization: f64,
    /// Per-tenant rows, ascending tenant id.
    pub tenants: Vec<TenantRow>,
}

struct GenRequest {
    arrival_us: f64,
    deadline_us: f64,
    tenant: usize,
    model: usize,
}

/// Runs one replay. Deterministic: identical `cfg` (including seed)
/// yields an identical report.
pub fn run_replay(driver: &Driver, cfg: &ReplayConfig) -> Result<ReplayReport, DriverError> {
    let models = admit_zoo(driver, cfg)?;
    let traffic = generate_traffic(cfg);

    // Front door: token buckets in arrival order, before sharding —
    // exactly where the live server throttles.
    let mut limiter = TenantLimiter::new(cfg.tenant_policy);
    let mut offered_per_tenant = vec![0u64; cfg.tenants];
    let mut throttled_per_tenant = vec![0u64; cfg.tenants];
    let mut admitted_requests: Vec<GenRequest> = Vec::with_capacity(traffic.len());
    for req in traffic {
        offered_per_tenant[req.tenant] += 1;
        if limiter.try_admit(cast::u64_from_usize(req.tenant), req.arrival_us) {
            admitted_requests.push(req);
        } else {
            throttled_per_tenant[req.tenant] += 1;
        }
    }

    // Shard by model id, preserving arrival order within each shard.
    let mut per_shard: Vec<VecDeque<GenRequest>> =
        (0..cfg.shards).map(|_| VecDeque::new()).collect();
    for req in admitted_requests {
        let shard = route(models.0[req.model].id, cfg.shards);
        per_shard[shard].push_back(req);
    }

    // Dispatch each shard's queue through its own board pool.
    let mut latencies: Vec<f64> = Vec::new();
    let mut completed_per_tenant = vec![0u64; cfg.tenants];
    let mut latency_per_tenant = vec![0.0f64; cfg.tenants];
    let mut deadline_missed = 0u64;
    let mut swaps = 0u64;
    let mut resident_hits = 0u64;
    let mut placements = 0u64;
    let mut makespan_us = 0.0f64;
    let mut dma_util_sum = 0.0f64;
    let mut active_shards = 0usize;
    for mut pending in per_shard {
        if pending.is_empty() {
            continue;
        }
        active_shards += 1;
        let mut pool = BoardPool::new(cfg.boards_per_shard);
        while !pending.is_empty() {
            let span = pending.len().min(cfg.window.max(1));
            let window: Vec<Candidate<'_>> = pending
                .iter()
                .take(span)
                .map(|r| Candidate {
                    model: &models.0[r.model],
                    arrival_us: r.arrival_us,
                    deadline_us: r.deadline_us,
                })
                .collect();
            let pick = pool.pick_next(cfg.policy, &window);
            let Some(req) = pending.remove(pick) else {
                break;
            };
            let placement = pool.place(cfg.policy, &models.0[req.model], req.arrival_us);
            let latency = placement.grant.complete_us - req.arrival_us;
            latencies.push(latency);
            completed_per_tenant[req.tenant] += 1;
            latency_per_tenant[req.tenant] += latency;
            if placement.grant.complete_us > req.deadline_us {
                deadline_missed += 1;
            }
        }
        swaps += pool.swaps();
        resident_hits += pool.resident_hits();
        placements += pool.placements();
        let makespan = pool.arbiter().makespan_us();
        makespan_us = makespan_us.max(makespan);
        if makespan > 0.0 {
            dma_util_sum += pool.arbiter().dma_busy_us() / makespan;
        }
    }

    let completed = cast::u64_from_usize(latencies.len());
    latencies.sort_by(f64::total_cmp);
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / cast::f64_from_usize(latencies.len())
    };

    // Analytic transfer bound, request-weighted over the admitted
    // models' cold-service figures: each shard owns its own DMA, so the
    // per-shard bound sums across shards.
    let (weighted_latency, weighted_transfer) = request_weighted_costs(&models.0, &models.1);
    let per_shard_bound =
        ClusterThroughput::from_parts(cfg.boards_per_shard, weighted_latency, weighted_transfer)?;
    let analytic_fps_bound = per_shard_bound.fps * cast::f64_from_usize(cfg.shards);
    let measured_fps = if makespan_us > 0.0 {
        cast::f64_from_u64(completed) * 1e6 / makespan_us
    } else {
        0.0
    };

    let cache_stats = models.2;
    let tenants: Vec<TenantRow> = (0..cfg.tenants)
        .map(|t| TenantRow {
            tenant: cast::u64_from_usize(t),
            offered: offered_per_tenant[t],
            throttled: throttled_per_tenant[t],
            completed: completed_per_tenant[t],
            mean_latency_us: if completed_per_tenant[t] > 0 {
                latency_per_tenant[t] / cast::f64_from_u64(completed_per_tenant[t])
            } else {
                0.0
            },
        })
        .collect();
    let ratios: Vec<f64> = tenants
        .iter()
        .filter(|t| t.offered > 0)
        .map(|t| cast::f64_from_u64(t.completed) / cast::f64_from_u64(t.offered))
        .collect();

    Ok(ReplayReport {
        policy: cfg.policy.name().to_string(),
        seed: cfg.seed,
        boards: cfg.shards * cfg.boards_per_shard,
        shards: cfg.shards,
        models: cfg.models,
        offered: cast::u64_from_usize(cfg.requests),
        throttled: throttled_per_tenant.iter().sum(),
        completed,
        deadline_missed,
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
        p999_us: quantile(&latencies, 0.999),
        mean_us,
        jain_fairness: jain(&ratios),
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        cache_hit_rate: cache_stats.hit_rate().unwrap_or(0.0),
        cache_evictions: cache_stats.evictions,
        swaps,
        swaps_per_request: if completed > 0 {
            cast::f64_from_u64(swaps) / cast::f64_from_u64(completed)
        } else {
            0.0
        },
        resident_hits,
        resident_hit_rate: if placements > 0 {
            cast::f64_from_u64(resident_hits) / cast::f64_from_u64(placements)
        } else {
            0.0
        },
        makespan_us,
        measured_fps,
        analytic_fps_bound,
        bound_ratio: if analytic_fps_bound > 0.0 {
            measured_fps / analytic_fps_bound
        } else {
            0.0
        },
        dma_utilization: if active_shards > 0 {
            dma_util_sum / cast::f64_from_usize(active_shards)
        } else {
            0.0
        },
        tenants,
    })
}

type AdmittedZoo = (Vec<Arc<AdmittedModel>>, Vec<u64>, crate::cache::CacheStats);

/// Builds and admits `cfg.models` distinct untrained zoo models,
/// then replays the request stream's cache lookups so the reported
/// hit/miss figures match what the live path would see. Weight seeds
/// that fail strict admission (untrained weights occasionally trip the
/// range analyzer) deterministically step to the next seed.
fn admit_zoo(driver: &Driver, cfg: &ReplayConfig) -> Result<AdmittedZoo, DriverError> {
    let cache = CompiledModelCache::new(driver.clone(), cfg.cache_capacity_bytes);
    let mut admitted = Vec::with_capacity(cfg.models);
    for i in 0..cfg.models {
        let zoo = ZooModel::ALL[i % ZooModel::ALL.len()];
        let id = cast::u64_from_usize(i);
        let mut last_err = DriverError::EmptyResponse;
        let mut ok = None;
        for attempt in 0u64..24 {
            let seed = 1_000 + id + attempt * cast::u64_from_usize(cfg.models.max(1));
            let model = match zoo.build_untrained(seed, BnMode::Folded) {
                Ok(m) => m,
                Err(_) => continue,
            };
            match cache.get_or_admit(id, &model) {
                Ok(m) => {
                    ok = Some(m);
                    break;
                }
                Err(e) => last_err = e,
            }
        }
        match ok {
            Some(m) => admitted.push(m),
            None => return Err(last_err),
        }
    }
    // Replay the per-request lookups the live path would issue, so the
    // cache's hit statistics reflect the workload (every request after
    // a model's first is a hit).
    let traffic = generate_traffic(cfg);
    for req in &traffic {
        let _ = cache.lookup(admitted[req.model].id);
    }
    let request_counts = {
        let mut counts = vec![0u64; cfg.models];
        for req in &traffic {
            counts[req.model] += 1;
        }
        counts
    };
    let stats = cache.stats();
    Ok((admitted, request_counts, stats))
}

/// Request-weighted mean `(cold_latency_us, cold_transfer_us)`.
fn request_weighted_costs(models: &[Arc<AdmittedModel>], counts: &[u64]) -> (f64, f64) {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return (1.0, 0.0);
    }
    let mut latency = 0.0;
    let mut transfer = 0.0;
    for (model, &n) in models.iter().zip(counts) {
        let w = cast::f64_from_u64(n) / cast::f64_from_u64(total);
        latency += w * model.run.measured_latency_us;
        transfer += w * model.transfer_us;
    }
    (latency, transfer)
}

/// The seeded bursty heavy-tail arrival process.
fn generate_traffic(cfg: &ReplayConfig) -> Vec<GenRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let gap = if rng.gen_bool(cfg.burst_prob.clamp(0.0, 1.0)) {
            0.0 // ride the previous arrival: burst train
        } else {
            let u: f64 = rng.gen();
            let mut g = -cfg.mean_interarrival_us * (1.0 - u).ln();
            if rng.gen_bool(cfg.lull_prob.clamp(0.0, 1.0)) {
                g *= 8.0; // heavy-tail lull
            }
            g
        };
        t += gap;
        // Tenant load is skewed quadratically toward low ids.
        let u: f64 = rng.gen();
        let tenant = cast::usize_sat(cast::f64_to_u64_sat(
            cast::f64_from_usize(cfg.tenants) * u * u,
        ))
        .min(cfg.tenants - 1);
        // Tenants mostly hit a small preferred model set (affinity the
        // swap-aware scheduler can exploit), with a uniform tail.
        let model = if rng.gen_bool(0.8) {
            (tenant * 3 + rng.gen_range(0..3usize)) % cfg.models
        } else {
            rng.gen_range(0..cfg.models)
        };
        out.push(GenRequest {
            arrival_us: t,
            deadline_us: t + cfg.deadline_us,
            tenant,
            model,
        });
    }
    out
}

/// Nearest-rank quantile of an ascending-sorted sample; 0 when empty.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (cast::f64_from_usize(sorted.len()) * q).ceil();
    let idx = cast::usize_sat(cast::f64_to_u64_sat(rank)).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 means perfectly even.
fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (cast::f64_from_usize(xs.len()) * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&xs, 0.50), 50.0);
        assert_eq!(quantile(&xs, 0.99), 99.0);
        assert_eq!(quantile(&xs, 0.999), 100.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn jain_rewards_even_allocations() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let uneven = jain(&[1.0, 0.0, 0.0]);
        assert!((uneven - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_is_a_pure_function_of_the_config() {
        let cfg = ReplayConfig::smoke();
        let a = generate_traffic(&cfg);
        let b = generate_traffic(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_us.to_bits(), y.arrival_us.to_bits());
            assert_eq!((x.tenant, x.model), (y.tenant, y.model));
        }
        // Arrivals are monotone and actually bursty (some zero gaps).
        let zero_gaps = a
            .windows(2)
            .filter(|w| w[1].arrival_us == w[0].arrival_us)
            .count();
        assert!(zero_gaps > 0, "no burst trains generated");
        assert!(a.windows(2).all(|w| w[1].arrival_us >= w[0].arrival_us));
    }

    #[test]
    fn smoke_replay_completes_and_balances() {
        let report = run_replay(&Driver::builder().build(), &ReplayConfig::smoke()).unwrap();
        assert_eq!(report.offered, 600);
        assert!(report.completed + report.throttled == report.offered);
        assert!(report.completed > 0);
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);
        assert!(
            report.cache_hit_rate > 0.9,
            "hit rate {}",
            report.cache_hit_rate
        );
        assert!(report.jain_fairness > 0.0 && report.jain_fairness <= 1.0 + 1e-12);
        assert!(report.measured_fps > 0.0);
        assert!(report.analytic_fps_bound > 0.0);
        assert!(
            report.bound_ratio <= 1.0 + 1e-6,
            "measured {} exceeds the analytic bound {}",
            report.measured_fps,
            report.analytic_fps_bound
        );
    }

    #[test]
    fn swap_aware_swaps_less_than_naive_fifo() {
        let driver = Driver::builder().build();
        let naive = run_replay(
            &driver,
            &ReplayConfig::smoke().with_policy(DispatchPolicy::NaiveFifo),
        )
        .unwrap();
        let aware = run_replay(
            &driver,
            &ReplayConfig::smoke().with_policy(DispatchPolicy::SwapAware),
        )
        .unwrap();
        assert_eq!(naive.completed, aware.completed, "same workload");
        assert!(
            aware.swaps_per_request < naive.swaps_per_request,
            "swap-aware {} vs naive {}",
            aware.swaps_per_request,
            naive.swaps_per_request
        );
        assert!(aware.resident_hit_rate > naive.resident_hit_rate);
    }

    #[test]
    fn replay_is_deterministic() {
        let driver = Driver::builder().build();
        let cfg = ReplayConfig::smoke();
        let a = run_replay(&driver, &cfg).unwrap();
        let b = run_replay(&driver, &cfg).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same report");
    }
}
