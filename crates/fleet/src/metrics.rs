//! Fleet-wide counters and the shutdown snapshot.

use crate::cache::CacheStats;
use netpu_arith::cast;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters the fleet front door and workers update.
#[derive(Debug, Default)]
pub(crate) struct FleetCounters {
    pub submitted: AtomicU64,
    pub accepted: AtomicU64,
    pub throttled: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub timed_out: AtomicU64,
    pub worker_panics: AtomicU64,
    pub crash_requeued: AtomicU64,
}

impl FleetCounters {
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One shard's scheduling statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ShardStats {
    /// Requests placed on this shard's boards.
    pub placements: u64,
    /// Placements that displaced another model's weight residency.
    pub swaps: u64,
    /// Placements that reused resident weights.
    pub resident_hits: u64,
    /// Time this shard's DMA spent streaming, virtual µs.
    pub dma_busy_us: f64,
    /// Virtual time at which all the shard's granted work finished, µs.
    pub makespan_us: f64,
}

/// A point-in-time copy of everything the fleet measures.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FleetMetrics {
    /// Requests presented at the front door.
    pub submitted: u64,
    /// Requests admitted to a shard queue.
    pub accepted: u64,
    /// Requests refused by the tenant token bucket.
    pub throttled: u64,
    /// Requests refused because the target shard's queue was full.
    pub rejected_busy: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed (admission, compile, or accelerator).
    pub failed: u64,
    /// Requests whose deadline elapsed before completion.
    pub timed_out: u64,
    /// Worker panics absorbed by the crash-only recovery path; the
    /// worker thread survives every one.
    pub worker_panics: u64,
    /// Crashed requests put back on their shard queue for another
    /// attempt (the rest were rejected with `WORKER_CRASH`).
    pub crash_requeued: u64,
    /// Compiled-model cache statistics.
    pub cache: CacheStats,
    /// Per-shard scheduling statistics.
    pub shards: Vec<ShardStats>,
}

impl FleetMetrics {
    /// Board swaps per placement across all shards, `None` before any
    /// placement.
    pub fn swaps_per_placement(&self) -> Option<f64> {
        let placements: u64 = self.shards.iter().map(|s| s.placements).sum();
        let swaps: u64 = self.shards.iter().map(|s| s.swaps).sum();
        (placements > 0).then(|| cast::f64_from_u64(swaps) / cast::f64_from_u64(placements))
    }

    /// Fraction of placements that reused resident weights, `None`
    /// before any placement.
    pub fn resident_hit_rate(&self) -> Option<f64> {
        let placements: u64 = self.shards.iter().map(|s| s.placements).sum();
        let hits: u64 = self.shards.iter().map(|s| s.resident_hits).sum();
        (placements > 0).then(|| cast::f64_from_u64(hits) / cast::f64_from_u64(placements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_derive_from_shard_sums() {
        let m = FleetMetrics {
            submitted: 10,
            accepted: 10,
            throttled: 0,
            rejected_busy: 0,
            completed: 10,
            failed: 0,
            timed_out: 0,
            worker_panics: 0,
            crash_requeued: 0,
            cache: CacheStats::default(),
            shards: vec![
                ShardStats {
                    placements: 6,
                    swaps: 1,
                    resident_hits: 4,
                    ..ShardStats::default()
                },
                ShardStats {
                    placements: 4,
                    swaps: 1,
                    resident_hits: 2,
                    ..ShardStats::default()
                },
            ],
        };
        assert!((m.swaps_per_placement().unwrap() - 0.2).abs() < 1e-12);
        assert!((m.resident_hit_rate().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_reports_no_rates() {
        let m = FleetMetrics {
            submitted: 0,
            accepted: 0,
            throttled: 0,
            rejected_busy: 0,
            completed: 0,
            failed: 0,
            timed_out: 0,
            worker_panics: 0,
            crash_requeued: 0,
            cache: CacheStats::default(),
            shards: vec![ShardStats::default()],
        };
        assert_eq!(m.swaps_per_placement(), None);
        assert_eq!(m.resident_hit_rate(), None);
    }
}
