//! The live sharded dispatch core.
//!
//! A [`FleetServer`] partitions its boards into shards, each with its
//! own bounded queue (the loom-checked
//! [`BoundedQueue`](netpu_serve::BoundedQueue) from `netpu-serve`) and
//! its own [`BoardPool`]. Requests route to shards by an FNV-1a hash of
//! their model id, so all traffic for one model lands on one shard —
//! the residency tracker there sees the whole stream of that model's
//! requests and can amortize weight loading across them. Admission is
//! two-gated: the tenant token bucket first (fairness), then the shard
//! queue bound (backpressure); both refusals are explicit, nothing
//! blocks.
//!
//! Workers pull from their shard's queue, resolve the model through
//! the shared [`CompiledModelCache`] (full admission exactly once per
//! model fleet-wide), splice the request's input into a clone of the
//! admitted stream, run the bit-exact fast path for the class, and
//! charge the placement to the shard's virtual-time board pool.

use crate::cache::CompiledModelCache;
use crate::metrics::{FleetCounters, FleetMetrics, ShardStats};
use crate::sched::{BoardPool, DispatchPolicy};
use crate::tenant::{TenantLimiter, TenantPolicy};
use netpu_arith::cast;
use netpu_core::netpu::run_inference_fast;
use netpu_nn::QuantMlp;
use netpu_runtime::{Driver, DriverError};
use netpu_serve::{BoundedQueue, FaultInjector, FaultPlan, Push, RejectReason};
use netpu_trace::{TraceEvent, TraceSink};
use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Fleet deployment shape.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of dispatch shards (each owns boards and a queue).
    pub shards: usize,
    /// Boards per shard.
    pub boards_per_shard: usize,
    /// Bound of each shard's admission queue.
    pub queue_depth: usize,
    /// Board placement / dispatch ordering policy.
    pub policy: DispatchPolicy,
    /// Per-tenant admission rate policy.
    pub tenant_policy: TenantPolicy,
    /// Compiled-model cache budget, bytes.
    pub cache_capacity_bytes: u64,
    /// How many times a request whose worker died mid-serve is put
    /// back on its shard queue before crash recovery gives up and
    /// rejects it with [`RejectReason::WorkerCrash`].
    pub crash_requeues: u32,
    /// Worker faults to inject (tests the crash-only recovery path).
    pub faults: FaultPlan,
    /// Structured event sink recording the request lifecycle; `None`
    /// (the default) records nothing. Fleet traces carry lifecycle
    /// events only — per-shard DMA schedules are not replayed against
    /// the single-engine grant recurrence, which is a `netpu-serve`
    /// level check.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl Default for FleetConfig {
    /// Two shards of four boards, swap-aware, 64-deep queues, 64 MiB
    /// of compiled-model cache.
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 2,
            boards_per_shard: 4,
            queue_depth: 64,
            policy: DispatchPolicy::SwapAware,
            tenant_policy: TenantPolicy::default(),
            cache_capacity_bytes: 64 << 20,
            crash_requeues: 1,
            faults: FaultPlan::None,
            trace: None,
        }
    }
}

/// One inference request entering the fleet.
#[derive(Clone, Debug)]
pub struct FleetRequest {
    /// Tenant the request belongs to (token-bucket key).
    pub tenant: u64,
    /// Fleet-wide model id (cache key and shard-routing key).
    pub model_id: u64,
    /// The model itself, shared across requests.
    pub model: Arc<QuantMlp>,
    /// Input pixels.
    pub pixels: Vec<u8>,
    /// Optional completion deadline relative to submission, µs.
    pub deadline_us: Option<f64>,
}

/// A successfully served fleet request.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetResponse {
    /// Predicted class.
    pub class: usize,
    /// Shard the request ran on.
    pub shard: usize,
    /// Board within the shard.
    pub board: usize,
    /// End-to-end virtual latency (queue + swap + compute), µs.
    pub latency_us: f64,
    /// The model came out of the compiled cache (no admission run).
    pub cache_hit: bool,
    /// The chosen board already held the model's weights.
    pub resident_hit: bool,
    /// The placement displaced another model's residency.
    pub swapped: bool,
}

/// Handle to one queued fleet request.
#[derive(Debug)]
pub struct FleetTicket {
    rx: mpsc::Receiver<Result<FleetResponse, DriverError>>,
}

impl FleetTicket {
    /// Blocks until the request completes, fails, or the fleet shuts
    /// down with the request unserved.
    pub fn wait(self) -> Result<FleetResponse, DriverError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(DriverError::Queue {
                reason: "fleet shut down before the request completed".into(),
            })
        })
    }
}

/// Outcome of a [`FleetServer::submit`] call.
#[derive(Debug)]
pub enum FleetSubmit {
    /// Queued; await the result via the ticket.
    Accepted(FleetTicket),
    /// Admission refused the request. The unified [`RejectReason`]
    /// says why: [`RejectReason::Throttled`] is the tenant token
    /// bucket (fairness), [`RejectReason::QueueFull`] the target
    /// shard's queue bound (backpressure), [`RejectReason::Closed`]
    /// a shut-down fleet.
    Denied(RejectReason),
}

impl FleetSubmit {
    /// Unwraps the ticket of an accepted submission.
    pub fn expect_accepted(self) -> FleetTicket {
        match self {
            FleetSubmit::Accepted(t) => t,
            FleetSubmit::Denied(reason) => panic!("submission was denied: {reason}"),
        }
    }

    /// The rejection reason of a denied submission.
    pub fn denial(&self) -> Option<&RejectReason> {
        match self {
            FleetSubmit::Denied(reason) => Some(reason),
            FleetSubmit::Accepted(_) => None,
        }
    }
}

struct Job {
    id: u64,
    shard: usize,
    req: FleetRequest,
    arrival_us: f64,
    /// The client's one-shot response channel, consumed at the send
    /// site so delivery is exactly-once even across worker crashes.
    tx: Option<mpsc::Sender<Result<FleetResponse, DriverError>>>,
    /// Worker deaths this request has survived so far.
    crashes: u32,
}

impl Job {
    /// Delivers the request's terminal outcome, at most once.
    fn deliver(&mut self, outcome: Result<FleetResponse, DriverError>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(outcome);
        }
    }
}

struct Shard {
    queue: BoundedQueue<Job>,
    pool: Mutex<BoardPool>,
}

struct Shared {
    cfg: FleetConfig,
    cache: CompiledModelCache,
    shards: Vec<Shard>,
    limiter: Mutex<TenantLimiter>,
    injector: Mutex<FaultInjector>,
    counters: FleetCounters,
    next_request: AtomicU64,
    started: Instant,
}

impl Shared {
    fn trace(&self, t_us: f64, event: TraceEvent) {
        if let Some(sink) = &self.cfg.trace {
            sink.record(t_us, event);
        }
    }
}

/// The sharded multi-tenant fleet server.
pub struct FleetServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// FNV-1a over the model id: the shard-routing hash. `std`'s default
/// hasher is seeded per-process, which would make routing — and with it
/// residency behaviour — non-reproducible across runs.
pub fn route(model_id: u64, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in model_id.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    cast::usize_sat(hash % cast::u64_from_usize(shards.max(1)))
}

impl FleetServer {
    /// Starts the fleet: `boards_per_shard` workers per shard.
    pub fn start(driver: Driver, cfg: FleetConfig) -> FleetServer {
        assert!(cfg.shards > 0, "at least one shard");
        assert!(cfg.boards_per_shard > 0, "at least one board per shard");
        assert!(cfg.queue_depth > 0, "queue bound must be positive");
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                queue: BoundedQueue::new(cfg.queue_depth),
                pool: Mutex::new(BoardPool::new(cfg.boards_per_shard)),
            })
            .collect();
        let shared = Arc::new(Shared {
            cache: CompiledModelCache::new(driver, cfg.cache_capacity_bytes),
            shards,
            limiter: Mutex::new(TenantLimiter::new(cfg.tenant_policy)),
            injector: Mutex::new(FaultInjector::new(cfg.faults.clone())),
            counters: FleetCounters::default(),
            next_request: AtomicU64::new(0),
            started: Instant::now(),
            cfg,
        });
        let mut workers = Vec::new();
        let mut worker_idx = 0usize;
        for shard in 0..shared.cfg.shards {
            for _ in 0..shared.cfg.boards_per_shard {
                let shared = Arc::clone(&shared);
                let worker = worker_idx;
                worker_idx += 1;
                workers.push(std::thread::spawn(move || {
                    worker_loop(&shared, shard, worker)
                }));
            }
        }
        FleetServer { shared, workers }
    }

    /// Submits a request. Admission is non-blocking: token-bucket and
    /// queue-bound refusals return immediately so the caller can shed
    /// or defer load.
    pub fn submit(&self, req: FleetRequest) -> FleetSubmit {
        use std::sync::atomic::Ordering;
        let c = &self.shared.counters;
        c.bump(&c.submitted);
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        let now_us = self.now_us();
        self.shared.trace(
            now_us,
            TraceEvent::Submitted {
                request: id,
                tenant: req.tenant,
                model: req.model_id,
            },
        );
        if !lock_recover(&self.shared.limiter).try_admit(req.tenant, now_us) {
            c.bump(&c.throttled);
            return self.deny(id, now_us, RejectReason::Throttled { tenant: req.tenant });
        }
        let shard = route(req.model_id, self.shared.cfg.shards);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            shard,
            req,
            arrival_us: now_us,
            tx: Some(tx),
            crashes: 0,
        };
        // Recorded before the push: once the job is visible a worker
        // may complete it immediately, and the terminal event must not
        // precede the admission event in the trace.
        self.shared.trace(
            now_us,
            TraceEvent::Admitted {
                request: id,
                range_flagged: false,
            },
        );
        match self.shared.shards[shard].queue.push(job) {
            Push::Accepted { .. } => {
                c.bump(&c.accepted);
                FleetSubmit::Accepted(FleetTicket { rx })
            }
            Push::Full { len } => {
                c.bump(&c.rejected_busy);
                self.deny(id, now_us, RejectReason::QueueFull { queue_len: len })
            }
            Push::Closed => self.deny(id, now_us, RejectReason::Closed),
        }
    }

    fn deny(&self, id: u64, now_us: f64, reason: RejectReason) -> FleetSubmit {
        self.shared.trace(now_us, TraceEvent::rejected(id, &reason));
        FleetSubmit::Denied(reason)
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> FleetMetrics {
        gather(&self.shared)
    }

    /// Closes every shard queue, drains in-flight work, joins the
    /// workers, and returns the final metrics.
    pub fn shutdown(self) -> FleetMetrics {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        gather(&self.shared)
    }

    fn now_us(&self) -> f64 {
        self.shared.started.elapsed().as_secs_f64() * 1e6
    }
}

fn gather(shared: &Shared) -> FleetMetrics {
    use std::sync::atomic::Ordering;
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let c = &shared.counters;
    FleetMetrics {
        submitted: load(&c.submitted),
        accepted: load(&c.accepted),
        throttled: load(&c.throttled),
        rejected_busy: load(&c.rejected_busy),
        completed: load(&c.completed),
        failed: load(&c.failed),
        timed_out: load(&c.timed_out),
        worker_panics: load(&c.worker_panics),
        crash_requeued: load(&c.crash_requeued),
        cache: shared.cache.stats(),
        shards: shared
            .shards
            .iter()
            .map(|s| {
                let pool = lock_recover(&s.pool);
                ShardStats {
                    placements: pool.placements(),
                    swaps: pool.swaps(),
                    resident_hits: pool.resident_hits(),
                    dma_busy_us: pool.arbiter().dma_busy_us(),
                    makespan_us: pool.arbiter().makespan_us(),
                }
            })
            .collect(),
    }
}

fn worker_loop(shared: &Shared, shard: usize, worker: usize) {
    while let Some(mut job) = shared.shards[shard].queue.pop_wait() {
        // Crash-only containment, mirroring `netpu-serve`: a panic in
        // the serving path kills the request, never the worker. Every
        // shared lock is re-entered through `lock_recover`, so poison
        // cannot cascade.
        let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_one(shared, shard, &job)
        }));
        match served {
            Ok(outcome) => {
                let c = &shared.counters;
                match &outcome {
                    Ok(resp) => {
                        c.bump(&c.completed);
                        shared.trace(
                            job.arrival_us + resp.latency_us,
                            TraceEvent::Completed {
                                request: job.id,
                                latency_us: resp.latency_us,
                            },
                        );
                    }
                    Err(e) => {
                        c.bump(match e {
                            DriverError::Timeout { .. } => &c.timed_out,
                            _ => &c.failed,
                        });
                        shared.trace(
                            job.arrival_us,
                            TraceEvent::Failed {
                                request: job.id,
                                error: e.to_string(),
                            },
                        );
                    }
                }
                job.deliver(outcome);
            }
            Err(_) => recover_crash(shared, worker, job),
        }
    }
}

/// Crash-only recovery, the fleet edition: requeue to the request's
/// own shard (routing is a pure function of the model id, so the
/// requeued job lands where its residency state lives) or reject with
/// [`RejectReason::WorkerCrash`] once the budget is spent. Delivery
/// stays exactly-once: [`Job::tx`] is consumed at the send site.
fn recover_crash(shared: &Shared, worker: usize, mut job: Job) {
    let c = &shared.counters;
    c.bump(&c.worker_panics);
    if job.tx.is_none() {
        // The outcome already went out; the request's lifecycle is
        // complete and there is nothing to recover.
        return;
    }
    shared.trace(
        job.arrival_us,
        TraceEvent::WorkerCrash {
            worker: cast::u64_from_usize(worker),
            request: job.id,
        },
    );
    job.crashes += 1;
    let (id, crashes, arrival_us) = (job.id, job.crashes, job.arrival_us);
    if crashes <= shared.cfg.crash_requeues {
        match shared.shards[job.shard].queue.push_reclaim(job) {
            Ok(_) => {
                c.bump(&c.crash_requeued);
                shared.trace(
                    arrival_us,
                    TraceEvent::Requeued {
                        request: id,
                        crashes: u64::from(crashes),
                    },
                );
                return;
            }
            // The shard queue refused the requeue (full or closed):
            // fall through to an explicit rejection.
            Err((reclaimed, _refusal)) => job = reclaimed,
        }
    }
    let reason = RejectReason::WorkerCrash { crashes };
    c.bump(&c.failed);
    shared.trace(arrival_us, TraceEvent::rejected(id, &reason));
    job.deliver(Err(DriverError::Rejected(reason)));
}

fn serve_one(shared: &Shared, shard: usize, job: &Job) -> Result<FleetResponse, DriverError> {
    if lock_recover(&shared.injector).should_crash() {
        // The injected death happens while holding the shard's pool
        // lock, poisoning it — the worst state a real crash leaves
        // behind and exactly what `lock_recover` must absorb.
        let _pool = lock_recover(&shared.shards[shard].pool);
        panic!("injected worker crash serving request {}", job.id);
    }
    let cache_hit = shared.cache.contains(job.req.model_id);
    let admitted = shared
        .cache
        .get_or_admit(job.req.model_id, &job.req.model)?;
    // Splice this request's input into the admitted stream; the model
    // sections are reused verbatim, so no re-check is needed — exactly
    // the §V "reconfigure by stream" economy the cache exists for.
    let mut loadable = admitted.loadable.clone();
    loadable
        .replace_input(&job.req.pixels)
        .map_err(DriverError::Compile)?;
    let run = run_inference_fast(&shared.cache.driver().hw, loadable.words)
        .map_err(DriverError::Accelerator)?;
    let placement = lock_recover(&shared.shards[shard].pool).place(
        shared.cfg.policy,
        &admitted,
        job.arrival_us,
    );
    let latency_us = placement.grant.complete_us - job.arrival_us;
    if let Some(deadline_us) = job.req.deadline_us {
        if latency_us > deadline_us {
            return Err(DriverError::Timeout {
                deadline_us,
                elapsed_us: latency_us,
            });
        }
    }
    Ok(FleetResponse {
        class: run.class,
        shard,
        board: placement.grant.board,
        latency_us,
        cache_hit,
        resident_hit: placement.resident_hit,
        swapped: placement.swapped,
    })
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(not(loom))]
#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    fn request(tenant: u64, model_id: u64, model: &Arc<QuantMlp>, seed: u8) -> FleetRequest {
        FleetRequest {
            tenant,
            model_id,
            model: Arc::clone(model),
            pixels: vec![seed; model.input.len],
            deadline_us: None,
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for id in 0..100 {
            let s = route(id, 8);
            assert!(s < 8);
            assert_eq!(s, route(id, 8), "routing must be a pure function");
        }
        // Several models actually spread over shards.
        let distinct: std::collections::HashSet<usize> = (0..100).map(|id| route(id, 8)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn fleet_serves_across_shards_and_reuses_admission() {
        let model = Arc::new(
            ZooModel::SfcW1A1
                .build_untrained(11, BnMode::Folded)
                .unwrap(),
        );
        let model2 = Arc::new(
            ZooModel::SfcW2A2
                .build_untrained(12, BnMode::Folded)
                .unwrap(),
        );
        let fleet = FleetServer::start(
            Driver::builder().build(),
            FleetConfig {
                shards: 2,
                boards_per_shard: 2,
                ..FleetConfig::default()
            },
        );
        let mut tickets = Vec::new();
        for i in 0..8u8 {
            let (id, m) = if i % 2 == 0 {
                (1, &model)
            } else {
                (2, &model2)
            };
            tickets.push(
                fleet
                    .submit(request(u64::from(i % 3), id, m, i))
                    .expect_accepted(),
            );
        }
        for t in tickets {
            let resp = t.wait().unwrap();
            assert!(resp.latency_us > 0.0);
        }
        let m = fleet.shutdown();
        assert_eq!(m.completed, 8);
        assert_eq!((m.failed, m.timed_out, m.rejected_busy), (0, 0, 0));
        // Two models, eight requests: admission ran exactly twice.
        assert_eq!(m.cache.misses, 2);
        assert_eq!(m.cache.hits, 6);
        let placements: u64 = m.shards.iter().map(|s| s.placements).sum();
        assert_eq!(placements, 8);
    }

    #[test]
    fn served_class_matches_the_driver() {
        let model = Arc::new(
            ZooModel::TfcW1A1
                .build_untrained(13, BnMode::Folded)
                .unwrap(),
        );
        let driver = Driver::builder().build();
        let pixels = vec![77u8; model.input.len];
        let direct = driver.infer(&model, &pixels).unwrap();
        let fleet = FleetServer::start(driver, FleetConfig::default());
        let resp = fleet
            .submit(FleetRequest {
                tenant: 0,
                model_id: 9,
                model: Arc::clone(&model),
                pixels,
                deadline_us: None,
            })
            .expect_accepted()
            .wait()
            .unwrap();
        assert_eq!(resp.class, direct.class);
        fleet.shutdown();
    }

    #[test]
    fn token_bucket_throttles_a_flooding_tenant() {
        let model = Arc::new(
            ZooModel::SfcW1A1
                .build_untrained(14, BnMode::Folded)
                .unwrap(),
        );
        let fleet = FleetServer::start(
            Driver::builder().build(),
            FleetConfig {
                tenant_policy: TenantPolicy {
                    rate_rps: 1.0,
                    burst: 2.0,
                },
                ..FleetConfig::default()
            },
        );
        let mut accepted = 0;
        let mut throttled = 0;
        let mut tickets = Vec::new();
        for i in 0..6u8 {
            match fleet.submit(request(7, 1, &model, i)) {
                FleetSubmit::Accepted(t) => {
                    accepted += 1;
                    tickets.push(t);
                }
                FleetSubmit::Denied(RejectReason::Throttled { tenant }) => {
                    assert_eq!(tenant, 7);
                    throttled += 1;
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert_eq!(accepted, 2, "burst allowance is two");
        assert_eq!(throttled, 4);
        for t in tickets {
            t.wait().unwrap();
        }
        let m = fleet.shutdown();
        assert_eq!(m.throttled, 4);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn crashed_worker_requeues_to_its_own_shard_and_completes() {
        let model = Arc::new(
            ZooModel::SfcW1A1
                .build_untrained(15, BnMode::Folded)
                .unwrap(),
        );
        let sink = Arc::new(netpu_trace::MemorySink::new());
        let fleet = FleetServer::start(
            Driver::builder().build(),
            FleetConfig {
                shards: 1,
                boards_per_shard: 1,
                faults: FaultPlan::CrashFirstAttempts(1),
                trace: Some(Arc::clone(&sink) as Arc<dyn TraceSink>),
                ..FleetConfig::default()
            },
        );
        let resp = fleet
            .submit(request(0, 1, &model, 42))
            .expect_accepted()
            .wait()
            .unwrap();
        assert_eq!(resp.shard, 0);
        let m = fleet.shutdown();
        assert_eq!((m.worker_panics, m.crash_requeued), (1, 1));
        assert_eq!((m.completed, m.failed), (1, 0));
        // The lifecycle trace verifies: crash resolved by a requeue,
        // exactly one terminal outcome.
        let summary = netpu_trace::verify(&sink.take()).expect("trace verifies");
        assert_eq!((summary.requests, summary.completed), (1, 1));
        assert_eq!((summary.crashes, summary.requeues), (1, 1));
    }

    #[test]
    fn exhausted_crash_budget_rejects_with_worker_crash() {
        let model = Arc::new(
            ZooModel::SfcW1A1
                .build_untrained(16, BnMode::Folded)
                .unwrap(),
        );
        let fleet = FleetServer::start(
            Driver::builder().build(),
            FleetConfig {
                shards: 1,
                boards_per_shard: 1,
                faults: FaultPlan::CrashFirstAttempts(5),
                crash_requeues: 1,
                ..FleetConfig::default()
            },
        );
        let outcome = fleet
            .submit(request(0, 1, &model, 7))
            .expect_accepted()
            .wait();
        match outcome {
            Err(DriverError::Rejected(RejectReason::WorkerCrash { crashes })) => {
                assert_eq!(crashes, 2, "one requeue, then the budget is spent");
            }
            other => panic!("expected worker-crash rejection, got {other:?}"),
        }
        let m = fleet.shutdown();
        assert_eq!((m.worker_panics, m.crash_requeued), (2, 1));
        assert_eq!((m.completed, m.failed), (0, 1));
    }
}
