#![deny(missing_docs)]
//! Sharded multi-tenant serving core for NetPU-M.
//!
//! `netpu-serve` runs one queue over one board pool; this crate scales
//! it into a *fleet*: many tenants sharing many models over many
//! boards, where the scarce resource is the §V weight-stream loading
//! path. Four pieces (DESIGN.md §4.6):
//!
//! * [`cache`] — the Arc-shared [`CompiledModelCache`]: compile + full
//!   two-tier admission (NPC001–NPC020) exactly once per model id,
//!   byte-budgeted LRU eviction, per-request input splicing.
//! * [`shard`] — the live dispatch core: FNV-routed bounded shard
//!   queues over per-shard board pools, token-bucket tenant fairness,
//!   explicit backpressure.
//! * [`sched`] — swap-aware placement and bounded EDF window
//!   reordering over per-board weight residency, amortizing the weight
//!   stream the way the paper's runtime-reconfiguration design intends.
//! * [`replay`] — the deterministic virtual-time traffic harness
//!   behind `BENCH_serve.json`'s fleet rows.

pub mod cache;
pub mod metrics;
pub mod replay;
pub mod sched;
pub mod shard;
pub mod tenant;

pub use cache::{Admit, AdmittedModel, CacheStats, CompiledModelCache, LruCore};
pub use metrics::{FleetMetrics, ShardStats};
pub use netpu_serve::{AdmissionVerdict, RejectReason, TraceSink};
pub use replay::{run_replay, ReplayConfig, ReplayReport, TenantRow};
pub use sched::{BoardPool, Candidate, DispatchPolicy, Placement};
pub use shard::{
    route, FleetConfig, FleetRequest, FleetResponse, FleetServer, FleetSubmit, FleetTicket,
};
pub use tenant::{TenantLimiter, TenantPolicy, TokenBucket};
