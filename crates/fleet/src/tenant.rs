//! Per-tenant token-bucket rate limiting on the fleet's µs clock.
//!
//! Fairness in the fleet is enforced at admission, not at dispatch: a
//! tenant that floods the front door is throttled before its requests
//! occupy shard queue slots, so a bursty tenant cannot starve the rest
//! of the board pool. Buckets run in the same clock domain as the
//! scheduler — virtual µs in the replay harness, wall-clock µs in the
//! live server — so throttling behaviour is identical in both.

use std::collections::HashMap;

/// Per-tenant rate policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Sustained admission rate, requests per second.
    pub rate_rps: f64,
    /// Burst allowance: how many requests a tenant may submit
    /// back-to-back before the sustained rate gates it.
    pub burst: f64,
}

impl Default for TenantPolicy {
    /// A permissive default: 10 000 req/s sustained, bursts of 64.
    fn default() -> TenantPolicy {
        TenantPolicy {
            rate_rps: 10_000.0,
            burst: 64.0,
        }
    }
}

/// One tenant's token bucket.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    updated_us: f64,
}

impl TokenBucket {
    /// A full bucket under `policy`.
    pub fn new(policy: TenantPolicy) -> TokenBucket {
        TokenBucket {
            rate_per_us: policy.rate_rps / 1e6,
            burst: policy.burst.max(1.0),
            tokens: policy.burst.max(1.0),
            updated_us: 0.0,
        }
    }

    /// Attempts to take one token at time `now_us`; `false` means the
    /// request is throttled. Time moving backwards (clock skew between
    /// submitters) is clamped: the bucket never un-refills.
    pub fn try_admit(&mut self, now_us: f64) -> bool {
        if now_us > self.updated_us {
            let refill = (now_us - self.updated_us) * self.rate_per_us;
            self.tokens = (self.tokens + refill).min(self.burst);
            self.updated_us = now_us;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// The fleet's per-tenant limiter: one lazily created bucket per tenant
/// id, all under one policy.
#[derive(Clone, Debug, Default)]
pub struct TenantLimiter {
    policy: TenantPolicy,
    buckets: HashMap<u64, TokenBucket>,
}

impl TenantLimiter {
    /// A limiter applying `policy` to every tenant.
    pub fn new(policy: TenantPolicy) -> TenantLimiter {
        TenantLimiter {
            policy,
            buckets: HashMap::new(),
        }
    }

    /// Admits or throttles one request from `tenant` at `now_us`.
    pub fn try_admit(&mut self, tenant: u64, now_us: f64) -> bool {
        self.buckets
            .entry(tenant)
            .or_insert_with(|| TokenBucket::new(self.policy))
            .try_admit(now_us)
    }

    /// Number of tenants seen so far.
    pub fn tenants(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_sustained_rate() {
        let mut b = TokenBucket::new(TenantPolicy {
            rate_rps: 1_000.0, // one token per 1000 µs
            burst: 3.0,
        });
        // The burst allowance drains first.
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(b.try_admit(0.0));
        assert!(!b.try_admit(0.0), "burst exhausted");
        // ...then the sustained rate refills one token per ms.
        assert!(!b.try_admit(500.0));
        assert!(b.try_admit(1_000.0));
        assert!(!b.try_admit(1_100.0));
    }

    #[test]
    fn refill_caps_at_the_burst_allowance() {
        let mut b = TokenBucket::new(TenantPolicy {
            rate_rps: 1_000_000.0,
            burst: 2.0,
        });
        assert!(b.try_admit(0.0));
        // A long idle period refills to the cap, not beyond.
        b.try_admit(1e9);
        assert!(b.tokens() <= 2.0);
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut b = TokenBucket::new(TenantPolicy {
            rate_rps: 1_000.0,
            burst: 1.0,
        });
        assert!(b.try_admit(5_000.0));
        // An earlier timestamp must not mint tokens.
        assert!(!b.try_admit(1_000.0));
    }

    #[test]
    fn tenants_are_limited_independently() {
        let mut limiter = TenantLimiter::new(TenantPolicy {
            rate_rps: 1_000.0,
            burst: 1.0,
        });
        assert!(limiter.try_admit(1, 0.0));
        assert!(!limiter.try_admit(1, 0.0));
        assert!(limiter.try_admit(2, 0.0), "tenant 2 has its own bucket");
        assert_eq!(limiter.tenants(), 2);
    }
}
