//! Acceptance-scale replay: a 64-board (8 shards × 8), 20-model,
//! 12-tenant, 10 000-request seeded workload must run deterministically,
//! keep the compiled-cache hit rate above 90 %, and show swap-aware
//! scheduling beating the naive FIFO baseline on swaps per request.

use netpu_fleet::{run_replay, DispatchPolicy, ReplayConfig};
use netpu_runtime::Driver;

#[test]
fn acceptance_workload_meets_the_issue_criteria() {
    let driver = Driver::builder().build();
    let cfg = ReplayConfig::acceptance();
    assert_eq!(cfg.shards * cfg.boards_per_shard, 64);
    assert!(cfg.models >= 20);
    assert!(cfg.requests >= 10_000);

    let aware = run_replay(&driver, &cfg).unwrap();
    let naive = run_replay(&driver, &cfg.clone().with_policy(DispatchPolicy::NaiveFifo)).unwrap();

    // Deterministic: the same config reproduces the same report.
    let again = run_replay(&driver, &cfg).unwrap();
    assert_eq!(aware, again, "replay is not deterministic");

    // Every offered request is accounted for.
    assert_eq!(aware.offered, 10_000);
    assert_eq!(aware.completed + aware.throttled, aware.offered);
    assert!(aware.completed > 0);

    // Compiled-model cache carries the fleet: >90 % hit rate.
    assert!(
        aware.cache_hit_rate > 0.9,
        "cache hit rate {} below the acceptance bar",
        aware.cache_hit_rate
    );

    // Swap-aware scheduling amortizes the §V weight-stream bottleneck.
    assert_eq!(
        aware.completed, naive.completed,
        "policies saw different workloads"
    );
    assert!(
        aware.swaps_per_request < naive.swaps_per_request,
        "swap-aware {} vs naive {} swaps/request",
        aware.swaps_per_request,
        naive.swaps_per_request
    );
    assert!(aware.resident_hit_rate > naive.resident_hit_rate);

    // The schedule respects the analytic transfer bound.
    for report in [&aware, &naive] {
        assert!(
            report.bound_ratio <= 1.0 + 1e-6,
            "{} exceeds the ClusterThroughput bound: {}",
            report.policy,
            report.bound_ratio
        );
    }

    // Percentiles are ordered and the fairness index is sane.
    assert!(aware.p50_us <= aware.p99_us && aware.p99_us <= aware.p999_us);
    assert!(aware.jain_fairness > 0.0 && aware.jain_fairness <= 1.0 + 1e-12);
}
