//! Property suite for the compiled-model cache's LRU core: under any
//! sequence of admit / lookup / remove operations, resident bytes
//! never exceed the budget, and a lookup only ever returns a value
//! that was admitted and has not been evicted since — never a stale or
//! foreign entry.

use netpu_fleet::{Admit, CompiledModelCache, LruCore};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::Driver;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_op_sequences_hold_the_budget_and_membership(
        capacity in 1u64..256,
        ops in collection::vec((0u64..12, 1u64..96, 0u64..4), 0..160),
    ) {
        let mut lru: LruCore<(u64, u64)> = LruCore::new(capacity);
        // Reference model: the set of entries that must be resident.
        let mut live: HashMap<u64, (u64, u64)> = HashMap::new();
        for (id, bytes, op) in ops {
            match op {
                // Admit: value is tagged with its id and size so any
                // cross-entry mixup is caught on lookup.
                0 | 1 => {
                    let value = (id, bytes);
                    match lru.insert(id, value, bytes) {
                        Admit::Inserted { evicted } => {
                            prop_assert!(bytes <= capacity);
                            live.remove(&id); // replaced, if present
                            for victim in &evicted {
                                prop_assert!(
                                    live.remove(victim).is_some(),
                                    "evicted {} was not live", victim
                                );
                                prop_assert!(*victim != id, "evicted the new entry");
                            }
                            live.insert(id, value);
                        }
                        Admit::TooLarge { bytes: b, capacity: c } => {
                            prop_assert_eq!(b, bytes);
                            prop_assert_eq!(c, capacity);
                            prop_assert!(bytes > capacity, "fitting entry refused");
                        }
                    }
                }
                // Lookup: exactly the reference model's answer.
                2 => {
                    let got = lru.lookup(id).copied();
                    prop_assert_eq!(got, live.get(&id).copied());
                }
                // Remove.
                _ => {
                    let got = lru.remove(id);
                    prop_assert_eq!(got, live.remove(&id));
                }
            }
            // Budget invariant after every operation.
            let model_bytes: u64 = live.values().map(|&(_, b)| b).sum();
            prop_assert!(lru.resident_bytes() <= capacity,
                "resident {} over budget {}", lru.resident_bytes(), capacity);
            prop_assert_eq!(lru.resident_bytes(), model_bytes);
            let mut want: Vec<u64> = live.keys().copied().collect();
            want.sort_unstable();
            prop_assert_eq!(lru.ids(), want);
        }
    }
}

#[test]
fn real_model_cache_never_returns_an_unadmitted_loadable() {
    let cache = CompiledModelCache::new(Driver::builder().build(), 256 << 20);
    let a = ZooModel::SfcW1A1
        .build_untrained(31, BnMode::Folded)
        .unwrap();
    let b = ZooModel::SfcW2A2
        .build_untrained(32, BnMode::Folded)
        .unwrap();
    let a_adm = cache.get_or_admit(1, &a).unwrap();
    let b_adm = cache.get_or_admit(2, &b).unwrap();
    // Lookups only surface what was admitted, under the right id.
    assert_eq!(
        cache.lookup(1).unwrap().loadable.words,
        a_adm.loadable.words
    );
    assert_eq!(
        cache.lookup(2).unwrap().loadable.words,
        b_adm.loadable.words
    );
    assert!(cache.lookup(3).is_none(), "id 3 was never admitted");
    assert!(!cache.contains(99));
}

#[test]
fn tiny_budget_evicts_but_never_overflows() {
    let driver = Driver::builder().build();
    let probe = CompiledModelCache::new(driver.clone(), 256 << 20);
    let a = ZooModel::SfcW1A1
        .build_untrained(41, BnMode::Folded)
        .unwrap();
    let one_model_bytes = probe.get_or_admit(0, &a).unwrap().bytes;
    // Budget fits ~1.5 models: admitting three forces evictions.
    let cache = CompiledModelCache::new(driver, one_model_bytes * 3 / 2);
    for (id, seed) in [(1u64, 42u64), (2, 43), (3, 44)] {
        let model = ZooModel::SfcW1A1
            .build_untrained(seed, BnMode::Folded)
            .unwrap();
        cache.get_or_admit(id, &model).unwrap();
        let stats = cache.stats();
        assert!(
            stats.resident_bytes <= stats.capacity_bytes,
            "resident {} over budget {}",
            stats.resident_bytes,
            stats.capacity_bytes
        );
    }
    let stats = cache.stats();
    assert!(
        stats.evictions >= 2,
        "three same-size models through a 1.5-model budget"
    );
    // The newest admission is resident; the oldest was evicted.
    assert!(cache.contains(3));
    assert!(!cache.contains(1));
}
