#![cfg(loom)]
//! Model-checked concurrency invariants of the sharded dispatch path
//! (`RUSTFLAGS="--cfg loom" cargo test -p netpu-fleet --test loom`).
//!
//! The fleet's dispatch core is shard queues (the loom-shimmed
//! [`BoundedQueue`]) feeding workers that charge placements to a
//! shared board pool. The hazard is shutdown racing dispatch: a close
//! arriving while producers push and workers drain must neither lose
//! an accepted request (lost wakeup → hung worker) nor deliver one
//! twice (queue/pool double-charge). Each model replays the race
//! across loom's perturbed interleavings.

use loom::sync::{Arc, Mutex};
use loom::thread;
use netpu_serve::queue::{BoundedQueue, Push};

/// FNV-style routing stand-in: the real `netpu_fleet::route` is a pure
/// function, so a modulo keeps the model's state space small without
/// changing the property.
fn shard_of(id: usize, shards: usize) -> usize {
    id % shards
}

#[test]
fn shutdown_racing_dispatch_serves_each_accepted_request_exactly_once() {
    loom::model(|| {
        const SHARDS: usize = 2;
        let queues: Arc<Vec<BoundedQueue<usize>>> =
            Arc::new((0..SHARDS).map(|_| BoundedQueue::new(2)).collect());
        // The board-pool stand-in: every pop charges one placement.
        let placed = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..SHARDS)
            .map(|s| {
                let queues = Arc::clone(&queues);
                let placed = Arc::clone(&placed);
                thread::spawn(move || {
                    while let Some(id) = queues[s].pop_wait() {
                        placed.lock().unwrap().push(id);
                    }
                })
            })
            .collect();
        // The producer submits across shards, then shuts down while
        // the workers may still be draining.
        let producer = {
            let queues = Arc::clone(&queues);
            thread::spawn(move || {
                let mut accepted = Vec::new();
                for id in 0..4 {
                    match queues[shard_of(id, SHARDS)].push(id) {
                        Push::Accepted { .. } => accepted.push(id),
                        Push::Full { .. } => {}
                        Push::Closed => panic!("closed before shutdown"),
                    }
                }
                for q in queues.iter() {
                    q.close();
                }
                accepted
            })
        };
        let mut accepted = producer.join().unwrap();
        for w in workers {
            // A lost close wakeup would hang this join and trip the
            // model's watchdog.
            w.join().unwrap();
        }
        let mut served = placed.lock().unwrap().clone();
        served.sort_unstable();
        accepted.sort_unstable();
        // Exactly once: nothing lost on shutdown, nothing duplicated
        // between the queue and the pool.
        assert_eq!(served, accepted);
    });
}

#[test]
fn concurrent_closers_wake_every_blocked_shard_worker() {
    loom::model(|| {
        const SHARDS: usize = 2;
        let queues: Arc<Vec<BoundedQueue<usize>>> =
            Arc::new((0..SHARDS).map(|_| BoundedQueue::new(1)).collect());
        // Workers block on empty queues.
        let workers: Vec<_> = (0..SHARDS)
            .map(|s| {
                let queues = Arc::clone(&queues);
                thread::spawn(move || {
                    let mut served = 0usize;
                    while queues[s].pop_wait().is_some() {
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        // Two shutdown paths race (e.g. drop + explicit shutdown):
        // closing must be idempotent and wake every waiter.
        let closers: Vec<_> = (0..2)
            .map(|_| {
                let queues = Arc::clone(&queues);
                thread::spawn(move || {
                    for q in queues.iter() {
                        q.close();
                    }
                })
            })
            .collect();
        for c in closers {
            c.join().unwrap();
        }
        let served: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(served, 0, "nothing was ever queued");
        // Pushes after the racing closes are refused.
        assert!(matches!(queues[0].push(9), Push::Closed));
    });
}
