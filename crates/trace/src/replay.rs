//! Deterministic replay verification.
//!
//! A recorded trace is only trustworthy if it is *internally
//! consistent*: every request reaches exactly one terminal outcome,
//! every crash resolves to a requeue or a rejection, and every DMA
//! grant's schedule is exactly what the `DmaArbiter` arithmetic
//! implies from the grants before it. [`verify`] re-derives all of
//! that from the records alone — it deliberately does **not** import
//! the serving layers (which depend on this crate), so the arbiter
//! recurrence is restated here from DESIGN.md §4.5:
//!
//! ```text
//! start        = max(arrival, dma_free, board_free[board])
//! transfer_end = start + transfer          (bus released)
//! complete     = start + max(latency, transfer)
//! dma_free'          = transfer_end
//! board_free[board]' = complete
//! ```
//!
//! Grants are replayed in sequence order with exact (bitwise) `f64`
//! comparison: recorder and verifier perform the identical operations
//! in the identical order, so any divergence — a lost grant, a
//! reordered window, a poisoned arbiter re-admitting overlapping
//! windows — trips [`ReplayError::ScheduleMismatch`].

use crate::record::{TraceEvent, TraceRecord};
use std::collections::HashMap;
use std::fmt;

/// A consistency violation found while replaying a trace.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ReplayError {
    /// Sequence numbers are not contiguous from zero.
    NonContiguousSeq {
        /// Observed sequence number.
        seq: u64,
        /// Expected sequence number.
        expected: u64,
    },
    /// A request-scoped event referenced a request never submitted.
    OrphanEvent {
        /// Record sequence number.
        seq: u64,
        /// The unknown request ID.
        request: u64,
    },
    /// A request ID was submitted twice.
    DuplicateSubmit {
        /// Record sequence number of the second submission.
        seq: u64,
        /// The duplicated request ID.
        request: u64,
    },
    /// A request received a second terminal outcome — the exactly-once
    /// delivery guarantee is broken.
    DuplicateTerminal {
        /// Record sequence number of the second terminal event.
        seq: u64,
        /// The offending request ID.
        request: u64,
    },
    /// A request-scoped event arrived after the request's terminal
    /// outcome.
    EventAfterTerminal {
        /// Record sequence number.
        seq: u64,
        /// The offending request ID.
        request: u64,
    },
    /// A submitted request never reached a terminal outcome.
    MissingTerminal {
        /// The unresolved request ID.
        request: u64,
    },
    /// A worker crash was never resolved by a requeue or rejection.
    UnresolvedCrash {
        /// The request whose crash dangles.
        request: u64,
    },
    /// A recorded grant field disagrees with the re-derived arbiter
    /// schedule.
    ScheduleMismatch {
        /// Record sequence number of the grant.
        seq: u64,
        /// The granted request.
        request: u64,
        /// Which schedule field diverged.
        field: &'static str,
        /// Value the arbiter recurrence implies.
        expected: f64,
        /// Value the trace recorded.
        actual: f64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::NonContiguousSeq { seq, expected } => {
                write!(f, "sequence gap: saw {seq}, expected {expected}")
            }
            ReplayError::OrphanEvent { seq, request } => {
                write!(f, "record {seq} references unsubmitted request {request}")
            }
            ReplayError::DuplicateSubmit { seq, request } => {
                write!(f, "record {seq} resubmits request {request}")
            }
            ReplayError::DuplicateTerminal { seq, request } => {
                write!(
                    f,
                    "record {seq} delivers a second terminal outcome for request {request}"
                )
            }
            ReplayError::EventAfterTerminal { seq, request } => {
                write!(
                    f,
                    "record {seq} touches request {request} after its terminal outcome"
                )
            }
            ReplayError::MissingTerminal { request } => {
                write!(f, "request {request} never reached a terminal outcome")
            }
            ReplayError::UnresolvedCrash { request } => {
                write!(
                    f,
                    "worker crash on request {request} never resolved to requeue-or-reject"
                )
            }
            ReplayError::ScheduleMismatch {
                seq,
                request,
                field,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "record {seq}: grant for request {request} has {field} = {actual}, \
                     arbiter recurrence implies {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Aggregate statistics of a verified trace.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ReplaySummary {
    /// Total records replayed.
    pub records: usize,
    /// Distinct submitted requests.
    pub requests: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests that failed terminally.
    pub failed: usize,
    /// Requests that were rejected.
    pub rejected: usize,
    /// Worker-crash events observed.
    pub crashes: usize,
    /// Crash requeues observed.
    pub requeues: usize,
    /// DMA grants replayed against the arbiter recurrence.
    pub grants: usize,
    /// Simulator tracer lines carried in the trace.
    pub sim_events: usize,
    /// Datapath probe samples carried in the trace.
    pub probe_samples: usize,
    /// Latest board-completion time across all grants.
    pub makespan_us: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Open,
    Crashed,
    Terminal,
}

/// Replays a record stream, verifying internal consistency; returns
/// aggregate statistics on success. See the module docs for the
/// invariants checked.
pub fn verify(records: &[TraceRecord]) -> Result<ReplaySummary, ReplayError> {
    let mut summary = ReplaySummary {
        records: records.len(),
        ..ReplaySummary::default()
    };
    let mut states: HashMap<u64, ReqState> = HashMap::new();
    let mut dma_free = 0.0f64;
    let mut board_free: HashMap<u64, f64> = HashMap::new();

    for (position, rec) in records.iter().enumerate() {
        let expected_seq = netpu_arith::cast::u64_from_usize(position);
        if rec.seq != expected_seq {
            return Err(ReplayError::NonContiguousSeq {
                seq: rec.seq,
                expected: expected_seq,
            });
        }

        if let TraceEvent::Submitted { request, .. } = rec.event {
            if states.insert(request, ReqState::Open).is_some() {
                return Err(ReplayError::DuplicateSubmit {
                    seq: rec.seq,
                    request,
                });
            }
            summary.requests += 1;
            continue;
        }

        if let Some(request) = rec.event.request() {
            let Some(state) = states.get_mut(&request) else {
                return Err(ReplayError::OrphanEvent {
                    seq: rec.seq,
                    request,
                });
            };
            let terminal = matches!(
                rec.event,
                TraceEvent::Completed { .. }
                    | TraceEvent::Failed { .. }
                    | TraceEvent::Rejected { .. }
            );
            if *state == ReqState::Terminal {
                if terminal {
                    return Err(ReplayError::DuplicateTerminal {
                        seq: rec.seq,
                        request,
                    });
                }
                return Err(ReplayError::EventAfterTerminal {
                    seq: rec.seq,
                    request,
                });
            }
            if terminal {
                *state = ReqState::Terminal;
            } else if matches!(rec.event, TraceEvent::WorkerCrash { .. }) {
                *state = ReqState::Crashed;
            } else if matches!(rec.event, TraceEvent::Requeued { .. }) {
                *state = ReqState::Open;
            }
        }

        match &rec.event {
            TraceEvent::Completed { .. } => summary.completed += 1,
            TraceEvent::Failed { .. } => summary.failed += 1,
            TraceEvent::Rejected { .. } => summary.rejected += 1,
            TraceEvent::WorkerCrash { .. } => summary.crashes += 1,
            TraceEvent::Requeued { .. } => summary.requeues += 1,
            TraceEvent::Sim { .. } => summary.sim_events += 1,
            TraceEvent::Probe { .. } => summary.probe_samples += 1,
            TraceEvent::Granted {
                request,
                board,
                arrival_us,
                transfer_us,
                latency_us,
                start_us,
                transfer_end_us,
                complete_us,
            } => {
                summary.grants += 1;
                let free = board_free.get(board).copied().unwrap_or(0.0);
                let expected_start = arrival_us.max(dma_free).max(free);
                let expected_transfer_end = expected_start + transfer_us;
                let expected_complete = expected_start + latency_us.max(*transfer_us);
                let checks = [
                    ("start_us", expected_start, *start_us),
                    ("transfer_end_us", expected_transfer_end, *transfer_end_us),
                    ("complete_us", expected_complete, *complete_us),
                ];
                for (field, expected, actual) in checks {
                    if expected.to_bits() != actual.to_bits() {
                        return Err(ReplayError::ScheduleMismatch {
                            seq: rec.seq,
                            request: *request,
                            field,
                            expected,
                            actual,
                        });
                    }
                }
                dma_free = expected_transfer_end;
                board_free.insert(*board, expected_complete);
                summary.makespan_us = summary.makespan_us.max(expected_complete);
            }
            _ => {}
        }
    }

    for (request, state) in &states {
        match state {
            ReqState::Terminal => {}
            ReqState::Crashed => return Err(ReplayError::UnresolvedCrash { request: *request }),
            ReqState::Open => return Err(ReplayError::MissingTerminal { request: *request }),
        }
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceEvent;

    fn seq(events: Vec<TraceEvent>) -> Vec<TraceRecord> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                seq: netpu_arith::cast::u64_from_usize(i),
                t_us: 0.0,
                event,
            })
            .collect()
    }

    fn submitted(request: u64) -> TraceEvent {
        TraceEvent::Submitted {
            request,
            tenant: 0,
            model: 0,
        }
    }

    fn completed(request: u64) -> TraceEvent {
        TraceEvent::Completed {
            request,
            latency_us: 1.0,
        }
    }

    #[test]
    fn clean_lifecycle_with_grants_verifies() {
        let records = seq(vec![
            submitted(1),
            TraceEvent::Admitted {
                request: 1,
                range_flagged: false,
            },
            TraceEvent::Granted {
                request: 1,
                board: 0,
                arrival_us: 0.0,
                transfer_us: 10.0,
                latency_us: 25.0,
                start_us: 0.0,
                transfer_end_us: 10.0,
                complete_us: 25.0,
            },
            submitted(2),
            TraceEvent::Granted {
                request: 2,
                board: 0,
                arrival_us: 5.0,
                transfer_us: 10.0,
                latency_us: 25.0,
                // dma_free = 10, board 0 free at 25 → start 25.
                start_us: 25.0,
                transfer_end_us: 35.0,
                complete_us: 50.0,
            },
            completed(1),
            completed(2),
        ]);
        let summary = verify(&records).expect("verify");
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.grants, 2);
        assert_eq!(summary.makespan_us, 50.0);
    }

    #[test]
    fn schedule_mismatch_is_caught() {
        let records = seq(vec![
            submitted(1),
            TraceEvent::Granted {
                request: 1,
                board: 0,
                arrival_us: 0.0,
                transfer_us: 10.0,
                latency_us: 25.0,
                start_us: 3.0, // wrong: recurrence implies 0.0
                transfer_end_us: 13.0,
                complete_us: 28.0,
            },
            completed(1),
        ]);
        let err = verify(&records).expect_err("mismatch");
        assert!(
            matches!(
                err,
                ReplayError::ScheduleMismatch {
                    field: "start_us",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn double_terminal_is_caught() {
        let records = seq(vec![submitted(1), completed(1), completed(1)]);
        assert_eq!(
            verify(&records),
            Err(ReplayError::DuplicateTerminal { seq: 2, request: 1 })
        );
    }

    #[test]
    fn event_after_terminal_is_caught() {
        let records = seq(vec![
            submitted(1),
            completed(1),
            TraceEvent::Retried {
                request: 1,
                attempt: 1,
            },
        ]);
        assert_eq!(
            verify(&records),
            Err(ReplayError::EventAfterTerminal { seq: 2, request: 1 })
        );
    }

    #[test]
    fn orphan_and_duplicate_submit_are_caught() {
        assert_eq!(
            verify(&seq(vec![completed(9)])),
            Err(ReplayError::OrphanEvent { seq: 0, request: 9 })
        );
        assert_eq!(
            verify(&seq(vec![submitted(1), submitted(1)])),
            Err(ReplayError::DuplicateSubmit { seq: 1, request: 1 })
        );
    }

    #[test]
    fn crash_must_resolve() {
        let crash = TraceEvent::WorkerCrash {
            worker: 0,
            request: 1,
        };
        // Unresolved crash at end of trace.
        assert_eq!(
            verify(&seq(vec![submitted(1), crash.clone()])),
            Err(ReplayError::UnresolvedCrash { request: 1 })
        );
        // Crash → requeue → complete verifies, counted in the summary.
        let ok = seq(vec![
            submitted(1),
            crash.clone(),
            TraceEvent::Requeued {
                request: 1,
                crashes: 1,
            },
            completed(1),
        ]);
        let summary = verify(&ok).expect("verify");
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.requeues, 1);
        assert_eq!(summary.completed, 1);
        // Crash → reject (requeue budget exhausted) also verifies.
        let rejected = seq(vec![
            submitted(1),
            crash,
            TraceEvent::Rejected {
                request: 1,
                code: "WORKER_CRASH".into(),
                rules: Vec::new(),
            },
        ]);
        assert_eq!(verify(&rejected).expect("verify").rejected, 1);
    }

    #[test]
    fn open_request_at_end_is_caught() {
        assert_eq!(
            verify(&seq(vec![submitted(1)])),
            Err(ReplayError::MissingTerminal { request: 1 })
        );
    }

    #[test]
    fn seq_gap_is_caught() {
        let mut records = seq(vec![submitted(1), completed(1)]);
        records[1].seq = 5;
        assert_eq!(
            verify(&records),
            Err(ReplayError::NonContiguousSeq {
                seq: 5,
                expected: 1
            })
        );
    }

    #[test]
    fn global_events_need_no_request_context() {
        let records = seq(vec![
            TraceEvent::Meta {
                key: "run".into(),
                value: "x".into(),
            },
            TraceEvent::Sim {
                cycle: 1,
                scope: "dma".into(),
                message: "m".into(),
            },
            TraceEvent::Probe {
                layer: 0,
                neuron: 0,
                stage: crate::record::StageCode::Level,
                value: 1,
            },
        ]);
        let summary = verify(&records).expect("verify");
        assert_eq!(summary.sim_events, 1);
        assert_eq!(summary.probe_samples, 1);
        assert_eq!(summary.requests, 0);
    }
}
