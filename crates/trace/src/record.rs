//! Trace records and the event vocabulary.
//!
//! One [`TraceRecord`] is one observation: a monotone sequence number
//! assigned by the sink, a **virtual** timestamp in microseconds (the
//! serving layers' `DmaArbiter` clock, never the wall clock — this is
//! what makes recorded runs replayable), and a [`TraceEvent`].
//!
//! The vocabulary deliberately spans every layer of the stack: request
//! lifecycle events from `netpu-serve`/`netpu-fleet` (submit, admit,
//! reject, grant, retry, crash, requeue, complete), simulator tracer
//! lines and datapath-probe samples forwarded by the driver, and
//! free-form `Meta` annotations. A single flat stream means replay
//! verification can cross-check layers against each other — e.g. that
//! every `Granted` window respects the arbiter schedule implied by the
//! grants before it.

use netpu_check::RejectReason;
use netpu_sim::{ProbeSample, ProbeStage};

/// One error-severity verifier finding attached to a
/// [`TraceEvent::Rejected`] event: the stable NPC rule ID and the byte
/// offset into the serialized stream, when the rule reports one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleHit {
    /// Stable rule ID string, e.g. `"NPC005"`.
    pub rule: String,
    /// Byte offset of the finding in the serialized stream.
    pub byte_offset: Option<u64>,
}

/// Datapath stage of a [`TraceEvent::Probe`] sample, as a stable wire
/// code decoupled from `netpu_sim::ProbeStage`'s in-memory layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageCode {
    /// Post-bias accumulator entering the post-MAC stages.
    Accumulator,
    /// Post-BatchNorm raw fixed-point word.
    PostBn,
    /// Activation output level.
    Level,
    /// Output-layer score word.
    Score,
}

impl StageCode {
    /// Wire byte for the codec.
    pub fn to_byte(self) -> u8 {
        match self {
            StageCode::Accumulator => 0,
            StageCode::PostBn => 1,
            StageCode::Level => 2,
            StageCode::Score => 3,
        }
    }

    /// Inverse of [`to_byte`](StageCode::to_byte).
    pub fn from_byte(b: u8) -> Option<StageCode> {
        match b {
            0 => Some(StageCode::Accumulator),
            1 => Some(StageCode::PostBn),
            2 => Some(StageCode::Level),
            3 => Some(StageCode::Score),
            _ => None,
        }
    }
}

impl From<ProbeStage> for StageCode {
    fn from(stage: ProbeStage) -> StageCode {
        match stage {
            ProbeStage::Accumulator => StageCode::Accumulator,
            ProbeStage::PostBn => StageCode::PostBn,
            ProbeStage::Level => StageCode::Level,
            ProbeStage::Score => StageCode::Score,
        }
    }
}

/// One traced observation. See the module docs for the vocabulary's
/// layering; the codec in [`codec`](crate::codec) assigns each variant
/// a stable tag byte.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum TraceEvent {
    /// Free-form annotation (config digests, corpus IDs, run labels).
    Meta {
        /// Annotation key.
        key: String,
        /// Annotation value.
        value: String,
    },
    /// A request entered an admission gate.
    Submitted {
        /// Request ID, unique within the trace.
        request: u64,
        /// Submitting tenant (0 for single-tenant serving).
        tenant: u64,
        /// Model identity (0 when anonymous).
        model: u64,
    },
    /// The admission gate let the request through.
    Admitted {
        /// Request ID.
        request: u64,
        /// Lenient-mode range findings were present but waved through.
        range_flagged: bool,
    },
    /// The admission gate (or crash recovery) refused the request. The
    /// `code` string is [`RejectReason::code`]; `rules` carries the NPC
    /// findings of an `INVALID_STREAM` refusal.
    Rejected {
        /// Request ID.
        request: u64,
        /// Stable refusal-class code.
        code: String,
        /// NPC findings with byte offsets, for `INVALID_STREAM`.
        rules: Vec<RuleHit>,
    },
    /// The `DmaArbiter` granted the request a DMA window and a board.
    /// The inputs (`arrival_us`, `transfer_us`, `latency_us`) and the
    /// schedule outputs are both recorded so replay can re-derive the
    /// outputs from the inputs and fail on any divergence.
    Granted {
        /// Request ID.
        request: u64,
        /// Board the grant landed on.
        board: u64,
        /// Arrival time presented to the arbiter.
        arrival_us: f64,
        /// Requested DMA transfer duration.
        transfer_us: f64,
        /// Requested end-to-end service latency.
        latency_us: f64,
        /// Scheduled DMA start.
        start_us: f64,
        /// Scheduled DMA bus release.
        transfer_end_us: f64,
        /// Scheduled board completion.
        complete_us: f64,
    },
    /// A failed attempt is being retried.
    Retried {
        /// Request ID.
        request: u64,
        /// 1-based attempt number that failed.
        attempt: u64,
    },
    /// The request completed and its response was delivered.
    Completed {
        /// Request ID.
        request: u64,
        /// End-to-end virtual latency.
        latency_us: f64,
    },
    /// The request failed terminally (post-admission error or timeout).
    Failed {
        /// Request ID.
        request: u64,
        /// Display form of the terminal error.
        error: String,
    },
    /// A worker panicked while serving the request. Not terminal: a
    /// `Requeued` or `Rejected` event for the same request follows.
    WorkerCrash {
        /// Worker index that died.
        worker: u64,
        /// Request it was serving.
        request: u64,
    },
    /// Crash recovery put the request back on the admission queue.
    Requeued {
        /// Request ID.
        request: u64,
        /// Worker deaths this request has survived so far.
        crashes: u64,
    },
    /// One simulator tracer line forwarded by the driver.
    Sim {
        /// Simulator cycle.
        cycle: u64,
        /// Component scope.
        scope: String,
        /// Event message.
        message: String,
    },
    /// One datapath probe sample forwarded by the driver.
    Probe {
        /// Hardware layer index.
        layer: u64,
        /// Neuron index within the layer.
        neuron: u64,
        /// Datapath stage.
        stage: StageCode,
        /// Observed raw value.
        value: i64,
    },
}

impl TraceEvent {
    /// Builds a [`TraceEvent::Rejected`] from the unified
    /// [`RejectReason`], carrying its class code and NPC findings.
    pub fn rejected(request: u64, reason: &RejectReason) -> TraceEvent {
        let rules = reason
            .rules()
            .into_iter()
            .map(|(rule, offset)| RuleHit {
                rule: rule.id().to_string(),
                byte_offset: offset.map(netpu_arith::cast::u64_from_usize),
            })
            .collect();
        TraceEvent::Rejected {
            request,
            code: reason.code().to_string(),
            rules,
        }
    }

    /// Builds a [`TraceEvent::Probe`] from a simulator probe sample.
    pub fn probe(sample: &ProbeSample) -> TraceEvent {
        TraceEvent::Probe {
            layer: netpu_arith::cast::u64_from_usize(sample.layer),
            neuron: netpu_arith::cast::u64_from_usize(sample.neuron),
            stage: StageCode::from(sample.stage),
            value: sample.value,
        }
    }

    /// The request ID the event concerns, when it concerns one.
    pub fn request(&self) -> Option<u64> {
        match self {
            TraceEvent::Submitted { request, .. }
            | TraceEvent::Admitted { request, .. }
            | TraceEvent::Rejected { request, .. }
            | TraceEvent::Granted { request, .. }
            | TraceEvent::Retried { request, .. }
            | TraceEvent::Completed { request, .. }
            | TraceEvent::Failed { request, .. }
            | TraceEvent::WorkerCrash { request, .. }
            | TraceEvent::Requeued { request, .. } => Some(*request),
            TraceEvent::Meta { .. } | TraceEvent::Sim { .. } | TraceEvent::Probe { .. } => None,
        }
    }
}

/// One sequenced, timestamped observation in a trace.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceRecord {
    /// Monotone sequence number assigned by the sink, starting at 0.
    pub seq: u64,
    /// Virtual timestamp in microseconds.
    pub t_us: f64,
    /// The observation.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_check::{Report, RuleId, Severity};

    #[test]
    fn stage_codes_roundtrip() {
        for stage in [
            StageCode::Accumulator,
            StageCode::PostBn,
            StageCode::Level,
            StageCode::Score,
        ] {
            assert_eq!(StageCode::from_byte(stage.to_byte()), Some(stage));
        }
        assert_eq!(StageCode::from_byte(9), None);
    }

    #[test]
    fn rejected_event_carries_rule_ids_and_offsets() {
        let mut report = Report::default();
        report.push(
            RuleId::Npc005,
            Severity::Error,
            Some(24),
            None,
            "short".into(),
        );
        let reason = RejectReason::Invalid { report };
        let ev = TraceEvent::rejected(7, &reason);
        let TraceEvent::Rejected {
            request,
            code,
            rules,
        } = ev
        else {
            panic!("wrong variant");
        };
        assert_eq!(request, 7);
        assert_eq!(code, "INVALID_STREAM");
        assert_eq!(
            rules,
            vec![RuleHit {
                rule: "NPC005".into(),
                byte_offset: Some(24)
            }]
        );
    }

    #[test]
    fn probe_event_preserves_sample_fields() {
        let sample = ProbeSample {
            layer: 2,
            neuron: 5,
            stage: ProbeStage::Score,
            value: -64,
        };
        assert_eq!(
            TraceEvent::probe(&sample),
            TraceEvent::Probe {
                layer: 2,
                neuron: 5,
                stage: StageCode::Score,
                value: -64
            }
        );
    }

    #[test]
    fn request_accessor_distinguishes_scoped_events() {
        let scoped = TraceEvent::Completed {
            request: 3,
            latency_us: 1.0,
        };
        let global = TraceEvent::Meta {
            key: "k".into(),
            value: "v".into(),
        };
        assert_eq!(scoped.request(), Some(3));
        assert_eq!(global.request(), None);
    }
}
