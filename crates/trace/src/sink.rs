//! The [`TraceSink`] trait — the one tracing surface of the stack.
//!
//! Everything that observes the system (the driver's simulator
//! tracer and datapath probe, the serving layers' scheduling events,
//! the fleet's dispatch decisions) reports through this trait. A sink
//! receives `(t_us, event)` pairs and assigns the monotone sequence
//! numbers itself, so ordering is decided at the recording point even
//! when multiple worker threads share one sink.
//!
//! Two implementations ship here: [`MemorySink`] (a thread-safe
//! in-memory recorder whose contents serialize to the canonical wire
//! format) and [`NullSink`] (discards everything — the default a
//! driver runs with when nobody is watching).

use crate::codec::encode_records;
use crate::record::{TraceEvent, TraceRecord};
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// A destination for trace events.
///
/// Implementations must be `Send + Sync`: the serving layers call
/// `record` from worker threads concurrently, including from unwinding
/// workers during crash recovery — so implementations must also be
/// poison-tolerant (never propagate a `Mutex` poison into a panic).
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event at a virtual timestamp (microseconds).
    fn record(&self, t_us: f64, event: TraceEvent);
}

/// A sink that discards every event.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _t_us: f64, _event: TraceEvent) {}
}

/// A thread-safe in-memory recorder.
#[derive(Default, Debug)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySink {
    /// An empty recorder.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of the records so far, in sequence order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.lock().clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Serializes the records so far to the canonical wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_records(&self.lock())
    }

    /// Drains the recorder, returning the records in sequence order.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceRecord>> {
        // A worker that panicked mid-record poisons the mutex; the
        // vector itself is always valid (push is not interruptible at
        // a point that breaks its invariants for readers).
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl TraceSink for MemorySink {
    fn record(&self, t_us: f64, event: TraceEvent) {
        let mut records = self.lock();
        let seq = netpu_arith::cast::u64_from_usize(records.len());
        records.push(TraceRecord { seq, t_us, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_records;
    use std::sync::Arc;

    #[test]
    fn memory_sink_assigns_contiguous_seq() {
        let sink = MemorySink::new();
        sink.record(
            1.0,
            TraceEvent::Meta {
                key: "a".into(),
                value: "1".into(),
            },
        );
        sink.record(
            2.0,
            TraceEvent::Meta {
                key: "b".into(),
                value: "2".into(),
            },
        );
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn memory_sink_bytes_decode_back() {
        let sink = MemorySink::new();
        sink.record(
            0.5,
            TraceEvent::Submitted {
                request: 1,
                tenant: 0,
                model: 0,
            },
        );
        let bytes = sink.to_bytes();
        let decoded = decode_records(&bytes).expect("decode");
        assert_eq!(decoded, sink.records());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let sink = Arc::new(MemorySink::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        sink.record(
                            0.0,
                            TraceEvent::Submitted {
                                request: t * 1000 + i,
                                tenant: t,
                                model: 0,
                            },
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        let records = sink.records();
        assert_eq!(records.len(), 400);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.seq, netpu_arith::cast::u64_from_usize(i));
        }
    }

    #[test]
    fn take_drains_and_resets_sequencing() {
        let sink = MemorySink::new();
        sink.record(
            0.0,
            TraceEvent::Meta {
                key: "k".into(),
                value: "v".into(),
            },
        );
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
        sink.record(
            0.0,
            TraceEvent::Meta {
                key: "k2".into(),
                value: "v2".into(),
            },
        );
        assert_eq!(sink.records()[0].seq, 0);
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(
            0.0,
            TraceEvent::Meta {
                key: "k".into(),
                value: "v".into(),
            },
        );
    }
}
