#![deny(missing_docs)]
//! Compact binary trace/replay format for the NetPU-M stack.
//!
//! ROADMAP item 5's replayability half: any anomaly observed in a
//! serving run — a crash, a misscheduled DMA window, a rejected
//! stream — should replay as a deterministic test case from a small
//! binary artifact. Three pieces (DESIGN.md §4.7):
//!
//! * [`record`] — the event vocabulary: request lifecycle events from
//!   the serving layers (`Submitted` → `Admitted`/`Rejected` →
//!   `Granted`/`Retried`/`WorkerCrash`/`Requeued` →
//!   `Completed`/`Failed`), simulator tracer lines and datapath-probe
//!   samples forwarded by the driver, all stamped with **virtual**
//!   `DmaArbiter` timestamps.
//! * [`codec`] — the canonical wire format (`"NPTB"` magic, tag bytes,
//!   minimal LEB128, bit-exact floats): decode∘encode is the identity
//!   on every accepted input, so "replays byte-identically" is a real
//!   equality.
//! * [`sink`] / [`replay`] — the [`TraceSink`] trait every layer
//!   records through (the driver, `netpu-serve`, `netpu-fleet`), and
//!   [`replay::verify`], which re-derives the arbiter schedule and the
//!   exactly-once request lifecycle from the records alone.
//!
//! `cargo run -p xtask -- replay <file>` runs the same verification
//! over a trace file from the command line.
//!
//! ```
//! use netpu_trace::{MemorySink, TraceEvent, TraceReader, TraceSink};
//!
//! let sink = MemorySink::new();
//! sink.record(0.0, TraceEvent::Submitted { request: 1, tenant: 0, model: 0 });
//! sink.record(0.0, TraceEvent::Admitted { request: 1, range_flagged: false });
//! sink.record(25.0, TraceEvent::Completed { request: 1, latency_us: 25.0 });
//!
//! let bytes = sink.to_bytes();
//! let reader = TraceReader::decode(&bytes).unwrap();
//! assert_eq!(reader.to_bytes(), bytes); // canonical round trip
//! let summary = netpu_trace::replay::verify(reader.records()).unwrap();
//! assert_eq!(summary.completed, 1);
//! ```

pub mod codec;
pub mod record;
pub mod replay;
pub mod sink;

pub use codec::{decode_records, encode_records, CodecError, TraceReader, MAGIC, VERSION};
pub use record::{RuleHit, StageCode, TraceEvent, TraceRecord};
pub use replay::{verify, ReplayError, ReplaySummary};
pub use sink::{MemorySink, NullSink, TraceSink};
