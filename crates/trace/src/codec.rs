//! The canonical binary wire format.
//!
//! Design constraints, in order: **(1) canonical** — for any byte
//! string the decoder accepts, re-encoding the decoded records
//! reproduces the input byte-for-byte, so "this anomaly trace replays
//! byte-identically" is a meaningful equality, not a fuzzy diff;
//! **(2) compact** — varints for counters and IDs, single tag bytes
//! per event; **(3) self-checking** — a magic header, explicit
//! version, and structured [`CodecError`]s with byte offsets.
//!
//! Layout:
//!
//! ```text
//! file    := magic version record*
//! magic   := "NPTB" (4 bytes)          version := 0x01
//! record  := tag:u8 seq:uv t_us:f64 payload(tag)
//! uv      := canonical LEB128 (minimal length enforced on decode)
//! iv      := zigzag(i64) as uv
//! f64     := IEEE-754 bits, 8 bytes little-endian (bit-exact)
//! str     := len:uv utf8-bytes
//! opt_uv  := 0x00 | 0x01 uv
//! bool    := 0x00 | 0x01
//! ```
//!
//! Canonicality notes: LEB128 decoding rejects non-minimal encodings
//! (a continuation chain ending in a zero byte) and overlong chains;
//! floats travel as raw bit patterns so `NaN` payloads and `-0.0`
//! survive; booleans and option flags reject bytes other than 0/1.

use crate::record::{RuleHit, StageCode, TraceEvent, TraceRecord};
use netpu_arith::cast;
use std::fmt;

/// File magic: "NPTB" (NetPU Trace Binary).
pub const MAGIC: [u8; 4] = *b"NPTB";
/// Current format version.
pub const VERSION: u8 = 1;

const TAG_META: u8 = 0;
const TAG_SUBMITTED: u8 = 1;
const TAG_ADMITTED: u8 = 2;
const TAG_REJECTED: u8 = 3;
const TAG_GRANTED: u8 = 4;
const TAG_RETRIED: u8 = 5;
const TAG_COMPLETED: u8 = 6;
const TAG_FAILED: u8 = 7;
const TAG_WORKER_CRASH: u8 = 8;
const TAG_REQUEUED: u8 = 9;
const TAG_SIM: u8 = 10;
const TAG_PROBE: u8 = 11;

/// A structured decode failure, carrying the byte offset it fired at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The file does not start with [`MAGIC`] + [`VERSION`].
    BadHeader,
    /// The input ended mid-record.
    Truncated {
        /// Offset at which more bytes were needed.
        offset: usize,
    },
    /// An unknown event tag byte.
    BadTag {
        /// The offending tag.
        tag: u8,
        /// Offset of the tag byte.
        offset: usize,
    },
    /// A varint was overlong or non-minimal (non-canonical input).
    BadVarint {
        /// Offset of the varint's first byte.
        offset: usize,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8 {
        /// Offset of the string's first byte.
        offset: usize,
    },
    /// A boolean or option flag byte was neither 0 nor 1.
    BadFlag {
        /// Offset of the flag byte.
        offset: usize,
    },
    /// A probe stage byte was out of range.
    BadStage {
        /// Offset of the stage byte.
        offset: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader => f.write_str("bad trace magic/version header"),
            CodecError::Truncated { offset } => {
                write!(f, "trace truncated at byte {offset}")
            }
            CodecError::BadTag { tag, offset } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            CodecError::BadVarint { offset } => {
                write!(f, "non-canonical varint at byte {offset}")
            }
            CodecError::BadUtf8 { offset } => {
                write!(f, "invalid UTF-8 string at byte {offset}")
            }
            CodecError::BadFlag { offset } => {
                write!(f, "invalid flag byte at byte {offset}")
            }
            CodecError::BadStage { offset } => {
                write!(f, "invalid probe stage byte at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = cast::lo8(v & 0x7F);
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_iv(out: &mut Vec<u8>, v: i64) {
    // Zigzag: interleave sign so small magnitudes stay short.
    let bits = u64::from_ne_bytes(v.to_ne_bytes());
    let sign = u64::from_ne_bytes((v >> 63).to_ne_bytes());
    put_uv(out, (bits << 1) ^ sign);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uv(out, cast::u64_from_usize(s.len()));
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn put_opt_uv(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_uv(out, v);
        }
        None => out.push(0),
    }
}

/// Serializes records into the canonical wire format.
pub fn encode_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + records.len() * 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    for rec in records {
        encode_record(&mut out, rec);
    }
    out
}

fn encode_record(out: &mut Vec<u8>, rec: &TraceRecord) {
    let tag = match &rec.event {
        TraceEvent::Meta { .. } => TAG_META,
        TraceEvent::Submitted { .. } => TAG_SUBMITTED,
        TraceEvent::Admitted { .. } => TAG_ADMITTED,
        TraceEvent::Rejected { .. } => TAG_REJECTED,
        TraceEvent::Granted { .. } => TAG_GRANTED,
        TraceEvent::Retried { .. } => TAG_RETRIED,
        TraceEvent::Completed { .. } => TAG_COMPLETED,
        TraceEvent::Failed { .. } => TAG_FAILED,
        TraceEvent::WorkerCrash { .. } => TAG_WORKER_CRASH,
        TraceEvent::Requeued { .. } => TAG_REQUEUED,
        TraceEvent::Sim { .. } => TAG_SIM,
        TraceEvent::Probe { .. } => TAG_PROBE,
    };
    out.push(tag);
    put_uv(out, rec.seq);
    put_f64(out, rec.t_us);
    match &rec.event {
        TraceEvent::Meta { key, value } => {
            put_str(out, key);
            put_str(out, value);
        }
        TraceEvent::Submitted {
            request,
            tenant,
            model,
        } => {
            put_uv(out, *request);
            put_uv(out, *tenant);
            put_uv(out, *model);
        }
        TraceEvent::Admitted {
            request,
            range_flagged,
        } => {
            put_uv(out, *request);
            put_bool(out, *range_flagged);
        }
        TraceEvent::Rejected {
            request,
            code,
            rules,
        } => {
            put_uv(out, *request);
            put_str(out, code);
            put_uv(out, cast::u64_from_usize(rules.len()));
            for hit in rules {
                put_str(out, &hit.rule);
                put_opt_uv(out, hit.byte_offset);
            }
        }
        TraceEvent::Granted {
            request,
            board,
            arrival_us,
            transfer_us,
            latency_us,
            start_us,
            transfer_end_us,
            complete_us,
        } => {
            put_uv(out, *request);
            put_uv(out, *board);
            put_f64(out, *arrival_us);
            put_f64(out, *transfer_us);
            put_f64(out, *latency_us);
            put_f64(out, *start_us);
            put_f64(out, *transfer_end_us);
            put_f64(out, *complete_us);
        }
        TraceEvent::Retried { request, attempt } => {
            put_uv(out, *request);
            put_uv(out, *attempt);
        }
        TraceEvent::Completed {
            request,
            latency_us,
        } => {
            put_uv(out, *request);
            put_f64(out, *latency_us);
        }
        TraceEvent::Failed { request, error } => {
            put_uv(out, *request);
            put_str(out, error);
        }
        TraceEvent::WorkerCrash { worker, request } => {
            put_uv(out, *worker);
            put_uv(out, *request);
        }
        TraceEvent::Requeued { request, crashes } => {
            put_uv(out, *request);
            put_uv(out, *crashes);
        }
        TraceEvent::Sim {
            cycle,
            scope,
            message,
        } => {
            put_uv(out, *cycle);
            put_str(out, scope);
            put_str(out, message);
        }
        TraceEvent::Probe {
            layer,
            neuron,
            stage,
            value,
        } => {
            put_uv(out, *layer);
            put_uv(out, *neuron);
            out.push(stage.to_byte());
            put_iv(out, *value);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(CodecError::Truncated { offset: self.pos });
        };
        self.pos += 1;
        Ok(b)
    }

    fn uv(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        loop {
            let byte = self
                .u8()
                .map_err(|_| CodecError::Truncated { offset: start })?;
            let payload = u64::from(byte & 0x7F);
            // Canonical LEB128: reject chains longer than 10 bytes,
            // high bits that overflow u64, and non-minimal encodings
            // (a multi-byte chain whose final byte is zero).
            if shift == 63 && payload > 1 {
                return Err(CodecError::BadVarint { offset: start });
            }
            if shift > 63 {
                return Err(CodecError::BadVarint { offset: start });
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift > 0 {
                    return Err(CodecError::BadVarint { offset: start });
                }
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn iv(&mut self) -> Result<i64, CodecError> {
        let z = self.uv()?;
        // Un-zigzag: (z >> 1) ^ -(z & 1), computed in unsigned bits.
        let neg = 0u64.wrapping_sub(z & 1);
        Ok(i64::from_ne_bytes(((z >> 1) ^ neg).to_ne_bytes()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        let start = self.pos;
        let Some(chunk) = self.bytes.get(self.pos..self.pos + 8) else {
            return Err(CodecError::Truncated { offset: start });
        };
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let start = self.pos;
        let len = self.uv()?;
        let len = usize::try_from(len).map_err(|_| CodecError::BadVarint { offset: start })?;
        let Some(raw) = self.bytes.get(self.pos..self.pos.saturating_add(len)) else {
            return Err(CodecError::Truncated { offset: self.pos });
        };
        let s = std::str::from_utf8(raw)
            .map_err(|_| CodecError::BadUtf8 { offset: self.pos })?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::BadFlag { offset }),
        }
    }

    fn opt_uv(&mut self) -> Result<Option<u64>, CodecError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.uv()?)),
            _ => Err(CodecError::BadFlag { offset }),
        }
    }
}

/// Decodes a canonical trace file into records.
pub fn decode_records(bytes: &[u8]) -> Result<Vec<TraceRecord>, CodecError> {
    let Some(header) = bytes.get(..5) else {
        return Err(CodecError::BadHeader);
    };
    if header[..4] != MAGIC || header[4] != VERSION {
        return Err(CodecError::BadHeader);
    }
    let mut cur = Cursor { bytes, pos: 5 };
    let mut records = Vec::new();
    while cur.pos < bytes.len() {
        records.push(decode_record(&mut cur)?);
    }
    Ok(records)
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<TraceRecord, CodecError> {
    let tag_offset = cur.pos;
    let tag = cur.u8()?;
    if tag > TAG_PROBE {
        return Err(CodecError::BadTag {
            tag,
            offset: tag_offset,
        });
    }
    let seq = cur.uv()?;
    let t_us = cur.f64()?;
    let event = match tag {
        TAG_META => TraceEvent::Meta {
            key: cur.str()?,
            value: cur.str()?,
        },
        TAG_SUBMITTED => TraceEvent::Submitted {
            request: cur.uv()?,
            tenant: cur.uv()?,
            model: cur.uv()?,
        },
        TAG_ADMITTED => TraceEvent::Admitted {
            request: cur.uv()?,
            range_flagged: cur.bool()?,
        },
        TAG_REJECTED => {
            let request = cur.uv()?;
            let code = cur.str()?;
            let count = cur.uv()?;
            let count =
                usize::try_from(count).map_err(|_| CodecError::BadVarint { offset: tag_offset })?;
            let mut rules = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                rules.push(RuleHit {
                    rule: cur.str()?,
                    byte_offset: cur.opt_uv()?,
                });
            }
            TraceEvent::Rejected {
                request,
                code,
                rules,
            }
        }
        TAG_GRANTED => TraceEvent::Granted {
            request: cur.uv()?,
            board: cur.uv()?,
            arrival_us: cur.f64()?,
            transfer_us: cur.f64()?,
            latency_us: cur.f64()?,
            start_us: cur.f64()?,
            transfer_end_us: cur.f64()?,
            complete_us: cur.f64()?,
        },
        TAG_RETRIED => TraceEvent::Retried {
            request: cur.uv()?,
            attempt: cur.uv()?,
        },
        TAG_COMPLETED => TraceEvent::Completed {
            request: cur.uv()?,
            latency_us: cur.f64()?,
        },
        TAG_FAILED => TraceEvent::Failed {
            request: cur.uv()?,
            error: cur.str()?,
        },
        TAG_WORKER_CRASH => TraceEvent::WorkerCrash {
            worker: cur.uv()?,
            request: cur.uv()?,
        },
        TAG_REQUEUED => TraceEvent::Requeued {
            request: cur.uv()?,
            crashes: cur.uv()?,
        },
        TAG_SIM => TraceEvent::Sim {
            cycle: cur.uv()?,
            scope: cur.str()?,
            message: cur.str()?,
        },
        TAG_PROBE => {
            let layer = cur.uv()?;
            let neuron = cur.uv()?;
            let stage_offset = cur.pos;
            let stage = StageCode::from_byte(cur.u8()?).ok_or(CodecError::BadStage {
                offset: stage_offset,
            })?;
            TraceEvent::Probe {
                layer,
                neuron,
                stage,
                value: cur.iv()?,
            }
        }
        other => {
            return Err(CodecError::BadTag {
                tag: other,
                offset: tag_offset,
            })
        }
    };
    Ok(TraceRecord { seq, t_us, event })
}

/// A decoded trace, retaining the records for inspection and replay.
///
/// `TraceReader` is the read half of the format: [`decode`] parses and
/// validates the canonical encoding, [`to_bytes`] re-serializes — and
/// the two compose to the identity on any accepted input, which is the
/// property the replay pipeline and its tests pin.
///
/// [`decode`]: TraceReader::decode
/// [`to_bytes`]: TraceReader::to_bytes
#[derive(Clone, PartialEq, Debug)]
pub struct TraceReader {
    records: Vec<TraceRecord>,
}

impl TraceReader {
    /// Parses a canonical trace file.
    pub fn decode(bytes: &[u8]) -> Result<TraceReader, CodecError> {
        Ok(TraceReader {
            records: decode_records(bytes)?,
        })
    }

    /// Wraps already-decoded records (e.g. straight from a sink).
    pub fn from_records(records: Vec<TraceRecord>) -> TraceReader {
        TraceReader { records }
    }

    /// The decoded records in sequence order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the reader, returning the records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Re-encodes to the canonical wire format. For any input
    /// [`decode`](TraceReader::decode) accepted, this reproduces it
    /// byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_records(&self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        let events = vec![
            TraceEvent::Meta {
                key: "run".into(),
                value: "unit".into(),
            },
            TraceEvent::Submitted {
                request: 1,
                tenant: 300,
                model: u64::MAX,
            },
            TraceEvent::Admitted {
                request: 1,
                range_flagged: true,
            },
            TraceEvent::Rejected {
                request: 2,
                code: "INVALID_STREAM".into(),
                rules: vec![
                    RuleHit {
                        rule: "NPC001".into(),
                        byte_offset: Some(0),
                    },
                    RuleHit {
                        rule: "NPC014".into(),
                        byte_offset: None,
                    },
                ],
            },
            TraceEvent::Granted {
                request: 1,
                board: 3,
                arrival_us: 0.0,
                transfer_us: 12.5,
                latency_us: 40.0,
                start_us: 0.0,
                transfer_end_us: 12.5,
                complete_us: 40.0,
            },
            TraceEvent::Retried {
                request: 1,
                attempt: 2,
            },
            TraceEvent::Completed {
                request: 1,
                latency_us: 40.0,
            },
            TraceEvent::Failed {
                request: 3,
                error: "timeout".into(),
            },
            TraceEvent::WorkerCrash {
                worker: 0,
                request: 4,
            },
            TraceEvent::Requeued {
                request: 4,
                crashes: 1,
            },
            TraceEvent::Sim {
                cycle: 128,
                scope: "dma".into(),
                message: "burst start".into(),
            },
            TraceEvent::Probe {
                layer: 1,
                neuron: 9,
                stage: StageCode::PostBn,
                value: i64::MIN,
            },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                seq: netpu_arith::cast::u64_from_usize(i),
                t_us: netpu_arith::cast::f64_from_usize(i) * 1.5,
                event,
            })
            .collect()
    }

    #[test]
    fn every_variant_roundtrips() {
        let records = sample_records();
        let bytes = encode_records(&records);
        let decoded = decode_records(&bytes).expect("decode");
        assert_eq!(decoded, records);
    }

    #[test]
    fn decode_then_encode_is_byte_identity() {
        let bytes = encode_records(&sample_records());
        let reader = TraceReader::decode(&bytes).expect("decode");
        assert_eq!(reader.to_bytes(), bytes);
        assert_eq!(reader.len(), 12);
        assert!(!reader.is_empty());
    }

    #[test]
    fn extreme_scalars_roundtrip() {
        let records = vec![TraceRecord {
            seq: u64::MAX,
            t_us: f64::NEG_INFINITY,
            event: TraceEvent::Probe {
                layer: u64::MAX,
                neuron: 0,
                stage: StageCode::Score,
                value: i64::MAX,
            },
        }];
        let bytes = encode_records(&records);
        assert_eq!(decode_records(&bytes).expect("decode"), records);
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let records = vec![TraceRecord {
            seq: 0,
            t_us: -0.0,
            event: TraceEvent::Completed {
                request: 0,
                latency_us: f64::from_bits(0x7FF8_0000_0000_1234),
            },
        }];
        let bytes = encode_records(&records);
        let reader = TraceReader::decode(&bytes).expect("decode");
        assert_eq!(reader.to_bytes(), bytes);
        let TraceEvent::Completed { latency_us, .. } = reader.records()[0].event else {
            panic!("wrong variant");
        };
        assert_eq!(latency_us.to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(reader.records()[0].t_us.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn bad_header_and_bad_tag_are_rejected() {
        assert_eq!(decode_records(b"NOPE"), Err(CodecError::BadHeader));
        assert_eq!(decode_records(b"NPTB\x02"), Err(CodecError::BadHeader));
        let mut bytes = encode_records(&[]);
        bytes.push(0xFE);
        assert_eq!(
            decode_records(&bytes),
            Err(CodecError::BadTag {
                tag: 0xFE,
                offset: 5
            })
        );
    }

    #[test]
    fn truncation_reports_offset() {
        let bytes = encode_records(&sample_records());
        for cut in [6, bytes.len() - 1] {
            let err = decode_records(&bytes[..cut]).expect_err("truncated");
            assert!(matches!(err, CodecError::Truncated { .. }), "{err:?}");
        }
    }

    #[test]
    fn non_minimal_varints_are_rejected() {
        // seq encoded as 0x80 0x00: a two-byte encoding of zero.
        let mut bytes = encode_records(&[]);
        bytes.push(TAG_SUBMITTED);
        bytes.extend_from_slice(&[0x80, 0x00]);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            decode_records(&bytes),
            Err(CodecError::BadVarint { offset: 6 })
        );
    }

    #[test]
    fn overlong_varints_are_rejected() {
        let mut bytes = encode_records(&[]);
        bytes.push(TAG_SUBMITTED);
        // 11 continuation bytes cannot fit a u64.
        bytes.extend_from_slice(&[0xFF; 10]);
        bytes.push(0x7F);
        assert!(matches!(
            decode_records(&bytes),
            Err(CodecError::BadVarint { .. })
        ));
    }

    #[test]
    fn bad_flag_and_bad_stage_are_rejected() {
        let ok = encode_records(&[TraceRecord {
            seq: 0,
            t_us: 0.0,
            event: TraceEvent::Admitted {
                request: 1,
                range_flagged: false,
            },
        }]);
        let mut bad = ok.clone();
        let last = bad.len() - 1;
        bad[last] = 7;
        assert!(matches!(
            decode_records(&bad),
            Err(CodecError::BadFlag { .. })
        ));

        let ok = encode_records(&[TraceRecord {
            seq: 0,
            t_us: 0.0,
            event: TraceEvent::Probe {
                layer: 0,
                neuron: 0,
                stage: StageCode::Level,
                value: 0,
            },
        }]);
        let mut bad = ok.clone();
        let stage_at = bad.len() - 2;
        bad[stage_at] = 9;
        assert!(matches!(
            decode_records(&bad),
            Err(CodecError::BadStage { .. })
        ));
    }

    #[test]
    fn zigzag_covers_sign_range() {
        for v in [i64::MIN, -2, -1, 0, 1, 2, i64::MAX] {
            let records = vec![TraceRecord {
                seq: 0,
                t_us: 0.0,
                event: TraceEvent::Probe {
                    layer: 0,
                    neuron: 0,
                    stage: StageCode::Accumulator,
                    value: v,
                },
            }];
            let bytes = encode_records(&records);
            assert_eq!(decode_records(&bytes).expect("decode"), records);
        }
    }
}
