//! The Matrix-Vector-Threshold Unit (MVTU): FINN's layer engine.
//!
//! FINN (Umuroglu et al., FPGA'17) implements each FC layer as a
//! dedicated MVTU with `pe` processing elements × `simd` synapse lanes.
//! The layer's *folding factor* — cycles per frame — is
//! `ceil(neurons/pe) · ceil(synapses/simd)`; the instance's folding
//! choices trade resources against throughput (the `max` vs `fix`
//! instances of Table VI).

use serde::{Deserialize, Serialize};

/// One MVTU layer configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MvtuConfig {
    /// Layer output neurons.
    pub neurons: usize,
    /// Layer fan-in (synapses per neuron).
    pub synapses: usize,
    /// Processing elements (neuron parallelism).
    pub pe: usize,
    /// SIMD lanes per PE (synapse parallelism).
    pub simd: usize,
    /// Activation precision consumed (bits).
    pub act_bits: u8,
    /// Weight precision (bits).
    pub weight_bits: u8,
}

/// MVTU configuration errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MvtuError {
    /// PE count exceeds the neuron count (wasted hardware).
    TooManyPe,
    /// SIMD width exceeds the fan-in.
    TooManySimd,
    /// Zero-sized dimension.
    Zero,
}

impl std::fmt::Display for MvtuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvtuError::TooManyPe => f.write_str("pe exceeds neuron count"),
            MvtuError::TooManySimd => f.write_str("simd exceeds synapse count"),
            MvtuError::Zero => f.write_str("zero-sized MVTU dimension"),
        }
    }
}

impl std::error::Error for MvtuError {}

impl MvtuConfig {
    /// Validates the folding configuration.
    pub fn validate(&self) -> Result<(), MvtuError> {
        if self.neurons == 0 || self.synapses == 0 || self.pe == 0 || self.simd == 0 {
            return Err(MvtuError::Zero);
        }
        if self.pe > self.neurons {
            return Err(MvtuError::TooManyPe);
        }
        if self.simd > self.synapses {
            return Err(MvtuError::TooManySimd);
        }
        Ok(())
    }

    /// Neuron fold (`ceil(neurons/pe)`).
    pub fn neuron_fold(&self) -> u64 {
        self.neurons.div_ceil(self.pe) as u64
    }

    /// Synapse fold (`ceil(synapses/simd)`).
    pub fn synapse_fold(&self) -> u64 {
        self.synapses.div_ceil(self.simd) as u64
    }

    /// Total folding factor: cycles this MVTU needs per frame.
    pub fn fold(&self) -> u64 {
        self.neuron_fold() * self.synapse_fold()
    }

    /// Weight memory size in bits.
    pub fn weight_bits_total(&self) -> u64 {
        (self.neurons * self.synapses) as u64 * u64::from(self.weight_bits)
    }

    /// Weight memory read width per cycle in bits.
    pub fn weight_port_bits(&self) -> u64 {
        (self.pe * self.simd) as u64 * u64::from(self.weight_bits)
    }

    /// Weight memory depth (words of `weight_port_bits`).
    pub fn weight_depth(&self) -> u64 {
        self.fold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mvtu(neurons: usize, synapses: usize, pe: usize, simd: usize) -> MvtuConfig {
        MvtuConfig {
            neurons,
            synapses,
            pe,
            simd,
            act_bits: 1,
            weight_bits: 1,
        }
    }

    #[test]
    fn fold_matches_finn_formula() {
        // SFC hidden layer at PE=64, SIMD=64: (256/64)·(256/64) = 16.
        assert_eq!(mvtu(256, 256, 64, 64).fold(), 16);
        // Fully folded: one MAC at a time.
        assert_eq!(mvtu(256, 784, 1, 1).fold(), 256 * 784);
        // Fully unrolled: one cycle per frame.
        assert_eq!(mvtu(256, 784, 256, 784).fold(), 1);
    }

    #[test]
    fn fold_uses_ceiling_division() {
        // 10 neurons on 4 PEs → 3 folds; 7 synapses on 2 lanes → 4.
        assert_eq!(mvtu(10, 7, 4, 2).fold(), 12);
    }

    #[test]
    fn weight_memory_geometry() {
        let m = mvtu(256, 784, 64, 49);
        assert_eq!(m.weight_bits_total(), 256 * 784);
        assert_eq!(m.weight_port_bits(), 64 * 49);
        assert_eq!(m.weight_depth(), 4 * 16);
    }

    #[test]
    fn validation_catches_bad_folds() {
        assert_eq!(mvtu(4, 4, 8, 1).validate(), Err(MvtuError::TooManyPe));
        assert_eq!(mvtu(4, 4, 1, 8).validate(), Err(MvtuError::TooManySimd));
        assert_eq!(mvtu(0, 4, 1, 1).validate(), Err(MvtuError::Zero));
        mvtu(256, 784, 64, 49).validate().unwrap();
    }
}
