#![deny(missing_docs)]
//! FINN-style Heterogeneous Streaming Dataflow (HSD) baseline.
//!
//! Table VI compares NetPU-M against four FINN instances (Umuroglu et
//! al., FPGA'17). This crate reproduces that baseline architecture:
//!
//! * [`mvtu`] — the Matrix-Vector-Threshold Unit and its PE/SIMD
//!   folding formula.
//! * [`pipeline`] — a cycle-level simulation of the per-layer streaming
//!   pipeline (single-frame latency = Σ folds; throughput = bottleneck
//!   fold).
//! * [`instances`] — the SFC/LFC `max`/`fix` instances of Table VI.
//! * [`resources`] — the LUT/BRAM model capturing the distributed-RAM
//!   vs block-RAM storage regimes.
//!
//! An HSD pipeline computes the same function as the reference model
//! (`netpu_nn::reference`); this crate models the *timing and resource*
//! side of the comparison.

pub mod instances;
pub mod mvtu;
pub mod pipeline;
pub mod resources;

pub use instances::FinnInstance;
pub use mvtu::{MvtuConfig, MvtuError};
pub use pipeline::{run_pipeline, Pipeline};
pub use resources::{instance_utilization, mvtu_utilization};
