//! The four FINN instances of Table VI.
//!
//! The paper compares against FINN's published SFC/LFC instances on a
//! Zynq-7000 at 200 MHz: `max` instances unfold aggressively for
//! throughput, `fix` instances fold heavily to save resources. FINN's
//! exact folding parameters are not given in the NetPU-M paper, so each
//! instance here carries a folding configuration chosen to land near the
//! published latency (Table VI: SFC-max 0.31 µs, LFC-max 2.44 µs,
//! SFC-fix 240 µs, LFC-fix 282 µs); the *architecture* — latency as the
//! sum of per-layer folds, throughput as the bottleneck fold — is the
//! real model under test.

use crate::mvtu::MvtuConfig;
use crate::pipeline::run_pipeline;
use netpu_nn::zoo::{ZooModel, ZOO_CLASSES, ZOO_INPUT_LEN};
use netpu_sim::fpga::{Platform, ZYNQ7000_ZC706};
use serde::{Deserialize, Serialize};

/// One FINN accelerator instance: a per-model streaming pipeline.
///
/// ```
/// use netpu_finn::FinnInstance;
/// let inst = FinnInstance::sfc_max();
/// // Table VI: SFC-max ≈ 0.31 µs per frame at 200 MHz.
/// assert!((0.2..0.45).contains(&inst.latency_us()));
/// // Pipelining: throughput beats 1/latency.
/// assert!(inst.throughput_fps() > 1e6 / inst.latency_us());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FinnInstance {
    /// Instance name as Table VI lists it.
    pub name: &'static str,
    /// The model this HSD design was generated for.
    pub model: ZooModel,
    /// Per-layer MVTU configurations (input → output order).
    pub layers: Vec<MvtuConfig>,
    /// Clock frequency (MHz).
    pub clock_mhz: f64,
    /// Target platform.
    pub platform: Platform,
}

fn layers_for(model: ZooModel, pe_simd: &[(usize, usize); 4]) -> Vec<MvtuConfig> {
    let h = model.hidden_width();
    let dims = [(h, ZOO_INPUT_LEN), (h, h), (h, h), (ZOO_CLASSES, h)];
    dims.iter()
        .zip(pe_simd)
        .map(|(&(neurons, synapses), &(pe, simd))| MvtuConfig {
            neurons,
            synapses,
            pe,
            simd,
            act_bits: model.act_bits(),
            weight_bits: model.weight_bits(),
        })
        .collect()
}

impl FinnInstance {
    /// SFC-max: throughput-optimised SFC-w1a1 (~16-cycle folds).
    pub fn sfc_max() -> FinnInstance {
        FinnInstance {
            name: "SFC-max",
            model: ZooModel::SfcW1A1,
            layers: layers_for(
                ZooModel::SfcW1A1,
                &[(64, 196), (64, 64), (64, 64), (10, 64)],
            ),
            clock_mhz: 200.0,
            platform: ZYNQ7000_ZC706,
        }
    }

    /// LFC-max: throughput-optimised LFC-w1a1.
    pub fn lfc_max() -> FinnInstance {
        FinnInstance {
            name: "LFC-max",
            model: ZooModel::LfcW1A1,
            layers: layers_for(
                ZooModel::LfcW1A1,
                &[(128, 49), (128, 64), (128, 64), (10, 128)],
            ),
            clock_mhz: 200.0,
            platform: ZYNQ7000_ZC706,
        }
    }

    /// SFC-fix: resource-minimised SFC-w1a1.
    pub fn sfc_fix() -> FinnInstance {
        FinnInstance {
            name: "SFC-fix",
            model: ZooModel::SfcW1A1,
            layers: layers_for(ZooModel::SfcW1A1, &[(2, 4), (2, 4), (2, 4), (2, 4)]),
            clock_mhz: 200.0,
            platform: ZYNQ7000_ZC706,
        }
    }

    /// LFC-fix: resource-minimised LFC-w1a1.
    pub fn lfc_fix() -> FinnInstance {
        FinnInstance {
            name: "LFC-fix",
            model: ZooModel::LfcW1A1,
            layers: layers_for(ZooModel::LfcW1A1, &[(8, 7), (8, 8), (8, 8), (8, 8)]),
            clock_mhz: 200.0,
            platform: ZYNQ7000_ZC706,
        }
    }

    /// The four Table VI instances.
    pub fn table6() -> Vec<FinnInstance> {
        vec![
            FinnInstance::sfc_max(),
            FinnInstance::lfc_max(),
            FinnInstance::sfc_fix(),
            FinnInstance::lfc_fix(),
        ]
    }

    /// Validates every layer's folding configuration.
    pub fn validate(&self) -> Result<(), crate::mvtu::MvtuError> {
        for l in &self.layers {
            l.validate()?;
        }
        Ok(())
    }

    /// Single-frame latency in cycles (simulated).
    pub fn latency_cycles(&self) -> u64 {
        run_pipeline(&self.layers, 1).0
    }

    /// Single-frame latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        netpu_sim::cycles_to_us(self.latency_cycles(), self.clock_mhz)
    }

    /// Steady-state throughput in frames per second (simulated over a
    /// window of frames).
    pub fn throughput_fps(&self) -> f64 {
        let frames = 64;
        let (_, total) = run_pipeline(&self.layers, frames);
        frames as f64 / (total as f64 / (self.clock_mhz * 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_instances_validate() {
        for inst in FinnInstance::table6() {
            inst.validate().unwrap();
            assert_eq!(inst.layers.len(), 4);
        }
    }

    /// Published Table VI latencies: SFC-max 0.31 µs, LFC-max 2.44 µs,
    /// SFC-fix 240 µs, LFC-fix 282 µs. Our folding reconstruction lands
    /// within ~35%.
    #[test]
    fn latencies_near_published_values() {
        let targets = [
            ("SFC-max", 0.31),
            ("LFC-max", 2.44),
            ("SFC-fix", 240.0),
            ("LFC-fix", 282.0),
        ];
        for (inst, (name, target)) in FinnInstance::table6().iter().zip(targets) {
            assert_eq!(inst.name, name);
            let got = inst.latency_us();
            let ratio = got / target;
            assert!(
                (0.65..=1.4).contains(&ratio),
                "{name}: {got:.2} µs vs published {target} µs"
            );
        }
    }

    /// The max/fix split spans ~2-3 orders of magnitude in latency.
    #[test]
    fn max_vs_fix_latency_gap() {
        let sfc_gap = FinnInstance::sfc_fix().latency_us() / FinnInstance::sfc_max().latency_us();
        assert!(sfc_gap > 300.0, "SFC max→fix gap only {sfc_gap}");
        let lfc_gap = FinnInstance::lfc_fix().latency_us() / FinnInstance::lfc_max().latency_us();
        assert!(lfc_gap > 50.0, "LFC max→fix gap only {lfc_gap}");
    }

    /// Throughput beats 1/latency thanks to pipelining.
    #[test]
    fn pipelining_raises_throughput_above_inverse_latency() {
        let inst = FinnInstance::sfc_max();
        let fps = inst.throughput_fps();
        let inverse = 1e6 / inst.latency_us();
        assert!(fps > 1.5 * inverse, "fps {fps} vs 1/latency {inverse}");
    }
}
