//! Resource model for FINN instances, calibrated to Table VI.
//!
//! Anchors (Zynq-7000): SFC-max 91,131 LUT / 4.5 BRAM; LFC-max 82,988
//! LUT / 396 BRAM; SFC-fix 5,155 LUT / 16 BRAM; LFC-fix 5,636 LUT /
//! 114.5 BRAM. The model captures the two storage regimes that explain
//! these numbers: shallow weight memories (fold ≤ 64) synthesize into
//! LUT-based distributed RAM (SFC-max: huge LUTs, almost no BRAM), deep
//! ones into block RAM whose count is width-bound at high parallelism
//! (LFC-max: 396 BRAM from the 8,192-bit read ports).

use crate::instances::FinnInstance;
use crate::mvtu::MvtuConfig;
use netpu_sim::fpga::Utilization;

/// LUTs per XNOR-popcount MAC bit (PE×SIMD product).
const LUT_PER_MAC: f64 = 3.6;
/// LUT-based distributed RAM packs 64 bits per LUT.
const LUTRAM_BITS_PER_LUT: f64 = 64.0;
/// Maximum weight-memory depth synthesized as distributed RAM.
const DISTRIBUTED_DEPTH_LIMIT: u64 = 64;
/// Base control/threshold LUTs per MVTU stage.
const LUT_STAGE_BASE: u64 = 1_100;
/// FFs per PE (accumulator + threshold registers).
const FF_PER_PE: u64 = 40;
/// Stream FIFO BRAM between stages (RAMB18 each).
const BRAM_STAGE_FIFO: f64 = 0.5;
/// RAMB36 capacity in bits.
const BRAM36_BITS: f64 = 36.0 * 1024.0;
/// RAMB36 maximum simple-dual-port width in bits.
const BRAM36_WIDTH: f64 = 72.0;

/// Resource cost of one MVTU stage.
pub fn mvtu_utilization(m: &MvtuConfig) -> Utilization {
    let macs = (m.pe * m.simd) as f64;
    let mut luts = LUT_STAGE_BASE + (macs * LUT_PER_MAC) as u64;
    let mut bram = BRAM_STAGE_FIFO;
    if m.weight_depth() <= DISTRIBUTED_DEPTH_LIMIT {
        // Shallow weight memory: distributed (LUT) RAM.
        luts += (m.weight_bits_total() as f64 / LUTRAM_BITS_PER_LUT).ceil() as u64;
    } else {
        // Deep weight memory: block RAM, the larger of the capacity
        // bound and the read-port width bound.
        let capacity = (m.weight_bits_total() as f64 / BRAM36_BITS).ceil();
        let width = (m.weight_port_bits() as f64 / BRAM36_WIDTH).ceil();
        bram += capacity.max(width);
    }
    Utilization {
        luts,
        dsps: 0, // binarized MACs never use DSP slices (Table VI: none)
        ffs: FF_PER_PE * m.pe as u64,
        bram36: bram,
    }
}

/// Resource cost of a whole FINN instance.
pub fn instance_utilization(inst: &FinnInstance) -> Utilization {
    inst.layers
        .iter()
        .map(mvtu_utilization)
        .fold(Utilization::default(), |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Table VI resources, reproduced within ~30%.
    #[test]
    fn resources_near_published_values() {
        let targets = [
            ("SFC-max", 91_131.0, 4.5),
            ("LFC-max", 82_988.0, 396.0),
            ("SFC-fix", 5_155.0, 16.0),
            ("LFC-fix", 5_636.0, 114.5),
        ];
        for (inst, (name, lut_t, bram_t)) in FinnInstance::table6().iter().zip(targets) {
            let u = instance_utilization(inst);
            let lut_ratio = u.luts as f64 / lut_t;
            assert!(
                (0.6..=1.45).contains(&lut_ratio),
                "{name}: {} LUTs vs published {lut_t}",
                u.luts
            );
            let bram_ratio = (u.bram36 + 1.0) / (bram_t + 1.0);
            assert!(
                (0.5..=1.6).contains(&bram_ratio),
                "{name}: {} BRAM vs published {bram_t}",
                u.bram36
            );
            assert_eq!(u.dsps, 0, "{name}: BNN MVTUs use no DSPs");
        }
    }

    /// The storage-regime story: max instances trade BRAM for LUTs on
    /// shallow memories (SFC) and explode BRAM on wide ports (LFC).
    #[test]
    fn storage_regimes() {
        let sfc_max = instance_utilization(&FinnInstance::sfc_max());
        let sfc_fix = instance_utilization(&FinnInstance::sfc_fix());
        assert!(sfc_max.luts > 10 * sfc_fix.luts);
        assert!(sfc_max.bram36 < sfc_fix.bram36);
        let lfc_max = instance_utilization(&FinnInstance::lfc_max());
        let lfc_fix = instance_utilization(&FinnInstance::lfc_fix());
        assert!(lfc_max.bram36 > 2.0 * lfc_fix.bram36);
    }

    /// Every instance fits its platform.
    #[test]
    fn instances_fit_zc706() {
        for inst in FinnInstance::table6() {
            let u = instance_utilization(&inst);
            assert!(u.fits(&inst.platform), "{} does not fit", inst.name);
        }
    }
}
