//! Cycle-level simulation of FINN's heterogeneous streaming pipeline.
//!
//! HSD architectures instantiate every layer as its own engine and
//! stream frames through the chain: while layer 2 processes frame i,
//! layer 1 already works on frame i+1. Single-frame latency is the sum
//! of the layer folds (plus handoff registers); steady-state throughput
//! is set by the slowest layer alone. Both behaviours fall out of this
//! token-level simulation.

use crate::mvtu::MvtuConfig;
use netpu_sim::engine::Tick;
use netpu_sim::{Clocked, Cycle, Fifo, Simulator};

/// Handoff FIFO depth between stages.
const STAGE_FIFO_DEPTH: usize = 2;

struct Stage {
    fold: u64,
    busy: u64,
    frame: Option<u64>,
    pending: Option<u64>,
}

/// A streaming pipeline of MVTU stages processing `frames` frames.
pub struct Pipeline {
    stages: Vec<Stage>,
    fifos: Vec<Fifo<u64>>,
    next_frame: u64,
    frames: u64,
    completed: Vec<(u64, Cycle)>,
}

impl Pipeline {
    /// Builds a pipeline from layer configurations.
    pub fn new(layers: &[MvtuConfig], frames: u64) -> Pipeline {
        assert!(!layers.is_empty() && frames > 0);
        Pipeline {
            stages: layers
                .iter()
                .map(|l| Stage {
                    fold: l.fold(),
                    busy: 0,
                    frame: None,
                    pending: None,
                })
                .collect(),
            fifos: (0..layers.len())
                .map(|_| Fifo::new("stage", 64, STAGE_FIFO_DEPTH))
                .collect(),
            next_frame: 0,
            frames,
            completed: Vec::new(),
        }
    }

    /// `(frame, completion cycle)` pairs in completion order.
    pub fn completed(&self) -> &[(u64, Cycle)] {
        &self.completed
    }

    /// Cycle at which the first frame completed, if any.
    pub fn first_frame_latency(&self) -> Option<Cycle> {
        self.completed.first().map(|&(_, c)| c + 1)
    }
}

impl Clocked for Pipeline {
    fn tick(&mut self, cycle: Cycle) -> Tick {
        if self.completed.len() as u64 == self.frames {
            return Tick::Done;
        }
        let mut progress = false;
        // Drain stages back-to-front so a frame can advance one stage
        // per cycle without same-cycle ripple-through.
        for i in (0..self.stages.len()).rev() {
            // Deliver a pending output.
            if let Some(f) = self.stages[i].pending {
                if i + 1 == self.stages.len() {
                    self.completed.push((f, cycle));
                    self.stages[i].pending = None;
                    progress = true;
                } else if self.fifos[i + 1].push(f) {
                    self.stages[i].pending = None;
                    progress = true;
                }
            }
            // Advance computation.
            if self.stages[i].busy > 0 {
                self.stages[i].busy -= 1;
                progress = true;
                if self.stages[i].busy == 0 {
                    self.stages[i].pending = self.stages[i].frame.take();
                }
            }
            // Accept a new frame.
            if self.stages[i].busy == 0
                && self.stages[i].frame.is_none()
                && self.stages[i].pending.is_none()
            {
                let next = if i == 0 {
                    if self.next_frame < self.frames {
                        let f = self.next_frame;
                        self.next_frame += 1;
                        Some(f)
                    } else {
                        None
                    }
                } else {
                    self.fifos[i].pop()
                };
                if let Some(f) = next {
                    self.stages[i].frame = Some(f);
                    self.stages[i].busy = self.stages[i].fold;
                    progress = true;
                }
            }
        }
        if progress {
            Tick::Progress
        } else {
            Tick::Stall
        }
    }
}

/// Runs `frames` frames through `layers`, returning
/// `(first-frame latency, total cycles)`.
pub fn run_pipeline(layers: &[MvtuConfig], frames: u64) -> (Cycle, Cycle) {
    let mut p = Pipeline::new(layers, frames);
    let total = Simulator::new()
        .run(&mut p)
        .expect("pipeline cannot deadlock");
    (p.first_frame_latency().expect("≥1 frame"), total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(fold_neurons: usize) -> MvtuConfig {
        // fold = fold_neurons with one synapse fold.
        MvtuConfig {
            neurons: fold_neurons,
            synapses: 1,
            pe: 1,
            simd: 1,
            act_bits: 1,
            weight_bits: 1,
        }
    }

    #[test]
    fn single_frame_latency_is_sum_of_folds_plus_handoffs() {
        let layers = [layer(5), layer(7), layer(3)];
        let (first, total) = run_pipeline(&layers, 1);
        // Σfold compute cycles plus three handoff cycles per stage
        // boundary (pending → FIFO → accept).
        assert_eq!(first, 5 + 7 + 3 + 3 * 2);
        // The simulator's final Done edge adds one cycle.
        assert_eq!(total, first + 1);
    }

    #[test]
    fn throughput_is_set_by_the_slowest_stage() {
        let layers = [layer(2), layer(10), layer(3)];
        let frames = 50u64;
        let (_, total) = run_pipeline(&layers, frames);
        // Steady state: one frame per bottleneck-fold+1 cycles.
        let lower = 11 * (frames - 1);
        let upper = 11 * frames + 25;
        assert!(
            (lower..=upper).contains(&total),
            "total {total} outside [{lower}, {upper}]"
        );
    }

    #[test]
    fn balanced_pipeline_overlaps_perfectly() {
        let layers = [layer(4), layer(4), layer(4)];
        let (first, total) = run_pipeline(&layers, 10);
        assert_eq!(first, 4 * 3 + 3 * 2);
        // 9 more frames drain at one per fold+1 cycles behind the first,
        // plus the final Done edge.
        assert_eq!(total, first + 9 * 5 + 1);
    }

    #[test]
    fn frames_complete_in_order() {
        let layers = [layer(3), layer(5)];
        let mut p = Pipeline::new(&layers, 5);
        Simulator::new().run(&mut p).unwrap();
        let order: Vec<u64> = p.completed().iter().map(|&(f, _)| f).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
