//! One accepting and one rejecting fixture per `NPC` rule ID.

use netpu_arith::{Fix, Precision, QuantParams};
use netpu_check::{certify, check, check_words, check_words_timed, Report, RuleId, TimingSpec};
use netpu_compiler::{compile, compile_packed, Loadable, PackingMode, SectionKind};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_nn::zoo::ZooModel;

fn cfg() -> HwConfig {
    HwConfig::paper_instance()
}

fn tfc(bn: BnMode) -> Loadable {
    let model = ZooModel::TfcW2A2.build_untrained(7, bn).unwrap();
    compile(&model, &vec![0u8; 784]).unwrap()
}

fn rep(words: &[u64]) -> Report {
    check_words(words, &cfg())
}

/// Word range of a layer's section in the stream, via the (trusted in
/// tests only) host-side layout.
fn section(l: &Loadable, kind: SectionKind, layer: usize) -> std::ops::Range<usize> {
    l.layout
        .sections
        .iter()
        .find(|(k, lay, _)| *k == kind && *lay == layer)
        .map(|(_, _, r)| r.clone())
        .unwrap()
}

#[test]
fn npc001_header_magic_and_version() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc001));

    let mut bad = l.words.clone();
    bad[0] ^= 1; // magic bit
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc001));

    let mut bad = l.words.clone();
    bad[0] ^= 1 << 16; // version bit
    assert!(rep(&bad).fired(RuleId::Npc001));
}

#[test]
fn npc002_layer_count_and_sequence() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc002));

    // Count of 1 layer.
    let mut bad = l.words.clone();
    bad[0] = (bad[0] & !(0xFFFFu64 << 24)) | (1u64 << 24);
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc002));

    // A hidden layer claiming to be an Output.
    let mut bad = l.words.clone();
    bad[2] = (bad[2] & !0b11u64) | 2;
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc002));
}

#[test]
fn npc003_setting_decode() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc003));

    // Invalid activation selector 0b111 on the first hidden layer.
    let mut bad = l.words.clone();
    bad[2] |= 0b111 << 2;
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc003));
}

#[test]
fn npc004_shape_chain() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc004));

    // Nudge the first hidden layer's input length off by one.
    let mut bad = l.words.clone();
    bad[2] ^= 1u64 << 32;
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc004));
}

#[test]
fn npc005_exact_length() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc005));

    // Truncation is an error: the accelerator deadlocks waiting.
    let r = rep(&l.words[..l.words.len() - 3]);
    assert!(r.has_errors() && r.fired(RuleId::Npc005));

    // Trailing garbage is an error: the accelerator parses the word
    // past the layout end as the next burst segment's header and
    // rejects it (`BadHeader`), so admission must too. The stream
    // fuzzer found the older, warning-only behavior as a false accept.
    let mut long = l.words.clone();
    long.push(0xDEAD);
    let r = rep(&long);
    assert!(r.has_errors() && r.fired(RuleId::Npc001));
    let bad_magic_at = l.words.len() * 8;
    assert!(
        r.errors().any(|d| d.byte_offset == Some(bad_magic_at)),
        "the rejection should point at the bogus second header"
    );

    // A legitimate burst — two well-formed loadables back to back — is
    // exactly what the accelerator consumes in batch mode: clean.
    let mut burst = l.words.clone();
    burst.extend_from_slice(&l.words);
    let r = rep(&burst);
    assert!(!r.has_errors(), "{r}");
    assert!(!r.fired(RuleId::Npc005));
}

#[test]
fn npc006_packing_flag() {
    let model = ZooModel::TfcW2A2
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let dense = compile_packed(&model, &vec![0u8; 784], PackingMode::Dense).unwrap();

    // The paper instance has no dense unpack logic: reject.
    let r = check(&dense, &cfg());
    assert!(r.has_errors() && r.fired(RuleId::Npc006));

    // A dense-capable instance accepts the same stream.
    let dense_cfg = HwConfig {
        dense_weight_packing: true,
        ..cfg()
    };
    assert!(!check(&dense, &dense_cfg).fired(RuleId::Npc006));
    assert!(!check(&dense, &dense_cfg).has_errors());
}

#[test]
fn npc007_threshold_monotonicity() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc007));

    // W2A2 hidden layers use Multi-Threshold (3 thresholds/neuron).
    // The params section starts with ceil(64/8) = 8 bias words; the
    // first activation word carries neuron 0's thresholds t0, t1.
    let params = section(&l, SectionKind::Params, 1);
    let mut bad = l.words.clone();
    bad[params.start + 8] = 100; // t0 = 100, t1 = 0: out of order
    let r = rep(&bad);
    assert!(!r.has_errors() && r.fired(RuleId::Npc007));
}

#[test]
fn npc008_bn_scale() {
    let l = tfc(BnMode::Hardware);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc008));

    // Zero the Q16.16 scale of the first hidden layer's neuron 0.
    let params = section(&l, SectionKind::Params, 1);
    let mut bad = l.words.clone();
    bad[params.start] &= !0xFFFF_FFFFu64;
    let r = rep(&bad);
    assert!(!r.has_errors() && r.fired(RuleId::Npc008));
}

#[test]
fn npc009_weight_packing() {
    // TFC-W1A1 hidden rows are 784 XNOR channels: 12×64 + 16, leaving
    // 48 padding bits in the 13th word of every neuron row.
    let model = ZooModel::TfcW1A1
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let l = compile(&model, &vec![0u8; 784]).unwrap();
    assert!(!check(&l, &cfg()).fired(RuleId::Npc009));

    let weights = section(&l, SectionKind::Weights, 1);
    let mut bad = l.words.clone();
    bad[weights.start + 12] |= 1u64 << 63;
    let r = rep(&bad);
    assert!(!r.has_errors() && r.fired(RuleId::Npc009));
}

#[test]
fn npc010_zero_width_layer() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc010));

    // Zero the output layer's class count.
    let n = l.layout.settings.len();
    let mut bad = l.words.clone();
    bad[n] &= !(0x3FFFu64 << 16);
    let r = rep(&bad);
    assert!(r.has_errors() && r.fired(RuleId::Npc010));
}

#[test]
fn npc011_config_feasibility() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc011));

    // Structurally invalid: one LPU cannot consume the interleave.
    let bad_cfg = HwConfig { lpus: 1, ..cfg() };
    let r = check(&l, &bad_cfg);
    assert!(r.has_errors() && r.fired(RuleId::Npc011));

    // Structurally valid but far past the Ultra96 envelope: warning.
    let huge = HwConfig {
        lpus: 8,
        tnpus_per_lpu: 64,
        ..cfg()
    };
    let r = check(&l, &huge);
    assert!(!r.has_errors() && r.fired(RuleId::Npc011));
}

/// A minimal model exercising the QUAN (ReLU) datapath.
fn relu_model() -> QuantMlp {
    let quant = QuantParams {
        scale: Fix::ONE,
        offset: Fix::ZERO,
    };
    QuantMlp {
        name: String::new(),
        input: InputLayer {
            len: 8,
            out_precision: Precision::W4,
            activation: LayerActivation::Relu { quant },
        },
        hidden: vec![HiddenLayer {
            in_len: 8,
            neurons: 4,
            weight_precision: Precision::W4,
            in_precision: Precision::W4,
            out_precision: Precision::W4,
            weights: vec![1; 32],
            bias: Some(vec![0; 4]),
            bn: None,
            activation: LayerActivation::Relu { quant },
        }],
        output: OutputLayer {
            in_len: 4,
            neurons: 2,
            weight_precision: Precision::W4,
            in_precision: Precision::W4,
            weights: vec![1; 8],
            bias: Some(vec![0; 2]),
            bn: None,
        },
    }
}

#[test]
fn npc012_quan_uniformity() {
    let l = compile(&relu_model(), &[0u8; 8]).unwrap();
    assert!(!check(&l, &cfg()).fired(RuleId::Npc012));

    // Hidden params: ceil(4/8) = 1 bias word, then per-neuron QUAN
    // pairs one word each. Skew neuron 1's pair.
    let params = section(&l, SectionKind::Params, 1);
    let mut bad = l.words.clone();
    bad[params.start + 2] ^= 0xFF;
    let r = rep(&bad);
    assert!(!r.has_errors() && r.fired(RuleId::Npc012));
}

#[test]
fn npc013_multithreshold_cap() {
    let l = tfc(BnMode::Folded); // 2-bit Multi-Threshold activations
    assert!(!check(&l, &cfg()).fired(RuleId::Npc013));

    let capped = HwConfig {
        max_multithreshold_bits: 1,
        ..cfg()
    };
    let r = check(&l, &capped);
    assert!(!r.has_errors() && r.fired(RuleId::Npc013));
}

#[test]
fn npc014_accumulator_overflow() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc014));

    // The same stream against an instance generated with an accumulator
    // too narrow for the layer's worst-case prefix sums.
    let narrow = HwConfig {
        accumulator_bits: 8,
        ..cfg()
    };
    let r = check(&l, &narrow);
    assert!(r.has_errors() && r.fired(RuleId::Npc014));
    assert!(r.has_range_errors() && !r.has_structural_errors());
}

/// A hardware-BN model with a wide accumulator range (784 × weight 7 ×
/// level 15) so a large BN scale can push the post stages to their
/// limits.
fn bn_model(scale_q16: i32) -> QuantMlp {
    let quant = QuantParams {
        scale: Fix::ONE,
        offset: Fix::ZERO,
    };
    let bn = BnParams {
        scale_q16,
        offset: Fix::ZERO,
    };
    QuantMlp {
        name: String::new(),
        input: InputLayer {
            len: 784,
            out_precision: Precision::W4,
            activation: LayerActivation::Relu { quant },
        },
        hidden: vec![HiddenLayer {
            in_len: 784,
            neurons: 2,
            weight_precision: Precision::W4,
            in_precision: Precision::W4,
            out_precision: Precision::W4,
            weights: vec![7; 784 * 2],
            bias: None,
            bn: Some(vec![bn; 2]),
            activation: LayerActivation::Relu { quant },
        }],
        output: OutputLayer {
            in_len: 2,
            neurons: 2,
            weight_precision: Precision::W4,
            in_precision: Precision::W4,
            weights: vec![1; 4],
            bias: Some(vec![0; 2]),
            bn: None,
        },
    }
}

#[test]
fn npc015_bn_saturation_reachable() {
    // Identity scale: the BN stage stays far from the Q32.5 limits.
    let l = compile(&bn_model(1 << 16), &vec![0u8; 784]).unwrap();
    assert!(!check(&l, &cfg()).fired(RuleId::Npc015));

    // A near-maximal Q16.16 scale drives the unsaturated BN image past
    // the Q32.5 range for the worst-case accumulator.
    let l = compile(&bn_model(i32::MAX), &vec![0u8; 784]).unwrap();
    assert!(check(&l, &cfg()).fired(RuleId::Npc015));
}

#[test]
fn npc018_bn_exceeds_comparator_range() {
    let l = compile(&bn_model(1 << 16), &vec![0u8; 784]).unwrap();
    assert!(!check(&l, &cfg()).fired(RuleId::Npc018));

    let l = compile(&bn_model(i32::MAX), &vec![0u8; 784]).unwrap();
    let r = check(&l, &cfg());
    assert!(r.has_errors() && r.fired(RuleId::Npc018));
    assert!(r.has_range_errors());
}

#[test]
fn npc016_dead_threshold_neuron() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc016));

    // Raise neuron 0's three Multi-Threshold levels far above anything
    // the accumulator can reach: the neuron's output collapses. The
    // params section starts with ceil(64/8) = 8 bias words; the first
    // two activation words carry neuron 0's thresholds (t0, t1) and
    // (t2, neuron 1's t0). Equal thresholds keep NPC007 satisfied.
    let params = section(&l, SectionKind::Params, 1);
    let mut bad = l.words.clone();
    bad[params.start + 8] = 0x7FFF_FFFF_7FFF_FFFF;
    bad[params.start + 9] = (bad[params.start + 9] & !0xFFFF_FFFF) | 0x7FFF_FFFF;
    let r = rep(&bad);
    assert!(r.fired(RuleId::Npc016));
}

#[test]
fn npc017_constant_output_channel() {
    let l = compile(&relu_model(), &[0u8; 8]).unwrap();
    assert!(!check(&l, &cfg()).fired(RuleId::Npc017));

    // All-zero weights with a zero bias: every QUAN channel is stuck at
    // one value regardless of the input.
    let mut dead = relu_model();
    dead.hidden[0].weights = vec![0; 32];
    let l = compile(&dead, &[0u8; 8]).unwrap();
    let r = check(&l, &cfg());
    assert!(!r.has_structural_errors() && r.fired(RuleId::Npc017));
}

#[test]
fn npc019_provably_narrowable_accumulator() {
    // Both FC layers peak at exactly 120 = 8 signed bits.
    let mut m = relu_model();
    m.output.weights = vec![2; 8];
    let l = compile(&m, &[0u8; 8]).unwrap();

    // The paper instance's 32-bit accumulator is provably oversized:
    // advisory only, never a rejection.
    let r = check(&l, &cfg());
    assert!(!r.has_errors() && r.fired(RuleId::Npc019));

    // An instance generated at the proved width gets no advisory.
    let tight = HwConfig {
        accumulator_bits: 8,
        ..cfg()
    };
    let r = check(&l, &tight);
    assert!(!r.fired(RuleId::Npc019) && !r.fired(RuleId::Npc014));
}

#[test]
fn npc020_declared_input_range() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc020));

    // An empty declared interval is rejected outright.
    let mut bad = l.clone();
    bad.set_declared_input_range(10, 5);
    let r = check(&bad, &cfg());
    assert!(r.has_errors() && r.fired(RuleId::Npc020));

    // A claim that fails to cover the stream's own (all-zero) pixels.
    let mut bad = l.clone();
    bad.set_declared_input_range(1, 5);
    let r = check(&bad, &cfg());
    assert!(r.has_errors() && r.fired(RuleId::Npc020));
}

#[test]
fn npc021_shape_and_semantics_against_claimed_source() {
    let model = ZooModel::TfcW2A2
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let l = compile(&model, &vec![0u8; 784]).unwrap();
    assert!(!certify(&model, &l.words, &cfg())
        .report
        .fired(RuleId::Npc021));

    // A stream compiled from a differently-shaped model.
    let other = ZooModel::SfcW1A1
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let forged = compile(&other, &vec![0u8; 784]).unwrap();
    let outcome = certify(&model, &forged.words, &cfg());
    assert!(outcome.report.has_errors() && outcome.report.fired(RuleId::Npc021));
    assert!(outcome.certificate.is_none());
}

#[test]
fn npc022_output_inequivalence_with_witness() {
    let model = ZooModel::TfcW1A1
        .build_untrained(11, BnMode::Folded)
        .unwrap();
    let l = compile(&model, &vec![0u8; 784]).unwrap();
    assert!(!certify(&model, &l.words, &cfg())
        .report
        .fired(RuleId::Npc022));

    // Swap the first adjacent differing weight pair in hidden layer 0:
    // same multiset of weights, a different function.
    let mut mutated = model.clone();
    let w = &mut mutated.hidden[0].weights;
    let i = (0..w.len() - 1).find(|&i| w[i] != w[i + 1]).unwrap();
    w.swap(i, i + 1);
    let forged = compile(&mutated, &vec![0u8; 784]).unwrap();
    let outcome = certify(&model, &forged.words, &cfg());
    assert!(outcome.report.has_errors() && outcome.report.fired(RuleId::Npc022));
    assert!(!outcome.is_equivalent());
}

/// A fully-binary model with every hidden Sign threshold at `thresh`.
/// With bipolar ±1 inputs the reachable accumulators are integers, so
/// any two thresholds in the same open unit interval encode the same
/// step function.
fn sign_model(thresh: Fix) -> QuantMlp {
    let weights: Vec<i32> = (0..32).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
    QuantMlp {
        name: String::new(),
        input: InputLayer {
            len: 8,
            out_precision: Precision::W1,
            activation: LayerActivation::Sign {
                thresholds: vec![Fix::from_i32(128); 8],
            },
        },
        hidden: vec![HiddenLayer {
            in_len: 8,
            neurons: 4,
            weight_precision: Precision::W1,
            in_precision: Precision::W1,
            out_precision: Precision::W1,
            weights,
            bias: Some(vec![0; 4]),
            bn: None,
            activation: LayerActivation::Sign {
                thresholds: vec![thresh; 4],
            },
        }],
        output: OutputLayer {
            in_len: 4,
            neurons: 2,
            weight_precision: Precision::W1,
            in_precision: Precision::W1,
            weights: vec![1, 1, 1, -1, -1, 1, 1, 1],
            bias: Some(vec![0; 2]),
            bn: None,
        },
    }
}

#[test]
fn npc023_fold_drift_without_reachable_divergence() {
    let half = Fix::from_f64(0.5);
    let source = sign_model(half);
    let l = compile(&source, &[0u8; 8]).unwrap();
    assert!(!certify(&source, &l.words, &cfg())
        .report
        .fired(RuleId::Npc023));

    // Nudge every hidden threshold by one raw ULP: still strictly
    // inside (0, 1), so no integer accumulator distinguishes the
    // encodings — drift, not inequivalence.
    let drifted = sign_model(half.sat_add(Fix::EPSILON));
    let forged = compile(&drifted, &[0u8; 8]).unwrap();
    let outcome = certify(&source, &forged.words, &cfg());
    assert!(outcome.report.fired(RuleId::Npc023), "{}", outcome.report);
    assert!(!outcome.report.fired(RuleId::Npc022));
    assert!(outcome.is_equivalent() && !outcome.report.has_errors());
}

#[test]
fn npc024_weight_row_permutation() {
    let model = ZooModel::TfcW1A1
        .build_untrained(13, BnMode::Folded)
        .unwrap();
    let l = compile(&model, &vec![0u8; 784]).unwrap();
    assert!(!certify(&model, &l.words, &cfg())
        .report
        .fired(RuleId::Npc024));

    // Swap hidden neurons 0 and 1 wholesale — rows, biases, thresholds:
    // a packing-order bug, not a weight corruption.
    let mut mutated = model.clone();
    let h = &mut mutated.hidden[0];
    for i in 0..h.in_len {
        h.weights.swap(i, h.in_len + i);
    }
    if let Some(b) = h.bias.as_mut() {
        b.swap(0, 1);
    }
    if let LayerActivation::Sign { thresholds } = &mut h.activation {
        thresholds.swap(0, 1);
    }
    let forged = compile(&mutated, &vec![0u8; 784]).unwrap();
    let outcome = certify(&model, &forged.words, &cfg());
    assert!(outcome.report.has_errors() && outcome.report.fired(RuleId::Npc024));
}

#[test]
fn npc025_provably_dead_output_slice() {
    let l = compile(&relu_model(), &[0u8; 8]).unwrap();
    assert!(!certify(&relu_model(), &l.words, &cfg())
        .report
        .fired(RuleId::Npc025));

    // Class 0's bias pushes its minimum score above class 1's maximum
    // (output accumulators span [0, 60]): MaxOut can never pick 1.
    let mut dead = relu_model();
    dead.output.bias = Some(vec![100, 0]);
    let l = compile(&dead, &[0u8; 8]).unwrap();
    let outcome = certify(&dead, &l.words, &cfg());
    assert!(outcome.report.fired(RuleId::Npc025), "{}", outcome.report);
    assert!(
        outcome.is_equivalent(),
        "a dead class is a warning, not a rejection"
    );
}

#[test]
fn npc026_exact_minimal_accumulator_width() {
    // relu_model peaks at 120 = exactly 8 signed bits; the paper
    // instance's 32-bit accumulator earns the informational finding.
    let l = compile(&relu_model(), &[0u8; 8]).unwrap();
    let outcome = certify(&relu_model(), &l.words, &cfg());
    assert!(outcome.report.fired(RuleId::Npc026), "{}", outcome.report);
    assert!(!outcome.report.has_errors());
    assert_eq!(outcome.certificate.unwrap().min_accumulator_bits, 8);

    // An instance generated at the proved width gets nothing to note.
    let tight = HwConfig {
        accumulator_bits: 8,
        ..cfg()
    };
    assert!(!certify(&relu_model(), &l.words, &tight)
        .report
        .fired(RuleId::Npc026));
}

#[test]
fn npc027_exact_cycle_certificate() {
    let l = tfc(BnMode::Folded);
    // The timing tier is opt-in: the two-tier check never emits it.
    assert!(!check(&l, &cfg()).fired(RuleId::Npc027));

    let (r, t) = check_words_timed(&l.words, &cfg(), &TimingSpec::default());
    assert!(r.fired(RuleId::Npc027), "{r}");
    assert!(!r.has_errors());
    let t = t.expect("structurally sound stream gets a certificate");
    assert_eq!(
        Some(t.total_cycles()),
        netpu_check::predict_cycles(&l.words, &cfg())
    );
}

#[test]
fn npc028_per_layer_bottleneck_attribution() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc028));

    let (r, t) = check_words_timed(&l.words, &cfg(), &TimingSpec::default());
    assert!(r.fired(RuleId::Npc028), "{r}");
    assert!(!r.has_errors());
    // Every decoded layer has a dominant phase to attribute.
    assert!(!t.expect("certificate").layers.is_empty());
}

#[test]
fn npc029_folding_slack() {
    // A 9-TNPU folding against 8-neuron layers: the ninth TNPU can
    // never receive work, so the 8-TNPU sub-folding provably meets the
    // identical cycle count with less fabric.
    let l = compile(&relu_model(), &[0u8; 8]).unwrap();
    let oversized = HwConfig {
        tnpus_per_lpu: 9,
        ..cfg()
    };
    let (r, _) = check_words_timed(&l.words, &oversized, &TimingSpec::default());
    assert!(r.fired(RuleId::Npc029), "{r}");
    assert!(!r.has_errors());

    // The fully serialized folding has no sub-folding to fall back to,
    // so there is never slack to report.
    let tight = HwConfig {
        tnpus_per_lpu: 1,
        mul_lanes: 1,
        ..cfg()
    };
    let (r, _) = check_words_timed(&l.words, &tight, &TimingSpec::default());
    assert!(!r.fired(RuleId::Npc029), "{r}");
}

#[test]
fn npc030_deadline_infeasibility() {
    let l = tfc(BnMode::Folded);
    let generous = TimingSpec {
        deadline_us: Some(1e9),
        ..TimingSpec::default()
    };
    let (r, _) = check_words_timed(&l.words, &cfg(), &generous);
    assert!(!r.fired(RuleId::Npc030));
    assert!(!r.has_errors());

    // A 1 us deadline is below even the bare stream-transfer time.
    let harsh = TimingSpec {
        deadline_us: Some(1.0),
        ..TimingSpec::default()
    };
    let (r, t) = check_words_timed(&l.words, &cfg(), &harsh);
    assert!(r.fired(RuleId::Npc030), "{r}");
    assert!(r.has_errors() && r.has_timing_errors());
    assert!(
        !r.has_structural_errors(),
        "timing errors are their own admission family"
    );
    assert!(t.is_some(), "the certificate is still derived");
}

#[test]
fn npc031_dma_vs_compute_classification() {
    let l = tfc(BnMode::Folded);
    assert!(!check(&l, &cfg()).fired(RuleId::Npc031));

    let (r, t) = check_words_timed(&l.words, &cfg(), &TimingSpec::default());
    assert!(r.fired(RuleId::Npc031), "{r}");
    assert!(!r.has_errors());
    // The fired classification matches the certificate's predicate.
    let spec = TimingSpec::default();
    let class = if t
        .expect("certificate")
        .dma_bound(&spec.dma, cfg().clock_mhz)
    {
        "DMA-bound"
    } else {
        "compute-bound"
    };
    assert!(format!("{r}").contains(class), "{r}");
}

#[test]
fn diagnostics_carry_locations_and_render() {
    let l = tfc(BnMode::Folded);
    let mut bad = l.words.clone();
    bad[2] |= 0b111 << 2;
    let r = rep(&bad);
    let d = r.errors().next().unwrap();
    assert_eq!(d.byte_offset, Some(16));
    assert_eq!(d.layer, Some(1));
    let text = format!("{r}");
    assert!(text.contains("NPC003") && text.contains("@0x10"));
    assert_eq!(RuleId::Npc003.id(), "NPC003");
    assert!(!RuleId::Npc003.invariant().is_empty());
}

#[test]
fn clean_report_renders_clean() {
    let r = check(&tfc(BnMode::Folded), &cfg());
    assert!(r.is_clean() || !r.has_errors());
    assert_eq!(format!("{}", Report::default()), "clean");
}
