//! The unified admission verdict: one structured rejection surface.
//!
//! Before this module, the stack had three parallel ways of saying
//! "no": `DriverError::Check(Report)` from the driver's pre-flight,
//! `Submit::Invalid { report }` from the serving layer, and the fleet's
//! ad-hoc `Throttled` / `Busy` variants. A client (or the stream
//! fuzzer) comparing rejections across layers had to pattern-match
//! three shapes carrying three different payloads.
//!
//! [`AdmissionVerdict`] and [`RejectReason`] collapse those surfaces:
//! every admission gate in the workspace — [`Driver::run`],
//! `netpu-serve` submit, `netpu-fleet` submit, the compiled-model
//! cache, and `netpu-fuzz` — now answers with the same machine-readable
//! type, carrying the NPC rule IDs and byte offsets of verifier
//! findings where they exist. The trace layer (`netpu-trace`) encodes
//! the same [`RejectReason::code`] strings, so a recorded trace and a
//! live client observe identical reasons.
//!
//! [`Driver::run`]: https://docs.rs/netpu-runtime

use crate::diag::{Report, RuleId};
use std::fmt;

/// Why an admission gate refused a request.
///
/// Marked `#[non_exhaustive]`: serving layers grow refusal classes
/// (new fairness policies, new recovery outcomes) without breaking
/// downstream matches.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum RejectReason {
    /// The static verifier rejected the stream: the [`Report`] carries
    /// every finding with its stable NPC rule ID and byte offset.
    Invalid {
        /// The verifier's findings.
        report: Report,
    },
    /// A bounded admission queue was full — explicit backpressure.
    QueueFull {
        /// Queue depth at the time of refusal (== the bound).
        queue_len: usize,
    },
    /// The tenant's token bucket refused the request (fairness).
    Throttled {
        /// The refused tenant.
        tenant: u64,
    },
    /// The serving layer has shut down; no new work is admitted.
    Closed,
    /// Crash-only recovery gave up on the request: a worker died while
    /// serving it and the requeue budget was exhausted (or the queue
    /// refused the requeue). The request was never completed and never
    /// delivered twice.
    WorkerCrash {
        /// Worker deaths the request survived before being rejected.
        crashes: u32,
    },
}

impl RejectReason {
    /// Stable machine-readable code naming the refusal class. The NPC
    /// rule IDs of an `Invalid` rejection are reachable through
    /// [`rules`](RejectReason::rules); this code names only the class.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::Invalid { .. } => "INVALID_STREAM",
            RejectReason::QueueFull { .. } => "QUEUE_FULL",
            RejectReason::Throttled { .. } => "THROTTLED",
            RejectReason::Closed => "CLOSED",
            RejectReason::WorkerCrash { .. } => "WORKER_CRASH",
        }
    }

    /// The error-severity findings behind an `Invalid` rejection, as
    /// `(rule, byte_offset)` pairs in stream order; empty for every
    /// other reason. This is the machine-readable payload the fuzzer
    /// keys its coverage map on and the trace format serializes.
    pub fn rules(&self) -> Vec<(RuleId, Option<usize>)> {
        match self {
            RejectReason::Invalid { report } => {
                report.errors().map(|d| (d.rule, d.byte_offset)).collect()
            }
            _ => Vec::new(),
        }
    }

    /// The verifier report of an `Invalid` rejection.
    pub fn report(&self) -> Option<&Report> {
        match self {
            RejectReason::Invalid { report } => Some(report),
            _ => None,
        }
    }

    /// `true` when retrying the identical request could succeed
    /// (transient refusals: backpressure, throttling, worker crashes).
    /// `Invalid` streams fail identically forever; `Closed` servers
    /// stay closed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            RejectReason::QueueFull { .. }
                | RejectReason::Throttled { .. }
                | RejectReason::WorkerCrash { .. }
        )
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Invalid { report } => {
                write!(f, "invalid stream: {report}")
            }
            RejectReason::QueueFull { queue_len } => {
                write!(f, "queue full at depth {queue_len}")
            }
            RejectReason::Throttled { tenant } => {
                write!(f, "tenant {tenant} throttled")
            }
            RejectReason::Closed => f.write_str("admission closed"),
            RejectReason::WorkerCrash { crashes } => {
                write!(f, "rejected after {crashes} worker crash(es)")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// The outcome of one admission decision: admit (possibly with
/// advisory range findings) or reject with a structured reason.
#[derive(Clone, PartialEq, Debug)]
pub enum AdmissionVerdict {
    /// The stream may proceed to the accelerator.
    Admitted {
        /// `true` when error-class range findings fired but the gate
        /// was lenient (`strict_range == false`) and let them through.
        range_flagged: bool,
    },
    /// The stream (or request) was refused.
    Rejected(RejectReason),
}

impl AdmissionVerdict {
    /// Applies the workspace's two-tier admission policy to a verifier
    /// [`Report`]: structural errors (NPC001–NPC013) always reject;
    /// error-class range findings (NPC014–NPC020) reject only under
    /// `strict_range`. This is the single decision point the driver,
    /// the serving layers, and the fuzzer all share.
    pub fn from_report(report: Report, strict_range: bool) -> AdmissionVerdict {
        AdmissionVerdict::from_report_tiers(report, strict_range, false)
    }

    /// The full three-tier policy: structural errors always reject,
    /// error-class range findings reject under `strict_range`, and
    /// error-class equivalence findings (NPC021/NPC022/NPC024, from the
    /// [`symex`](crate::symex) translation validator) reject under
    /// `strict_equiv`. Gates without a claimed source model never see
    /// equivalence findings, so they pass `strict_equiv = false` via
    /// [`from_report`](AdmissionVerdict::from_report).
    pub fn from_report_tiers(
        report: Report,
        strict_range: bool,
        strict_equiv: bool,
    ) -> AdmissionVerdict {
        let range = report.has_range_errors();
        let equiv = report.has_equiv_errors();
        if report.has_structural_errors() || (strict_range && range) || (strict_equiv && equiv) {
            AdmissionVerdict::Rejected(RejectReason::Invalid { report })
        } else {
            AdmissionVerdict::Admitted {
                range_flagged: range,
            }
        }
    }

    /// `true` for [`AdmissionVerdict::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionVerdict::Admitted { .. })
    }

    /// The rejection reason, when refused.
    pub fn reason(&self) -> Option<&RejectReason> {
        match self {
            AdmissionVerdict::Rejected(reason) => Some(reason),
            AdmissionVerdict::Admitted { .. } => None,
        }
    }

    /// Converts into a `Result`, for gates that propagate rejections
    /// as errors.
    pub fn into_result(self) -> Result<(), RejectReason> {
        match self {
            AdmissionVerdict::Admitted { .. } => Ok(()),
            AdmissionVerdict::Rejected(reason) => Err(reason),
        }
    }
}

impl fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionVerdict::Admitted {
                range_flagged: true,
            } => f.write_str("admitted (range findings flagged)"),
            AdmissionVerdict::Admitted { .. } => f.write_str("admitted"),
            AdmissionVerdict::Rejected(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn report_with(rule: RuleId, severity: Severity, offset: Option<usize>) -> Report {
        let mut r = Report::default();
        r.push(rule, severity, offset, None, "test finding".into());
        r
    }

    #[test]
    fn structural_errors_always_reject() {
        for strict in [true, false] {
            let verdict = AdmissionVerdict::from_report(
                report_with(RuleId::Npc001, Severity::Error, Some(0)),
                strict,
            );
            let reason = verdict.reason().expect("rejected");
            assert_eq!(reason.code(), "INVALID_STREAM");
            assert_eq!(reason.rules(), vec![(RuleId::Npc001, Some(0))]);
            assert!(!reason.is_transient());
        }
    }

    #[test]
    fn range_errors_reject_only_under_strict() {
        let report = report_with(RuleId::Npc014, Severity::Error, None);
        assert!(matches!(
            AdmissionVerdict::from_report(report.clone(), true),
            AdmissionVerdict::Rejected(RejectReason::Invalid { .. })
        ));
        assert_eq!(
            AdmissionVerdict::from_report(report, false),
            AdmissionVerdict::Admitted {
                range_flagged: true
            }
        );
    }

    #[test]
    fn warnings_admit_cleanly() {
        let verdict = AdmissionVerdict::from_report(
            report_with(RuleId::Npc007, Severity::Warning, Some(16)),
            true,
        );
        assert_eq!(
            verdict,
            AdmissionVerdict::Admitted {
                range_flagged: false
            }
        );
        assert!(verdict.is_admitted());
        assert_eq!(verdict.reason(), None);
        assert!(verdict.into_result().is_ok());
    }

    #[test]
    fn codes_and_transience_cover_every_class() {
        let reasons = [
            RejectReason::Invalid {
                report: Report::default(),
            },
            RejectReason::QueueFull { queue_len: 4 },
            RejectReason::Throttled { tenant: 7 },
            RejectReason::Closed,
            RejectReason::WorkerCrash { crashes: 2 },
        ];
        let codes: Vec<&str> = reasons.iter().map(RejectReason::code).collect();
        assert_eq!(
            codes,
            vec![
                "INVALID_STREAM",
                "QUEUE_FULL",
                "THROTTLED",
                "CLOSED",
                "WORKER_CRASH"
            ]
        );
        assert!(reasons[1].is_transient() && reasons[2].is_transient());
        assert!(reasons[4].is_transient());
        assert!(!reasons[0].is_transient() && !reasons[3].is_transient());
        for r in &reasons {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn rules_surface_only_error_findings_with_offsets() {
        let mut report = Report::default();
        report.push(
            RuleId::Npc007,
            Severity::Warning,
            Some(8),
            None,
            "warn".into(),
        );
        report.push(
            RuleId::Npc005,
            Severity::Error,
            Some(24),
            None,
            "short".into(),
        );
        let reason = AdmissionVerdict::from_report(report, true)
            .reason()
            .cloned()
            .expect("rejected");
        assert_eq!(reason.rules(), vec![(RuleId::Npc005, Some(24))]);
        assert!(reason.report().is_some());
    }
}
