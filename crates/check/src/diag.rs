//! Structured diagnostics: stable rule IDs, severities, byte offsets.

use std::fmt;

/// Stable rule identifiers. The numeric suffix never changes meaning
/// across releases; retired rules leave a hole rather than being
/// renumbered. DESIGN.md §4.3 maps each ID to the architectural
/// invariant it encodes and the paper section that states it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[non_exhaustive]
pub enum RuleId {
    /// Header magic and version fields.
    Npc001,
    /// Layer count and Input, Hidden*, Output sequence.
    Npc002,
    /// Layer-setting word decodes (type / activation / width fields).
    Npc003,
    /// Inter-layer shape chain: layer *k* consumes layer *k−1*'s width.
    Npc004,
    /// Stream length matches the section layout exactly.
    Npc005,
    /// Weight packing flag agrees with the instance's unpack logic.
    Npc006,
    /// Multi-Threshold tables are monotonically non-decreasing.
    Npc007,
    /// BN multiplier scale is non-degenerate.
    Npc008,
    /// Weight-word packing consistency (padding bits, dense payoff).
    Npc009,
    /// Per-layer width and buffer-depth bounds.
    Npc010,
    /// Hardware configuration validity and resource feasibility.
    Npc011,
    /// QUAN scale/offset uniformity within a layer.
    Npc012,
    /// Multi-Threshold precision within the instance's synthesis cap.
    Npc013,
    /// Accumulator overflow possible: worst-case pre-activation sums
    /// exceed the configured accumulator width.
    Npc014,
    /// Fixed-point saturation reachable in the post-accumulator stages.
    Npc015,
    /// Dead neuron: no threshold of the activation is crossable within
    /// the pre-activation bounds.
    Npc016,
    /// Constant output channel: the neuron's output interval collapses
    /// to a single value for every admissible input.
    Npc017,
    /// BN scale drives values outside the 32-bit comparator range.
    Npc018,
    /// Provably-narrowable accumulator: the worst-case sums fit a
    /// narrower accumulator than the instance was generated with.
    Npc019,
    /// Declared input-range metadata is invalid or fails to cover the
    /// stream's own input words.
    Npc020,
    /// Layer shape or semantics mismatch between the stream and its
    /// claimed source model (count, width, precision, activation kind).
    Npc021,
    /// Output-neuron inequivalence: the compiled datapath computes a
    /// different function than the source model, with a concrete
    /// distinguishing input as the counterexample witness.
    Npc022,
    /// Threshold/BN fold drift: parameter encodings differ from the
    /// source fold but no behavioral divergence is reachable.
    Npc023,
    /// Weight-packing permutation error: a layer's weight rows are a
    /// permutation of the source rows rather than the source rows.
    Npc024,
    /// Provably-dead output slice: an output class the datapath can
    /// never select under maxout, for any admissible input.
    Npc025,
    /// Exact minimal accumulator width from the symbolic value sets,
    /// tightening the interval-based NPC019 advisory.
    Npc026,
    /// Exact cycle certificate: the closed-form per-inference cycle
    /// count, steady-state throughput, and §V cold/resident latencies.
    Npc027,
    /// Per-layer pipeline-bottleneck attribution: the phase holding the
    /// largest share of a layer's cycles.
    Npc028,
    /// Folding slack: a strictly cheaper folding of the instance
    /// provably meets the same per-inference latency.
    Npc029,
    /// Deadline infeasibility: the statically certified end-to-end
    /// latency exceeds the caller's declared request deadline.
    Npc030,
    /// DMA-bound vs compute-bound classification of the inference under
    /// the declared DMA channel model.
    Npc031,
}

impl RuleId {
    /// All rules, in catalog order.
    pub const ALL: [RuleId; 31] = [
        RuleId::Npc001,
        RuleId::Npc002,
        RuleId::Npc003,
        RuleId::Npc004,
        RuleId::Npc005,
        RuleId::Npc006,
        RuleId::Npc007,
        RuleId::Npc008,
        RuleId::Npc009,
        RuleId::Npc010,
        RuleId::Npc011,
        RuleId::Npc012,
        RuleId::Npc013,
        RuleId::Npc014,
        RuleId::Npc015,
        RuleId::Npc016,
        RuleId::Npc017,
        RuleId::Npc018,
        RuleId::Npc019,
        RuleId::Npc020,
        RuleId::Npc021,
        RuleId::Npc022,
        RuleId::Npc023,
        RuleId::Npc024,
        RuleId::Npc025,
        RuleId::Npc026,
        RuleId::Npc027,
        RuleId::Npc028,
        RuleId::Npc029,
        RuleId::Npc030,
        RuleId::Npc031,
    ];

    /// The stable textual ID, e.g. `"NPC004"`.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Npc001 => "NPC001",
            RuleId::Npc002 => "NPC002",
            RuleId::Npc003 => "NPC003",
            RuleId::Npc004 => "NPC004",
            RuleId::Npc005 => "NPC005",
            RuleId::Npc006 => "NPC006",
            RuleId::Npc007 => "NPC007",
            RuleId::Npc008 => "NPC008",
            RuleId::Npc009 => "NPC009",
            RuleId::Npc010 => "NPC010",
            RuleId::Npc011 => "NPC011",
            RuleId::Npc012 => "NPC012",
            RuleId::Npc013 => "NPC013",
            RuleId::Npc014 => "NPC014",
            RuleId::Npc015 => "NPC015",
            RuleId::Npc016 => "NPC016",
            RuleId::Npc017 => "NPC017",
            RuleId::Npc018 => "NPC018",
            RuleId::Npc019 => "NPC019",
            RuleId::Npc020 => "NPC020",
            RuleId::Npc021 => "NPC021",
            RuleId::Npc022 => "NPC022",
            RuleId::Npc023 => "NPC023",
            RuleId::Npc024 => "NPC024",
            RuleId::Npc025 => "NPC025",
            RuleId::Npc026 => "NPC026",
            RuleId::Npc027 => "NPC027",
            RuleId::Npc028 => "NPC028",
            RuleId::Npc029 => "NPC029",
            RuleId::Npc030 => "NPC030",
            RuleId::Npc031 => "NPC031",
        }
    }

    /// One-line statement of the invariant the rule encodes.
    pub fn invariant(self) -> &'static str {
        match self {
            RuleId::Npc001 => "stream header carries the NetPU magic and a supported version",
            RuleId::Npc002 => "layer sequence is Input, Hidden*, Output with at least two layers",
            RuleId::Npc003 => "every layer-setting word decodes to a known type and activation",
            RuleId::Npc004 => "each FC layer's input length equals the previous layer's width",
            RuleId::Npc005 => "the stream is exactly as long as its section layout requires",
            RuleId::Npc006 => "the packing flag matches the instance's weight-unpack logic",
            RuleId::Npc007 => "multi-threshold tables are sorted for the comparator cascade",
            RuleId::Npc008 => "BN scale multiplicands are non-zero",
            RuleId::Npc009 => "weight words are packed consistently with the declared mode",
            RuleId::Npc010 => "layer widths fit the architecture's buffers",
            RuleId::Npc011 => "the hardware configuration is valid and fits the target fabric",
            RuleId::Npc012 => "QUAN parameters are uniform across a layer's neurons",
            RuleId::Npc013 => "multi-threshold precision is within the synthesis-time cap",
            RuleId::Npc014 => "no admissible input can overflow the configured accumulator",
            RuleId::Npc015 => "fixed-point saturation is unreachable in the post stages",
            RuleId::Npc016 => "every activation threshold is crossable by some input",
            RuleId::Npc017 => "no output channel is constant over the input range",
            RuleId::Npc018 => "post-BN values stay inside the 32-bit comparator range",
            RuleId::Npc019 => "the accumulator width is the minimal one that is safe",
            RuleId::Npc020 => "declared input-range metadata is valid and covers the inputs",
            RuleId::Npc021 => "stream layer shapes and semantics match the claimed source model",
            RuleId::Npc022 => "every output neuron computes exactly the source model's function",
            RuleId::Npc023 => "threshold/BN parameter encodings match the source fold",
            RuleId::Npc024 => "weight rows are packed in source order, not a permutation of it",
            RuleId::Npc025 => "every output class is selectable by some admissible input",
            RuleId::Npc026 => "the accumulator width equals the exact symbolic minimum",
            RuleId::Npc027 => "the per-inference cycle count is exactly the certified closed form",
            RuleId::Npc028 => "each layer's dominant pipeline phase is statically attributable",
            RuleId::Npc029 => "no strictly cheaper folding meets the same certified latency",
            RuleId::Npc030 => "the certified end-to-end latency meets the declared deadline",
            RuleId::Npc031 => "the inference's binding resource (DMA or compute) is classified",
        }
    }

    /// `true` for the range-analysis rule family (NPC014–NPC020) emitted
    /// by the abstract interpreter, as opposed to the structural rules
    /// NPC001–NPC013. Admission layers may gate on this distinction
    /// (strict mode rejects range errors, lenient mode only structural
    /// ones).
    pub fn is_range(self) -> bool {
        matches!(
            self,
            RuleId::Npc014
                | RuleId::Npc015
                | RuleId::Npc016
                | RuleId::Npc017
                | RuleId::Npc018
                | RuleId::Npc019
                | RuleId::Npc020
        )
    }

    /// `true` for the symbolic-equivalence rule family (NPC021–NPC026)
    /// emitted by the [`symex`](crate::symex) translation validator.
    /// These only exist when a source model is supplied alongside the
    /// stream; admission gates on them exclusively under the opt-in
    /// `strict_equiv` third tier.
    pub fn is_equiv(self) -> bool {
        matches!(
            self,
            RuleId::Npc021
                | RuleId::Npc022
                | RuleId::Npc023
                | RuleId::Npc024
                | RuleId::Npc025
                | RuleId::Npc026
        )
    }

    /// `true` for the timing-certification rule family (NPC027–NPC031)
    /// emitted by the [`timing`](crate::timing) analysis. Informational
    /// except NPC030, which errors only under a caller-declared
    /// deadline; structural admission never gates on this family.
    pub fn is_timing(self) -> bool {
        matches!(
            self,
            RuleId::Npc027 | RuleId::Npc028 | RuleId::Npc029 | RuleId::Npc030 | RuleId::Npc031
        )
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory only: the stream is sound, but the analysis proved a
    /// property worth surfacing (e.g. a narrower accumulator suffices).
    Info,
    /// Suspicious but the accelerator would still complete the run
    /// (possibly with garbage numerics).
    Warning,
    /// The accelerator would reject, deadlock on, or panic over this
    /// stream; admission must refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a rule violation at a stream location.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Byte offset into the serialized stream (word offset × 8), when
    /// the finding points at a specific word.
    pub byte_offset: Option<usize>,
    /// Zero-based layer index the finding concerns, when layer-scoped.
    pub layer: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        if let Some(off) = self.byte_offset {
            write!(f, " @0x{off:x}")?;
        }
        if let Some(layer) = self.layer {
            write!(f, " layer {layer}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The checker's verdict: every diagnostic, in stream order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Report {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `true` when nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-severity finding fired; admission
    /// layers reject exactly these reports.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// `true` when a structural rule (NPC001–NPC013) fired at error
    /// severity. These always reject, regardless of strictness.
    pub fn has_structural_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| {
            d.severity == Severity::Error
                && !d.rule.is_range()
                && !d.rule.is_equiv()
                && !d.rule.is_timing()
        })
    }

    /// `true` when a range-analysis rule (NPC014–NPC020) fired at error
    /// severity. Strict admission rejects these too.
    pub fn has_range_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule.is_range())
    }

    /// `true` when a symbolic-equivalence rule (NPC021–NPC026) fired at
    /// error severity. Only the opt-in `strict_equiv` admission tier
    /// rejects these.
    pub fn has_equiv_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule.is_equiv())
    }

    /// `true` when a timing-certification rule (NPC027–NPC031) fired at
    /// error severity — in practice NPC030, the deadline-infeasibility
    /// rule, the family's only error-capable member.
    pub fn has_timing_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule.is_timing())
    }

    /// `true` when `rule` fired at any severity.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Appends a finding. Public so downstream layers (the trace
    /// recorder's tests, the fuzzer's synthetic corpora) can construct
    /// reports without round-tripping a real stream; the verifier's own
    /// rules remain the only production writers.
    pub fn push(
        &mut self,
        rule: RuleId,
        severity: Severity,
        byte_offset: Option<usize>,
        layer: Option<usize>,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            byte_offset,
            layer,
            message,
        });
    }

    /// Appends every finding of `other`, preserving order — used by the
    /// three-tier entry points to fold the translation validator's
    /// NPC021–NPC026 findings into a structural/range report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}
