#![deny(missing_docs)]
//! Static verifier for NetPU-M loadables and instance configurations.
//!
//! The accelerator's stream protocol (§III.B) assumes every loadable is
//! well-formed; a malformed one is otherwise caught — if at all — by an
//! error or panic deep inside the cycle-level model. This crate checks
//! a stream **without simulating it**: section layout and ordering,
//! layer-setting decodability, the inter-layer shape chain, bit-width
//! and buffer-depth bounds, threshold-table monotonicity, BN-multiplier
//! degeneracy, weight-word packing consistency, and resource-model
//! feasibility of the target [`HwConfig`].
//!
//! Structurally sound streams additionally pass through the [`absint`]
//! range analyzer: an abstract interpretation of the decoded model that
//! proves per-neuron accumulator/BN/level bounds from the header's
//! declared input range and emits the NPC014–NPC020 datapath-soundness
//! rules.
//!
//! When a caller can supply the *source model* a stream claims to
//! implement, the [`symex`] translation validator adds a third tier:
//! bit-precise symbolic equivalence of the decoded datapath against the
//! reference forward function, emitting NPC021–NPC026 and a re-checkable
//! [`Certificate`].
//!
//! The fourth tier is the [`timing`] certifier: a closed-form,
//! cycle-exact cost model of the accelerator derived from the decoded
//! stream and the [`HwConfig`] alone, emitting the NPC027–NPC031
//! timing-certification rules (exact cycle certificate, per-layer
//! bottleneck attribution, folding slack, deadline infeasibility, and
//! DMA-bound vs compute-bound classification). Its exactness against
//! the tick simulator is pinned by the `xtask certify-timing`
//! differential gate.
//!
//! Findings are structured [`Diagnostic`]s with stable rule IDs
//! (`NPC001`…), byte offsets into the serialized stream, and
//! severities. **Errors** come in three families the admission layers
//! ([`Driver::run`] and `netpu-serve`) gate on separately: *structural*
//! errors (NPC001–NPC013) mark streams the accelerator would reject,
//! deadlock on, or panic over and always refuse admission; *range*
//! errors (NPC014/NPC018/NPC020) mark streams the simulator completes
//! but whose datapath numerics are provably unsafe on the configured
//! instance — strict admission rejects these too, lenient admission
//! lets them through; *equivalence* errors (NPC021/NPC022/NPC024) mark
//! streams that compute a different function than their claimed source
//! and only gate the opt-in `strict_equiv` tier. **Warnings** flag
//! numeric hazards (unsorted threshold tables, zero BN scales, dead
//! neurons, reachable saturation) that complete but misbehave.
//!
//! [`Driver::run`]: https://docs.rs/netpu-runtime
//!
//! ```
//! use netpu_check::{check, RuleId};
//! use netpu_core::HwConfig;
//! use netpu_nn::export::BnMode;
//! use netpu_nn::zoo::ZooModel;
//!
//! let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
//! let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
//! let report = check(&loadable, &HwConfig::paper_instance());
//! assert!(!report.has_errors());
//!
//! let mut bad = loadable.clone();
//! bad.words[0] ^= 1; // flip a magic bit
//! let report = netpu_check::check_words(&bad.words, &HwConfig::paper_instance());
//! assert!(report.has_errors() && report.fired(RuleId::Npc001));
//! ```

pub mod absint;
mod diag;
mod rules;
pub mod symex;
pub mod timing;
mod verdict;

pub use absint::{LayerBounds, NeuronBounds, RangeAnalysis};
pub use diag::{Diagnostic, Report, RuleId, Severity};
pub use symex::{certify, compile_certified, Certificate, CertifyError, CertifyOutcome, Witness};
pub use timing::{DmaParams, LayerTiming, StreamTiming, TimingPhase, TimingSpec};
pub use verdict::{AdmissionVerdict, RejectReason};

use netpu_compiler::Loadable;
use netpu_core::HwConfig;
use netpu_nn::qmodel::QuantMlp;

/// Checks a compiled loadable against an instance configuration. The
/// section layout is recomputed from the stream itself — the loadable's
/// host-side `layout` metadata is deliberately not trusted.
pub fn check(loadable: &Loadable, cfg: &HwConfig) -> Report {
    check_words(&loadable.words, cfg)
}

/// Checks a raw word stream (e.g. one received over a transport, with
/// no host-side metadata) against an instance configuration.
///
/// Structurally clean streams are additionally decoded and run through
/// the [`absint`] range analyzer; streams the decoder cannot reconstruct
/// (multi-loadable bursts, truncated tails already reported by the
/// structural rules) skip the second tier silently.
pub fn check_words(words: &[u64], cfg: &HwConfig) -> Report {
    let mut report = rules::run_all(words, cfg);
    if !report.has_errors() {
        if let Ok(decoded) = netpu_compiler::decode(words) {
            absint::analyze(&decoded, cfg, &mut report);
        }
    }
    report
}

/// Runs the full two-tier admission decision on a raw word stream:
/// [`check_words`] followed by [`AdmissionVerdict::from_report`]. This
/// is the one gate the driver, the serving layers, and the fuzzer all
/// call, so a stream receives the identical verdict at every layer.
pub fn admit_words(words: &[u64], cfg: &HwConfig, strict_range: bool) -> AdmissionVerdict {
    AdmissionVerdict::from_report(check_words(words, cfg), strict_range)
}

/// The full **three-tier** check: [`check_words`] plus, when the first
/// two tiers pass, the [`symex`] translation validation of the stream
/// against its claimed source model. The returned report carries every
/// finding from all tiers; NPC021–NPC026 appear only when the stream
/// was sound enough to certify.
pub fn check_words_against(words: &[u64], source: &QuantMlp, cfg: &HwConfig) -> Report {
    let mut report = check_words(words, cfg);
    if !report.has_errors() {
        let outcome = symex::certify(source, words, cfg);
        report.merge(outcome.report);
    }
    report
}

/// The three-tier admission decision for callers holding the claimed
/// source model: [`check_words_against`] followed by
/// [`AdmissionVerdict::from_report_tiers`] with `strict_equiv` enabled.
/// `strict_range` keeps its usual meaning for the second tier.
pub fn admit_words_against(
    words: &[u64],
    source: &QuantMlp,
    cfg: &HwConfig,
    strict_range: bool,
) -> AdmissionVerdict {
    AdmissionVerdict::from_report_tiers(check_words_against(words, source, cfg), strict_range, true)
}

/// [`check_words`] plus the proved per-neuron bounds, for callers that
/// want the [`RangeAnalysis`] itself (the soundness test suite, width
/// tooling). The analysis half is `None` exactly when `check_words`
/// would have skipped it.
pub fn check_words_analyzed(words: &[u64], cfg: &HwConfig) -> (Report, Option<RangeAnalysis>) {
    let mut report = rules::run_all(words, cfg);
    if report.has_errors() {
        return (report, None);
    }
    let analysis = netpu_compiler::decode(words)
        .ok()
        .map(|decoded| absint::analyze(&decoded, cfg, &mut report));
    (report, analysis)
}

/// The four-tier check: [`check_words`] plus, whenever the stream
/// decodes at all, the [`timing`] certification under `spec` — the
/// cycle count only depends on the decoded settings, so timing findings
/// (NPC027–NPC031) are derived even when the range tier reported
/// numeric hazards. The certificate is `None` exactly when the stream
/// is structurally unsound (the decoder cannot reconstruct it, so no
/// cycle count exists to certify).
pub fn check_words_timed(
    words: &[u64],
    cfg: &HwConfig,
    spec: &timing::TimingSpec,
) -> (Report, Option<timing::StreamTiming>) {
    let mut report = check_words(words, cfg);
    let timed = if report.has_structural_errors() {
        None
    } else {
        netpu_compiler::decode(words).ok().map(|decoded| {
            let t = timing::analyze(&decoded, cfg);
            timing::report_timing(&t, cfg, spec, &mut report);
            t
        })
    };
    (report, timed)
}

/// The statically certified per-inference cycle count of a raw stream
/// on `cfg`, or `None` when the stream does not decode. This is the
/// value `xtask certify-timing` proves byte-for-byte equal to the tick
/// simulator's cycle counter; the runtime records it alongside traced
/// runs so replay can cross-check the model against real executions.
pub fn predict_cycles(words: &[u64], cfg: &HwConfig) -> Option<u64> {
    netpu_compiler::decode(words)
        .ok()
        .map(|decoded| timing::analyze(&decoded, cfg).total_cycles())
}
