#![deny(missing_docs)]
//! Static verifier for NetPU-M loadables and instance configurations.
//!
//! The accelerator's stream protocol (§III.B) assumes every loadable is
//! well-formed; a malformed one is otherwise caught — if at all — by an
//! error or panic deep inside the cycle-level model. This crate checks
//! a stream **without simulating it**: section layout and ordering,
//! layer-setting decodability, the inter-layer shape chain, bit-width
//! and buffer-depth bounds, threshold-table monotonicity, BN-multiplier
//! degeneracy, weight-word packing consistency, and resource-model
//! feasibility of the target [`HwConfig`].
//!
//! Findings are structured [`Diagnostic`]s with stable rule IDs
//! (`NPC001`…), byte offsets into the serialized stream, and
//! severities. **Errors** mark streams the accelerator would reject,
//! deadlock on, or panic over; admission layers ([`Driver::run`] and
//! `netpu-serve`) reject exactly those, so a stream the accelerator
//! would run to completion is never refused. **Warnings** flag numeric
//! hazards (unsorted threshold tables, zero BN scales, wasted dense
//! flags) that complete but misbehave.
//!
//! [`Driver::run`]: https://docs.rs/netpu-runtime
//!
//! ```
//! use netpu_check::{check, RuleId};
//! use netpu_core::HwConfig;
//! use netpu_nn::export::BnMode;
//! use netpu_nn::zoo::ZooModel;
//!
//! let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
//! let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
//! let report = check(&loadable, &HwConfig::paper_instance());
//! assert!(!report.has_errors());
//!
//! let mut bad = loadable.clone();
//! bad.words[0] ^= 1; // flip a magic bit
//! let report = netpu_check::check_words(&bad.words, &HwConfig::paper_instance());
//! assert!(report.has_errors() && report.fired(RuleId::Npc001));
//! ```

mod diag;
mod rules;

pub use diag::{Diagnostic, Report, RuleId, Severity};

use netpu_compiler::Loadable;
use netpu_core::HwConfig;

/// Checks a compiled loadable against an instance configuration. The
/// section layout is recomputed from the stream itself — the loadable's
/// host-side `layout` metadata is deliberately not trusted.
pub fn check(loadable: &Loadable, cfg: &HwConfig) -> Report {
    check_words(&loadable.words, cfg)
}

/// Checks a raw word stream (e.g. one received over a transport, with
/// no host-side metadata) against an instance configuration.
pub fn check_words(words: &[u64], cfg: &HwConfig) -> Report {
    rules::run_all(words, cfg)
}
