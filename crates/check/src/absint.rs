//! Abstract-interpretation range analysis over a decoded loadable
//! (DESIGN.md §4.4).
//!
//! Propagates per-value intervals layer by layer from the header's
//! declared input range through the exact datapath the TNPU implements:
//! MAC into the saturating 32-bit accumulator, optional fixed-point BN,
//! threshold / QUAN activation. Every transfer function either runs the
//! *concrete* arithmetic at the interval endpoints (sound because each
//! post-accumulator stage is monotone or antitone in its input) or
//! over-approximates to a trivially sound interval, so every value the
//! simulator can produce for an admissible input lies inside the
//! predicted bounds — the property the `absint_soundness` differential
//! suite pins against the datapath probe.
//!
//! The accumulator domain needs care: the hardware clamps to 32 bits
//! once per *weight word*, so clamping at any finer granularity (e.g.
//! per product) is unsound — a later negative word can pull a
//! concretely-clamped sum back under an abstract bound. Instead we track
//! the **unclamped prefix envelope** in 64-bit arithmetic at product
//! granularity: its prefix set contains every word-boundary prefix, so
//! if the envelope stays inside the 32-bit range no clamp ever engages
//! and the exact total-sum interval is valid; otherwise the accumulator
//! interval widens to the full 32-bit range (trivially sound — the
//! register is 32-bit) and NPC014 reports the overflow hazard.
//!
//! XNOR-path layers additionally carry a parity domain: every product of
//! bipolar ±1 operands is odd, so a neuron's accumulator is congruent to
//! `in_len + bias (mod 2)` and interval endpoints of the wrong parity
//! can be tightened inward before threshold-crossing checks.

use crate::diag::{Report, RuleId, Severity};
use netpu_arith::{Fix, Precision};
use netpu_compiler::Decoded;
use netpu_core::HwConfig;
use netpu_nn::qmodel::{BnParams, LayerActivation};

/// Per-neuron value intervals (inclusive) the analysis proved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeuronBounds {
    /// Post-bias accumulator interval (the value entering the post-MAC
    /// stages). `None` for input-layer "neurons" (no MAC).
    pub acc: Option<(i32, i32)>,
    /// Post-BN interval as raw Q32.5 words (hardware-BN layers only).
    pub post_bn: Option<(i64, i64)>,
    /// Output-level interval (input/hidden layers).
    pub level: Option<(i32, i32)>,
    /// Output-score interval as raw Q32.5 words (output layer).
    pub score: Option<(i64, i64)>,
}

/// One layer's proved bounds, in neuron order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerBounds {
    /// Per-neuron bounds.
    pub neurons: Vec<NeuronBounds>,
}

/// The full analysis result: one [`LayerBounds`] per hardware layer
/// (input, hidden…, output).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeAnalysis {
    /// Per-layer bounds, in layer order.
    pub layers: Vec<LayerBounds>,
}

/// Accumulator parity on the XNOR path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Parity {
    Even,
    Odd,
    Unknown,
}

impl Parity {
    fn of(v: i64) -> Parity {
        if v.rem_euclid(2) == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }
}

/// Tightens interval endpoints of the wrong parity inward. Sound when
/// every concrete value in the interval has parity `p` (the interval is
/// non-empty, so a value of that parity exists between the endpoints).
fn tighten_parity((lo, hi): (i64, i64), p: Parity) -> (i64, i64) {
    if p == Parity::Unknown {
        return (lo, hi);
    }
    let lo = if Parity::of(lo) == p { lo } else { lo + 1 };
    let hi = if Parity::of(hi) == p { hi } else { hi - 1 };
    (lo, hi)
}

/// Smallest signed two's-complement width holding every value of the
/// interval.
fn signed_width((lo, hi): (i64, i64)) -> u8 {
    for bits in 1u8..=63 {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        if lo >= min && hi <= max {
            return bits;
        }
    }
    64
}

/// One FC neuron's accumulator analysis.
struct FcAcc {
    /// Post-bias accumulator interval in the saturated 32-bit domain.
    acc: (i32, i32),
    /// Unclamped prefix envelope (including the bias step), 64-bit.
    env: (i64, i64),
}

/// Analyzes one FC neuron's MAC against the per-input mac-domain
/// intervals. `parity` is the known accumulator parity (XNOR layers).
fn fc_neuron(weights: &[i32], inputs: &[(i64, i64)], bias: Option<i32>, parity: Parity) -> FcAcc {
    debug_assert_eq!(weights.len(), inputs.len());
    let mut sum = (0i64, 0i64);
    let mut env = (0i64, 0i64);
    for (&w, &(ilo, ihi)) in weights.iter().zip(inputs) {
        let (a, b) = (i64::from(w) * ilo, i64::from(w) * ihi);
        sum.0 += a.min(b);
        sum.1 += a.max(b);
        env.0 = env.0.min(sum.0);
        env.1 = env.1.max(sum.1);
    }
    if let Some(b) = bias {
        sum.0 += i64::from(b);
        sum.1 += i64::from(b);
        env.0 = env.0.min(sum.0);
        env.1 = env.1.max(sum.1);
    }
    let exact = env.0 >= i64::from(i32::MIN) && env.1 <= i64::from(i32::MAX);
    let acc = if exact {
        // No prefix can engage the 32-bit clamp (the envelope covers
        // every word-boundary prefix), so the register holds the exact
        // sum and the parity domain may tighten the endpoints.
        let (lo, hi) = tighten_parity(sum, parity);
        (
            i32::try_from(lo).unwrap_or(i32::MIN),
            i32::try_from(hi).unwrap_or(i32::MAX),
        )
    } else {
        // A clamp may engage mid-sum; the register is still a 32-bit
        // value, so the full range is trivially sound.
        (i32::MIN, i32::MAX)
    };
    FcAcc { acc, env }
}

/// Evaluates the concrete BN transform at the accumulator endpoints.
/// Sound because `mul_q16`+`sat_add` is monotone (antitone for negative
/// scales), covered by taking min/max of both endpoint images.
fn bn_bounds(bn: &BnParams, acc: (i32, i32)) -> (Fix, Fix) {
    let a = bn.apply(Fix::from_i32(acc.0));
    let b = bn.apply(Fix::from_i32(acc.1));
    (a.min(b), a.max(b))
}

/// The BN transform *without* the datapath's Q32.5 saturation, at one
/// endpoint — used to detect reachable saturation (NPC015).
fn bn_unsaturated(bn: &BnParams, acc: i32) -> i128 {
    let raw = i128::from(acc) << netpu_arith::fixed::FRAC_BITS;
    ((raw * i128::from(bn.scale_q16)) >> 16) + i128::from(bn.offset.raw())
}

/// Evaluates the concrete activation (+ QUAN) at the value endpoints.
/// Every activation path is monotone in its input (antitone only through
/// a negative QUAN scale), so min/max of the endpoint images is sound.
fn level_bounds(act: &LayerActivation, neuron: usize, x: (Fix, Fix), out: Precision) -> (i32, i32) {
    let a = act.apply(neuron, x.0, out);
    let b = act.apply(neuron, x.1, out);
    (a.min(b), a.max(b))
}

/// Converts a level interval into the domain the next MAC consumes:
/// bipolar ±1 for binary producing precision (monotone map 0→−1, 1→+1),
/// the unsigned level unchanged otherwise.
fn mac_domain((lo, hi): (i32, i32), precision: Precision) -> (i64, i64) {
    if precision.is_binary() {
        (2 * i64::from(lo) - 1, 2 * i64::from(hi) - 1)
    } else {
        (i64::from(lo), i64::from(hi))
    }
}

/// Per-layer finding accumulators, flushed as one aggregated diagnostic
/// per (rule, layer).
#[derive(Default)]
struct LayerFindings {
    overflow: Vec<usize>,
    saturation: Vec<usize>,
    dead: Vec<usize>,
    constant: Vec<usize>,
    comparator: Vec<usize>,
    max_width: u8,
}

fn emit(
    report: &mut Report,
    rule: RuleId,
    severity: Severity,
    layer: usize,
    neurons: &[usize],
    what: &str,
) {
    if neurons.is_empty() {
        return;
    }
    let shown: Vec<String> = neurons.iter().take(4).map(usize::to_string).collect();
    let suffix = if neurons.len() > shown.len() {
        format!(" and {} more", neurons.len() - shown.len())
    } else {
        String::new()
    };
    report.push(
        rule,
        severity,
        None,
        Some(layer),
        format!(
            "{what} for {} neuron(s): {}{}",
            neurons.len(),
            shown.join(", "),
            suffix
        ),
    );
}

fn flush(report: &mut Report, layer: usize, f: &LayerFindings, cfg: &HwConfig) {
    emit(
        report,
        RuleId::Npc014,
        Severity::Error,
        layer,
        &f.overflow,
        &format!(
            "worst-case prefix sums exceed the {}-bit accumulator",
            cfg.accumulator_bits
        ),
    );
    emit(
        report,
        RuleId::Npc015,
        Severity::Warning,
        layer,
        &f.saturation,
        "fixed-point saturation reachable in the BN stage",
    );
    emit(
        report,
        RuleId::Npc016,
        Severity::Warning,
        layer,
        &f.dead,
        "no activation threshold crossable within the proved bounds",
    );
    emit(
        report,
        RuleId::Npc017,
        Severity::Warning,
        layer,
        &f.constant,
        "output channel is constant over the admissible input range",
    );
    emit(
        report,
        RuleId::Npc018,
        Severity::Error,
        layer,
        &f.comparator,
        "BN output can leave the 32-bit comparator range",
    );
    if f.max_width > 0 && f.max_width < cfg.accumulator_bits {
        report.push(
            RuleId::Npc019,
            Severity::Info,
            None,
            Some(layer),
            format!(
                "a {}-bit accumulator is provably sufficient (instance generated with {} bits)",
                f.max_width, cfg.accumulator_bits
            ),
        );
    }
}

/// Checks the declared input range against the stream's own input
/// section (NPC020) and returns the range the rest of the analysis may
/// soundly assume. An absent, empty, or uncovering claim falls back to
/// the full 8-bit pixel range.
fn input_range(decoded: &Decoded, report: &mut Report) -> (u8, u8) {
    let Some((lo, hi)) = decoded.input_range else {
        return (0, u8::MAX);
    };
    if lo > hi {
        report.push(
            RuleId::Npc020,
            Severity::Error,
            None,
            Some(0),
            format!("declared input range {lo}..={hi} is empty"),
        );
        return (0, u8::MAX);
    }
    let outside = decoded.pixels.iter().filter(|&&p| p < lo || p > hi).count();
    if outside > 0 {
        report.push(
            RuleId::Npc020,
            Severity::Error,
            None,
            Some(0),
            format!(
                "declared input range {lo}..={hi} does not cover {outside} of the stream's own \
                 input value(s)"
            ),
        );
        return (0, u8::MAX);
    }
    (lo, hi)
}

/// Runs the range analysis over a decoded loadable, appending NPC014–
/// NPC020 findings to `report` and returning the proved bounds.
pub fn analyze(decoded: &Decoded, cfg: &HwConfig, report: &mut Report) -> RangeAnalysis {
    let model = &decoded.model;
    let (in_lo, in_hi) = input_range(decoded, report);
    let px = (
        Fix::from_i32(i32::from(in_lo)),
        Fix::from_i32(i32::from(in_hi)),
    );

    let mut layers = Vec::with_capacity(model.layer_count());

    // Input layer (yellow path): one "neuron" per pixel, no MAC.
    let mut findings = LayerFindings::default();
    let mut bounds = Vec::with_capacity(model.input.len);
    let mut cur: Vec<(i64, i64)> = Vec::with_capacity(model.input.len);
    for i in 0..model.input.len {
        let level = level_bounds(&model.input.activation, i, px, model.input.out_precision);
        classify_constant(&model.input.activation, level, i, &mut findings);
        cur.push(mac_domain(level, model.input.out_precision));
        bounds.push(NeuronBounds {
            level: Some(level),
            ..NeuronBounds::default()
        });
    }
    flush(report, 0, &findings, cfg);
    layers.push(LayerBounds { neurons: bounds });

    // Hidden layers (red path).
    for (h, layer) in model.hidden.iter().enumerate() {
        let layer_idx = h + 1;
        let mut findings = LayerFindings::default();
        let mut bounds = Vec::with_capacity(layer.neurons);
        let mut next: Vec<(i64, i64)> = Vec::with_capacity(layer.neurons);
        let xnor = layer.in_precision.is_binary() && layer.weight_precision.is_binary();
        for n in 0..layer.neurons {
            let weights = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let bn = layer.bn.as_ref().map(|p| p[n]);
            let nb = fc_post(weights, &cur, bias, bn, xnor, cfg, n, &mut findings);
            let x = match (nb.post_bn, nb.acc) {
                (Some((lo, hi)), _) => (Fix::from_raw(lo), Fix::from_raw(hi)),
                (None, Some((lo, hi))) => (Fix::from_i32(lo), Fix::from_i32(hi)),
                (None, None) => unreachable!("fc_post always sets acc bounds"),
            };
            let level = level_bounds(&layer.activation, n, x, layer.out_precision);
            classify_constant(&layer.activation, level, n, &mut findings);
            next.push(mac_domain(level, layer.out_precision));
            bounds.push(NeuronBounds {
                level: Some(level),
                ..nb
            });
        }
        flush(report, layer_idx, &findings, cfg);
        layers.push(LayerBounds { neurons: bounds });
        cur = next;
    }

    // Output layer (pink path): the post-ACCU/BN value *is* the score.
    let out = &model.output;
    let layer_idx = model.hidden.len() + 1;
    let mut findings = LayerFindings::default();
    let mut bounds = Vec::with_capacity(out.neurons);
    let xnor = out.in_precision.is_binary() && out.weight_precision.is_binary();
    for n in 0..out.neurons {
        let weights = &out.weights[n * out.in_len..(n + 1) * out.in_len];
        let bias = out.bias.as_ref().map(|b| b[n]);
        let bn = out.bn.as_ref().map(|p| p[n]);
        let nb = fc_post(weights, &cur, bias, bn, xnor, cfg, n, &mut findings);
        let score = match (nb.post_bn, nb.acc) {
            (Some(raw), _) => raw,
            (None, Some((lo, hi))) => (Fix::from_i32(lo).raw(), Fix::from_i32(hi).raw()),
            (None, None) => unreachable!("fc_post always sets acc bounds"),
        };
        if score.0 == score.1 {
            findings.constant.push(n);
        }
        bounds.push(NeuronBounds {
            score: Some(score),
            ..nb
        });
    }
    flush(report, layer_idx, &findings, cfg);
    layers.push(LayerBounds { neurons: bounds });

    RangeAnalysis { layers }
}

/// The MAC + bias + optional BN portion shared by hidden and output
/// layers, with the per-neuron NPC014/015/018/019 classification.
#[allow(clippy::too_many_arguments)] // mirrors the FC layer's field set
fn fc_post(
    weights: &[i32],
    inputs: &[(i64, i64)],
    bias: Option<i32>,
    bn: Option<BnParams>,
    xnor: bool,
    cfg: &HwConfig,
    neuron: usize,
    findings: &mut LayerFindings,
) -> NeuronBounds {
    let parity = if xnor {
        // Every XNOR product is ±1: the sum of `in_len` odd terms plus
        // the bias has a fixed parity.
        Parity::of(i64::try_from(weights.len()).unwrap_or(0) + i64::from(bias.unwrap_or(0)))
    } else {
        Parity::Unknown
    };
    let fc = fc_neuron(weights, inputs, bias, parity);
    let width = signed_width(fc.env);
    if width > cfg.accumulator_bits {
        findings.overflow.push(neuron);
    }
    findings.max_width = findings.max_width.max(width);
    let post_bn = bn.map(|p| {
        let (lo, hi) = bn_bounds(&p, fc.acc);
        let (ulo, uhi) = (bn_unsaturated(&p, fc.acc.0), bn_unsaturated(&p, fc.acc.1));
        if ulo.min(uhi) < i128::from(netpu_arith::fixed::RAW_MIN)
            || ulo.max(uhi) > i128::from(netpu_arith::fixed::RAW_MAX)
        {
            findings.saturation.push(neuron);
        }
        if lo.raw() < i64::from(i32::MIN) || hi.raw() > i64::from(i32::MAX) {
            findings.comparator.push(neuron);
        }
        (lo.raw(), hi.raw())
    });
    NeuronBounds {
        acc: Some(fc.acc),
        post_bn,
        level: None,
        score: None,
    }
}

/// Classifies a collapsed level interval: dead threshold activations
/// feed NPC016, constant QUAN channels NPC017 (disjoint by activation
/// kind, so the two rules never double-report a neuron).
fn classify_constant(
    act: &LayerActivation,
    level: (i32, i32),
    neuron: usize,
    findings: &mut LayerFindings,
) {
    if level.0 != level.1 {
        return;
    }
    match act {
        LayerActivation::Sign { .. } | LayerActivation::MultiThreshold { .. } => {
            findings.dead.push(neuron);
        }
        LayerActivation::Relu { .. }
        | LayerActivation::Sigmoid { .. }
        | LayerActivation::Tanh { .. } => findings.constant.push(neuron),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_tightening_moves_mismatched_endpoints_inward() {
        assert_eq!(tighten_parity((-3, 4), Parity::Even), (-2, 4));
        assert_eq!(tighten_parity((-3, 4), Parity::Odd), (-3, 3));
        assert_eq!(tighten_parity((-3, 4), Parity::Unknown), (-3, 4));
        assert_eq!(tighten_parity((2, 2), Parity::Even), (2, 2));
    }

    #[test]
    fn signed_width_matches_twos_complement_ranges() {
        assert_eq!(signed_width((0, 0)), 1);
        assert_eq!(signed_width((-1, 0)), 1);
        assert_eq!(signed_width((0, 1)), 2);
        assert_eq!(signed_width((-128, 127)), 8);
        assert_eq!(signed_width((-129, 0)), 9);
        assert_eq!(signed_width((0, 128)), 9);
        assert_eq!(signed_width((i64::from(i32::MIN), i64::from(i32::MAX))), 32);
        assert_eq!(signed_width((0, i64::from(i32::MAX) + 1)), 33);
    }

    #[test]
    fn envelope_widens_on_transient_overflow() {
        // A huge positive product followed by a huge negative one: the
        // total fits 32 bits but a prefix does not, so the accumulator
        // interval must widen to the full register range.
        let weights = [1, 1];
        let big = i64::from(i32::MAX) + 1;
        let inputs = [(big, big), (-big, -big)];
        let fc = fc_neuron(&weights, &inputs, None, Parity::Unknown);
        assert_eq!(fc.acc, (i32::MIN, i32::MAX));
        assert!(signed_width(fc.env) > 32);
    }

    #[test]
    fn exact_sum_interval_when_envelope_fits() {
        let weights = [2, -3];
        let inputs = [(0, 10), (1, 4)];
        let fc = fc_neuron(&weights, &inputs, Some(5), Parity::Unknown);
        // products: [0,20] and [-12,-3]; total [-7, 22]. Prefix sums of
        // the bound sequence: (0,20) → (-12,17) → (-7,22), so the
        // envelope over all prefixes (incl. the empty one) is (-12, 22).
        assert_eq!(fc.acc, (-7, 22));
        assert_eq!(fc.env, (-12, 22));
    }

    #[test]
    fn xnor_parity_is_pinned_by_fan_in_and_bias() {
        // 3 bipolar products (odd) + even bias → odd accumulator.
        let weights = [1, -1, 1];
        let inputs = [(-1, 1), (-1, 1), (-1, 1)];
        let fc = fc_neuron(&weights, &inputs, Some(0), Parity::Odd);
        assert_eq!(fc.acc, (-3, 3));
        assert_eq!(Parity::of(i64::from(fc.acc.0)), Parity::Odd);
    }
}
