//! Static timing certification (tier four): a closed-form, cycle-exact
//! cost model of the accelerator derived from a decoded stream and the
//! instance configuration alone — no simulation.
//!
//! At bandwidth 1 (the canonical `run_inference_fast` setup) the stream
//! source holds every word from cycle 0 and the §III.B interleave
//! guarantees the top-level FSM never stalls, so the per-inference
//! cycle count is a *deterministic function* of the decoded layer
//! settings, the packing mode, and the instance geometry. This module
//! reconstructs that function phase by phase — header/settings ingest,
//! input ingest, parameter sections, neuron initialization, weight
//! ingest and lane dispatch, pipeline drain, write-out, and
//! inter-section resets — the same decomposition the fast path's
//! `BulkClocked` implementation skips through dynamically. The
//! `certify-timing` differential gate (DESIGN.md §4.9) pins the model
//! to the tick simulator with zero tolerance: predicted cycles equal
//! simulated cycles, exactly, on every admissible stream.
//!
//! On top of the cycle certificate the analysis derives steady-state
//! batch throughput (pre-packaged bursts pay one inter-loadable reset),
//! the §V cold/resident reconfiguration latencies under a DMA channel
//! model, and the NPC027–NPC031 diagnostics: the exact cycle
//! certificate (Info), per-layer pipeline-bottleneck attribution
//! (Info), folding slack (Info: a cheaper folding provably meets the
//! same latency), deadline infeasibility (Error, when the caller
//! declares a request deadline), and a DMA-bound vs compute-bound
//! classification (Info).

use crate::diag::{Report, RuleId, Severity};
use netpu_arith::{cast, ActivationKind};
use netpu_compiler::stream::{
    input_words, neuron_weight_words_mode, param_words, uses_xnor_path, weight_words_mode,
    weights_per_word,
};
use netpu_compiler::{Decoded, LayerSetting, LayerType, PackingMode};
use netpu_core::lpu::{PARAM_READ_WIDTH, PIPELINE_DEPTH};
use netpu_core::netpu::RESET_CYCLES;
use netpu_core::resources::netpu_utilization;
use netpu_core::HwConfig;

/// Off-chip DMA channel parameters for the §V transfer-latency half of
/// the analysis. Mirrors the runtime's `DmaModel` formulas exactly (the
/// checker cannot depend on the runtime crate, which sits above it), so
/// statically derived cold/resident figures agree bit-for-bit with the
/// driver's measured ones whenever the cycle prediction is exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaParams {
    /// Per-transfer setup + PS control overhead in microseconds.
    pub setup_us: f64,
    /// Sustained bandwidth in 64-bit words per accelerator clock cycle.
    pub words_per_cycle: f64,
}

impl Default for DmaParams {
    fn default() -> DmaParams {
        DmaParams::zynq_uls()
    }
}

impl DmaParams {
    /// The Zynq UltraScale+ PS/DMA path of the Ultra96-V2 (the Table VI
    /// − Table V gap, ≈5.9 µs per inference).
    pub fn zynq_uls() -> DmaParams {
        DmaParams {
            setup_us: 5.9,
            words_per_cycle: 1.0,
        }
    }

    /// An ideal channel: no setup, unlimited bandwidth.
    pub fn ideal() -> DmaParams {
        DmaParams {
            setup_us: 0.0,
            words_per_cycle: f64::INFINITY,
        }
    }

    /// Channel occupancy of one transfer: setup plus bandwidth-bound
    /// streaming time.
    pub fn occupancy_us(&self, stream_words: usize, clock_mhz: f64) -> f64 {
        self.setup_us + self.streaming_us(stream_words, clock_mhz)
    }

    /// Wall-clock latency of one inference: setup plus the larger of
    /// the pipeline time and the transfer time.
    pub fn measured_latency_us(
        &self,
        sim_latency_us: f64,
        stream_words: usize,
        clock_mhz: f64,
    ) -> f64 {
        self.setup_us + sim_latency_us.max(self.streaming_us(stream_words, clock_mhz))
    }

    fn streaming_us(&self, stream_words: usize, clock_mhz: f64) -> f64 {
        if self.words_per_cycle.is_finite() {
            cast::f64_from_usize(stream_words) / self.words_per_cycle / clock_mhz
        } else {
            0.0
        }
    }
}

/// Caller-declared context for the diagnostic half of the analysis: the
/// DMA channel the stream would arrive over and an optional end-to-end
/// latency deadline (NPC030 fires when the deadline is statically
/// infeasible).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimingSpec {
    /// DMA channel model for the cold/resident transfer figures.
    /// Defaults to [`DmaParams::zynq_uls`].
    pub dma: DmaParams,
    /// Declared request deadline on the cold end-to-end latency, µs.
    pub deadline_us: Option<f64>,
}

/// The pipeline phase a cycle is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingPhase {
    /// Parameter-section ingest (biases/BN pairs, activation tables).
    Params,
    /// Input-layer quantization of the ingested pixels.
    Input,
    /// Neuron Initialization: latching a batch's parameters.
    Init,
    /// Weight-word ingest from the Network Input FIFO (1 word/cycle).
    WeightIngest,
    /// Extra multiplier-lane dispatch subcycles beyond the ingest edge.
    WeightDispatch,
    /// Pipeline drain between a batch's last weight word and write-out.
    Drain,
    /// Write-out / MaxOut (plus SoftMax when enabled).
    WriteOut,
}

impl TimingPhase {
    /// Stable lowercase phase name for messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            TimingPhase::Params => "params",
            TimingPhase::Input => "input",
            TimingPhase::Init => "init",
            TimingPhase::WeightIngest => "weight-ingest",
            TimingPhase::WeightDispatch => "weight-dispatch",
            TimingPhase::Drain => "drain",
            TimingPhase::WriteOut => "write-out",
        }
    }
}

/// Closed-form per-layer cycle breakdown, phase by phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerTiming {
    /// Zero-based layer index.
    pub layer: usize,
    /// Parameter-section cycles (1 even when the section is empty — the
    /// section-entry edge still costs a cycle).
    pub param_cycles: u64,
    /// The Ready edge starting the layer's processing section.
    pub ready_cycles: u64,
    /// Input-layer pixel quantization cycles (input layer only).
    pub input_cycles: u64,
    /// Neuron Initialization cycles across all TNPU batches.
    pub init_cycles: u64,
    /// Weight-word ingest cycles (= weight words; 1 word per cycle).
    pub weight_ingest_cycles: u64,
    /// Extra lane-dispatch subcycles (0 under double buffering when one
    /// group covers the word).
    pub weight_dispatch_cycles: u64,
    /// Pipeline drain cycles across all batches.
    pub drain_cycles: u64,
    /// Write-out / MaxOut / SoftMax cycles across all batches.
    pub output_cycles: u64,
}

impl LayerTiming {
    /// Processing-section cycles (everything after the parameter
    /// section, including the Ready edge).
    pub fn process_cycles(&self) -> u64 {
        self.ready_cycles
            + self.input_cycles
            + self.init_cycles
            + self.weight_ingest_cycles
            + self.weight_dispatch_cycles
            + self.drain_cycles
            + self.output_cycles
    }

    /// All cycles attributed to this layer.
    pub fn total_cycles(&self) -> u64 {
        self.param_cycles + self.process_cycles()
    }

    /// The phase holding the largest share of this layer's cycles — the
    /// NPC028 bottleneck attribution. Ties break toward the earlier
    /// pipeline stage, deterministically.
    pub fn bottleneck(&self) -> (TimingPhase, u64) {
        let phases = [
            (TimingPhase::Params, self.param_cycles),
            (TimingPhase::Input, self.input_cycles),
            (TimingPhase::Init, self.init_cycles),
            (TimingPhase::WeightIngest, self.weight_ingest_cycles),
            (TimingPhase::WeightDispatch, self.weight_dispatch_cycles),
            (TimingPhase::Drain, self.drain_cycles),
            (TimingPhase::WriteOut, self.output_cycles),
        ];
        let mut best = phases[0];
        for p in phases {
            if p.1 > best.1 {
                best = p;
            }
        }
        best
    }
}

/// The full static timing certificate of one loadable on one instance:
/// an exact per-inference cycle count with its phase decomposition,
/// plus the derived throughput and §V transfer-latency figures. Keeps
/// the layer settings it was derived from so the NPC029 folding-slack
/// search (and the DSE pricer) can re-time alternative foldings without
/// the original stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamTiming {
    /// Header-word ingest (always 1).
    pub header_cycles: u64,
    /// Layer-setting ingest cycles (one per layer).
    pub settings_cycles: u64,
    /// Dataset-input ingest cycles (8 pixel lanes per word).
    pub input_ingest_cycles: u64,
    /// Inter-section reset cycles within one inference.
    pub reset_cycles: u64,
    /// Per-layer breakdown, in layer order.
    pub layers: Vec<LayerTiming>,
    /// Total stream words of the loadable.
    pub stream_words: usize,
    /// §V resident prefix: header + settings + input-section words (the
    /// part re-streamed when the weights stay resident on the board).
    pub resident_words: usize,
    /// The decoded layer settings the certificate was derived from.
    pub settings: Vec<LayerSetting>,
    /// The weight packing mode the certificate was derived under.
    pub packing: PackingMode,
}

impl StreamTiming {
    /// The exact per-inference cycle count — equal, by the
    /// `certify-timing` gate, to what `run_inference_fast` (and the
    /// tick path it mirrors) reports for this stream.
    pub fn total_cycles(&self) -> u64 {
        self.header_cycles
            + self.settings_cycles
            + self.input_ingest_cycles
            + self.reset_cycles
            + self
                .layers
                .iter()
                .map(LayerTiming::total_cycles)
                .sum::<u64>()
    }

    /// Steady-state cycles per inference inside a pre-packaged burst:
    /// one full inference plus the inter-loadable reset.
    pub fn steady_state_cycles(&self) -> u64 {
        self.total_cycles() + RESET_CYCLES
    }

    /// Exact cycle count of a pre-packaged burst of `inferences`
    /// back-to-back loadables of this shape (each pays the full
    /// per-inference cost; consecutive pairs pay one reset).
    pub fn burst_cycles(&self, inferences: u64) -> u64 {
        if inferences == 0 {
            return 0;
        }
        inferences * self.total_cycles() + (inferences - 1) * RESET_CYCLES
    }

    /// On-chip pipeline latency in microseconds at `clock_mhz`.
    pub fn latency_us(&self, clock_mhz: f64) -> f64 {
        cast::f64_from_u64(self.total_cycles()) / clock_mhz
    }

    /// Sustained steady-state throughput of an on-chip burst, frames
    /// per second at `clock_mhz` (DMA setup amortizes away over a long
    /// burst; bandwidth 1 word/cycle is already the simulated rate).
    pub fn steady_state_fps(&self, clock_mhz: f64) -> f64 {
        clock_mhz * 1e6 / cast::f64_from_u64(self.steady_state_cycles())
    }

    /// §V cold reconfiguration latency: DMA setup plus the larger of
    /// the pipeline time and the full-stream transfer time.
    pub fn cold_latency_us(&self, dma: &DmaParams, clock_mhz: f64) -> f64 {
        dma.measured_latency_us(self.latency_us(clock_mhz), self.stream_words, clock_mhz)
    }

    /// §V resident streaming latency: the weights stay on the board, so
    /// only the resident prefix (header + settings + input) re-streams.
    /// Mirrors the fleet cache's admission economics exactly.
    pub fn resident_latency_us(&self, dma: &DmaParams, clock_mhz: f64) -> f64 {
        let transfer = dma.occupancy_us(self.stream_words, clock_mhz);
        let resident_transfer = dma.occupancy_us(self.resident_words, clock_mhz);
        let weight_stream = (transfer - resident_transfer).max(0.0);
        (self.cold_latency_us(dma, clock_mhz) - weight_stream).max(resident_transfer)
    }

    /// `true` when the off-chip streaming time exceeds the on-chip
    /// pipeline time — the NPC031 DMA-bound classification.
    pub fn dma_bound(&self, dma: &DmaParams, clock_mhz: f64) -> bool {
        dma.occupancy_us(self.stream_words, clock_mhz) - dma.setup_us > self.latency_us(clock_mhz)
    }
}

/// Derives the timing certificate of a decoded loadable on `cfg`. The
/// result is exact for any stream the structural rules admit (the
/// decoder's reconstruction is section-faithful, and admissible streams
/// run stall-free at bandwidth 1).
pub fn analyze(decoded: &Decoded, cfg: &HwConfig) -> StreamTiming {
    analyze_settings(&decoded.settings, decoded.packing, cfg)
}

/// [`analyze`] from the layer settings and packing mode alone — the
/// per-inference cycle count depends on nothing else in the stream, so
/// design-space search can price a candidate folding without
/// recompiling the model.
pub fn analyze_settings(
    settings: &[LayerSetting],
    packing: PackingMode,
    cfg: &HwConfig,
) -> StreamTiming {
    let n_layers = settings.len();
    let input_len = settings
        .first()
        .map_or(0, |s| cast::usize_from_u32(s.neurons));
    let layers: Vec<LayerTiming> = settings
        .iter()
        .enumerate()
        .map(|(k, s)| layer_timing(k, s, packing, cfg))
        .collect();
    let stream_words = 1
        + n_layers
        + input_words(input_len)
        + settings
            .iter()
            .map(|s| param_words(s) + weight_words_mode(s, packing))
            .sum::<usize>();
    StreamTiming {
        header_cycles: 1,
        settings_cycles: cast::u64_from_usize(n_layers),
        input_ingest_cycles: cast::u64_from_usize(input_words(input_len)),
        reset_cycles: cast::u64_from_usize(n_layers.saturating_sub(1)) * RESET_CYCLES,
        layers,
        stream_words,
        resident_words: 1 + n_layers + input_words(input_len),
        settings: settings.to_vec(),
        packing,
    }
}

/// 32-bit activation-parameter words per neuron (mirrors the LPU's
/// Neuron Initialization read schedule).
fn act_u32s(setting: &LayerSetting) -> usize {
    match setting.activation {
        ActivationKind::Sign => 1,
        ActivationKind::MultiThreshold => setting.out_precision.multi_threshold_count(),
        _ => 2,
    }
}

/// Neuron Initialization cycles per neuron: one bias/BN read (FC
/// layers) plus the activation-table reads through the 128-bit
/// parameter port.
fn init_cycles_per_neuron(setting: &LayerSetting) -> u64 {
    let act_reads = if setting.layer_type == LayerType::Output {
        0
    } else {
        act_u32s(setting).div_ceil(PARAM_READ_WIDTH)
    };
    let bias_reads = usize::from(setting.layer_type != LayerType::Input);
    cast::u64_from_usize(act_reads + bias_reads)
}

/// Closed-form cycle cost of one layer on `cfg` (parameter section plus
/// processing section), phase by phase.
fn layer_timing(
    layer: usize,
    s: &LayerSetting,
    packing: PackingMode,
    cfg: &HwConfig,
) -> LayerTiming {
    let param_cycles = cast::u64_from_usize(param_words(s).max(1));
    let mut t = LayerTiming {
        layer,
        param_cycles,
        ready_cycles: 1,
        input_cycles: 0,
        init_cycles: 0,
        weight_ingest_cycles: 0,
        weight_dispatch_cycles: 0,
        drain_cycles: 0,
        output_cycles: 0,
    };
    let neurons = cast::usize_from_u32(s.neurons);
    if s.layer_type == LayerType::Input {
        // One read cycle, threshold-read cycles for the word's eight
        // pixels, one write cycle — per 64-bit input word.
        let per_word = 2 + cast::u64_from_usize((8 * act_u32s(s)).div_ceil(PARAM_READ_WIDTH));
        t.input_cycles = cast::u64_from_usize(neurons.div_ceil(8)) * per_word;
        return t;
    }
    let input_len = cast::usize_from_u32(s.input_len);
    let chunks = neuron_weight_words_mode(s, packing);
    let levels_per_word = if uses_xnor_path(s) {
        64
    } else {
        weights_per_word(s, packing)
    };
    let levels_per_group = if uses_xnor_path(s) {
        cfg.mul_lanes * 8
    } else {
        cfg.mul_lanes
    };
    // Per-neuron dispatch subcycles beyond the ingest edge: each chunk
    // needs ceil(span / lane-group) dispatch groups; double buffering
    // hides the first group behind the ingest cycle.
    let mut dispatch_per_neuron = 0u64;
    for chunk in 0..chunks {
        let span = ((chunk + 1) * levels_per_word).min(input_len) - chunk * levels_per_word;
        let groups = cast::u64_from_usize(span.div_ceil(levels_per_group));
        dispatch_per_neuron += if cfg.double_buffered_weights {
            groups - 1
        } else {
            groups
        };
    }
    t.weight_ingest_cycles = cast::u64_from_usize(neurons * chunks);
    t.weight_dispatch_cycles = cast::u64_from_usize(neurons) * dispatch_per_neuron;
    // Batch phases: neurons advance through the TNPUs `tnpus_per_lpu`
    // at a time; each batch pays initialization, drain, and write-out.
    let icpn = init_cycles_per_neuron(s);
    let softmax = u64::from(cfg.softmax_output);
    let mut start = 0usize;
    while start < neurons {
        let batch = (start + cfg.tnpus_per_lpu).min(neurons) - start;
        let b = cast::u64_from_usize(batch);
        t.init_cycles += (icpn * b).max(1);
        t.drain_cycles += PIPELINE_DEPTH;
        t.output_cycles += if s.layer_type == LayerType::Output {
            b * (1 + softmax)
        } else {
            cast::u64_from_usize(batch.div_ceil(8))
        }
        .max(1);
        start += batch;
    }
    t
}

/// Emits the NPC027–NPC031 diagnostics for a derived timing
/// certificate. Timing-family findings never gate structural admission
/// ([`Report::has_structural_errors`] excludes them); NPC030 is the one
/// error-severity member and fires only under a declared deadline.
pub fn report_timing(t: &StreamTiming, cfg: &HwConfig, spec: &TimingSpec, report: &mut Report) {
    let clock = cfg.clock_mhz;
    let total = t.total_cycles();
    let cold = t.cold_latency_us(&spec.dma, clock);
    let resident = t.resident_latency_us(&spec.dma, clock);
    // NPC027 — the exact cycle certificate.
    report.push(
        RuleId::Npc027,
        Severity::Info,
        None,
        None,
        format!(
            "exact cycle certificate: {total} cycles/inference ({:.2} us at {clock} MHz), \
             steady-state {} cycles ({:.0} fps); cold {cold:.2} us / resident {resident:.2} us",
            t.latency_us(clock),
            t.steady_state_cycles(),
            t.steady_state_fps(clock),
        ),
    );
    // NPC028 — per-layer bottleneck attribution.
    for layer in &t.layers {
        let (phase, cycles) = layer.bottleneck();
        report.push(
            RuleId::Npc028,
            Severity::Info,
            None,
            Some(layer.layer),
            format!(
                "pipeline bottleneck: {} ({cycles} of {} layer cycles)",
                phase.name(),
                layer.total_cycles(),
            ),
        );
    }
    // NPC029 — folding slack: a strictly cheaper folding of the same
    // instance family that provably meets the identical cycle count.
    if let Some((folded, saved_luts, saved_dsps)) = folding_slack(t, cfg) {
        report.push(
            RuleId::Npc029,
            Severity::Info,
            None,
            None,
            format!(
                "folding slack: a {}x{}-TNPU / {}-lane folding meets the same {total}-cycle \
                 latency (saves {saved_luts} LUTs, {saved_dsps} DSPs)",
                folded.lpus, folded.tnpus_per_lpu, folded.mul_lanes,
            ),
        );
    }
    // NPC030 — deadline infeasibility (the only error in the family).
    if let Some(deadline) = spec.deadline_us {
        if cold > deadline {
            report.push(
                RuleId::Npc030,
                Severity::Error,
                None,
                None,
                format!(
                    "deadline infeasible: predicted end-to-end latency {cold:.2} us exceeds \
                     the declared {deadline:.2} us deadline on every admissible schedule"
                ),
            );
        }
    }
    // NPC031 — DMA-bound vs compute-bound classification.
    let streaming = spec.dma.occupancy_us(t.stream_words, clock) - spec.dma.setup_us;
    let pipeline = t.latency_us(clock);
    let class = if t.dma_bound(&spec.dma, clock) {
        "DMA-bound"
    } else {
        "compute-bound"
    };
    report.push(
        RuleId::Npc031,
        Severity::Info,
        None,
        None,
        format!(
            "{class}: stream transfer {streaming:.2} us vs pipeline {pipeline:.2} us \
             ({} of {total} cycles consume a stream word)",
            t.stream_words,
        ),
    );
}

/// Searches the `(tnpus_per_lpu, mul_lanes)` sub-foldings of `cfg` for
/// the cheapest one whose predicted cycle count equals the baseline's.
/// Returns the folded config and its LUT/DSP savings, or `None` when
/// the current folding is already tight for this stream. "Provably
/// meets the same latency" is literal: both sides are the certified
/// closed form, re-priced from the certificate's settings snapshot.
pub fn folding_slack(t: &StreamTiming, cfg: &HwConfig) -> Option<(HwConfig, u64, u64)> {
    let base_total = t.total_cycles();
    let base_util = netpu_utilization(cfg);
    let mut best: Option<(HwConfig, u64, u64)> = None;
    for tnpus in 1..=cfg.tnpus_per_lpu {
        for lanes in 1..=cfg.mul_lanes {
            if tnpus == cfg.tnpus_per_lpu && lanes == cfg.mul_lanes {
                continue;
            }
            let cand = HwConfig {
                tnpus_per_lpu: tnpus,
                mul_lanes: lanes,
                ..*cfg
            };
            if cand.validate().is_err() {
                continue;
            }
            if analyze_settings(&t.settings, t.packing, &cand).total_cycles() != base_total {
                continue;
            }
            let util = netpu_utilization(&cand);
            if util.luts > base_util.luts || util.dsps > base_util.dsps {
                continue;
            }
            let saved_luts = base_util.luts - util.luts;
            let saved_dsps = base_util.dsps - util.dsps;
            if saved_luts == 0 && saved_dsps == 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, l, d)) => saved_luts > *l || (saved_luts == *l && saved_dsps > *d),
            };
            if better {
                best = Some((cand, saved_luts, saved_dsps));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_compiler::{batch_stream, compile, compile_packed, decode};
    use netpu_core::run_inference_fast;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::{random_model, ZooModel};

    fn configs() -> Vec<HwConfig> {
        let paper = HwConfig::paper_instance();
        vec![
            paper,
            HwConfig {
                tnpus_per_lpu: 3,
                mul_lanes: 2,
                ..paper
            },
            HwConfig {
                double_buffered_weights: true,
                softmax_output: true,
                ..paper
            },
        ]
    }

    #[test]
    fn predicted_cycles_match_simulator_on_zoo() {
        for cfg in configs() {
            for zoo in ZooModel::ALL {
                for mode in [BnMode::Folded, BnMode::Hardware] {
                    let model = zoo.build_untrained(7, mode).unwrap();
                    let pixels = vec![0u8; model.input.len];
                    let loadable = compile(&model, &pixels).unwrap();
                    let t = analyze(&decode(&loadable.words).unwrap(), &cfg);
                    let run = run_inference_fast(&cfg, loadable.words.clone()).unwrap();
                    assert_eq!(t.total_cycles(), run.cycles, "{zoo:?}/{mode:?} on {cfg:?}");
                    assert_eq!(t.stream_words, loadable.words.len());
                    let resident = loadable.layout.header.len()
                        + loadable.layout.settings.len()
                        + loadable.layout.input.len();
                    assert_eq!(t.resident_words, resident);
                }
            }
        }
    }

    #[test]
    fn predicted_cycles_match_simulator_on_random_models() {
        for seed in 0..40u64 {
            let model = random_model(seed);
            let pixels = vec![0u8; model.input.len];
            let loadable = compile(&model, &pixels).unwrap();
            let cfg = HwConfig::paper_instance();
            let predicted = crate::predict_cycles(&loadable.words, &cfg).unwrap();
            let run = run_inference_fast(&cfg, loadable.words).unwrap();
            assert_eq!(predicted, run.cycles, "random model seed {seed}");
        }
    }

    #[test]
    fn predicted_cycles_match_simulator_under_dense_packing() {
        let cfg = HwConfig {
            dense_weight_packing: true,
            ..HwConfig::paper_instance()
        };
        for seed in 0..10u64 {
            let model = random_model(seed);
            let pixels = vec![0u8; model.input.len];
            let loadable = compile_packed(&model, &pixels, PackingMode::Dense).unwrap();
            let predicted = crate::predict_cycles(&loadable.words, &cfg).unwrap();
            let run = run_inference_fast(&cfg, loadable.words).unwrap();
            assert_eq!(predicted, run.cycles, "dense random model seed {seed}");
        }
    }

    #[test]
    fn burst_cycles_match_simulator_on_batch_stream() {
        let cfg = HwConfig::paper_instance();
        let model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        let inputs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; model.input.len]).collect();
        let words = batch_stream(&model, &inputs, PackingMode::Lanes8).unwrap();
        let single = compile(&model, &inputs[0]).unwrap();
        let t = analyze(&decode(&single.words).unwrap(), &cfg);
        let run = run_inference_fast(&cfg, words).unwrap();
        assert_eq!(t.burst_cycles(3), run.cycles);
    }

    #[test]
    fn folding_slack_candidates_are_simulation_exact() {
        // When the search reports slack, the claim must hold in the
        // simulator too, not just in the model's own arithmetic.
        let model = ZooModel::TfcW1A1
            .build_untrained(5, BnMode::Folded)
            .unwrap();
        let pixels = vec![0u8; model.input.len];
        let loadable = compile(&model, &pixels).unwrap();
        let cfg = HwConfig::paper_instance();
        let t = analyze(&decode(&loadable.words).unwrap(), &cfg);
        if let Some((cand, _, _)) = folding_slack(&t, &cfg) {
            let base = run_inference_fast(&cfg, loadable.words.clone()).unwrap();
            let folded = run_inference_fast(&cand, loadable.words).unwrap();
            assert_eq!(base.cycles, folded.cycles);
        }
    }

    #[test]
    fn dma_params_mirror_runtime_model() {
        let dma = DmaParams::zynq_uls();
        // 1000 words at 100 MHz and 1 word/cycle stream in 10 us.
        let occ = dma.occupancy_us(1000, 100.0);
        assert!((occ - 15.9).abs() < 1e-9);
        let ideal = DmaParams::ideal();
        assert_eq!(ideal.occupancy_us(1000, 100.0), 0.0);
        assert_eq!(ideal.measured_latency_us(42.0, 1000, 100.0), 42.0);
    }
}
