//! Translation validation: bit-precise symbolic equivalence of a
//! compiled stream against its claimed `netpu-nn` source model.
//!
//! The structural rules (NPC001–NPC013) prove a loadable is *runnable*;
//! the range analyzer (NPC014–NPC020) proves it is *numerically safe*.
//! Neither proves the property the paper's toolflow actually promises:
//! that the reconfigured datapath computes **exactly** the source MLP.
//! This module closes that gap with a per-output-neuron equivalence
//! decision between the decoded datapath and the reference forward
//! function (DESIGN.md §4.8).
//!
//! # Symbolic domain and canonical form
//!
//! Every datapath value is canonicalized rather than enumerated:
//!
//! * **Accumulators** are exact integer-affine terms. Stream weights
//!   are 8-bit lanes (|w| ≤ 128), layers are capped at 8192 inputs and
//!   MAC operands at |x| ≤ 509, so the per-term clamp in
//!   [`netpu_nn::reference::accumulate`] is unreachable for any
//!   decodeable stream and the affine form is exact in `i64`.
//! * **Post-accumulator stages** (BN → threshold/QUAN) are monotone
//!   maps from the accumulator to a small output-level alphabet. Each
//!   neuron's stage is canonicalized to its exact *step form*: the
//!   ascending accumulator boundaries at which the output level
//!   changes, recovered by bisection over the reachable accumulator
//!   interval. Two neurons are equivalent iff their step forms agree on
//!   that interval — regardless of how thresholds or folded BN
//!   parameters are encoded.
//! * **Output scores** stay in the Q32.5 fixed-point domain; the
//!   bias/BN affine is compared at a canonical probe set plus the
//!   analytically-derived crossing points of the two parameterizations.
//!
//! Canonicalization only ever *queries* the concrete reference
//! semantics, so two bit-identical functions always produce identical
//! canonical forms: an honest compile can never be reported
//! inequivalent. Divergences are reported only at concretely evaluated
//! points, so every inequivalence finding is witnessed by construction.
//!
//! # Rule catalog
//!
//! | rule | severity | meaning |
//! |------|----------|---------|
//! | NPC021 | error | layer shape/semantics mismatch (count, width, precision, activation kind) |
//! | NPC022 | error | output-neuron inequivalence, with a concrete distinguishing input when one is found |
//! | NPC023 | warning | threshold/BN fold drift: encodings differ, no reachable divergence |
//! | NPC024 | error | weight rows are a permutation of the source rows |
//! | NPC025 | warning | provably-dead output slice under MaxOut |
//! | NPC026 | info | exact minimal accumulator width, tightening NPC019 |

use crate::diag::{Report, RuleId, Severity};
use netpu_arith::{cast, Fix, Precision};
use netpu_compiler::{compile, decode, Loadable, StreamError};
use netpu_core::HwConfig;
use netpu_nn::qmodel::{LayerActivation, QuantMlp};
use netpu_nn::reference;

/// Random-probe budget of the end-to-end witness search.
const WITNESS_RANDOM_TRIES: usize = 256;
/// Coordinate-descent passes of the witness search.
const WITNESS_CLIMB_PASSES: usize = 2;
/// Pixel coordinates examined per climb pass (bounds search cost on
/// wide input layers).
const WITNESS_CLIMB_COORDS: usize = 256;
/// Stratified interior probes of the output-score comparison.
const SCORE_PROBES: i64 = 61;
/// Certificate format version.
pub const CERTIFICATE_VERSION: u32 = 1;

/// A concrete distinguishing input: running the source model and the
/// decoded stream model on `pixels` produces different output scores.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    /// Zero-based stream layer index where the divergence was located.
    pub layer: usize,
    /// Neuron index within that layer.
    pub neuron: usize,
    /// The distinguishing input, one 8-bit value per input element.
    pub pixels: Vec<u8>,
}

/// The re-checkable summary a certification run emits alongside a
/// loadable. Equivalence holds exactly when the two canonical-form
/// digests agree; [`Certificate::validate`] recomputes both from
/// scratch so a stored certificate cannot go stale silently.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Format version ([`CERTIFICATE_VERSION`]).
    pub version: u32,
    /// FNV-1a digest of the source model's canonical forms.
    pub model_digest: u64,
    /// FNV-1a digest of the decoded stream's canonical forms.
    pub stream_digest: u64,
    /// Layer count both sides agreed on.
    pub layers: usize,
    /// Exact minimal accumulator width of the compiled datapath, in
    /// bits (the NPC026 answer).
    pub min_accumulator_bits: u8,
}

impl Certificate {
    /// `true` when the certified stream is equivalent to its source.
    pub fn is_equivalent(&self) -> bool {
        self.model_digest == self.stream_digest
    }

    /// Re-runs the full certification and checks that the stored
    /// digests still describe `(model, words)`. Returns `false` for a
    /// stale, forged, or mismatched certificate.
    pub fn validate(&self, model: &QuantMlp, words: &[u64], cfg: &HwConfig) -> bool {
        let fresh = certify(model, words, cfg);
        match fresh.certificate {
            Some(c) => {
                c.model_digest == self.model_digest
                    && c.stream_digest == self.stream_digest
                    && c.layers == self.layers
                    && c.min_accumulator_bits == self.min_accumulator_bits
                    && self.version == CERTIFICATE_VERSION
            }
            None => false,
        }
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "certificate v{}: {} layers, model {:016x} / stream {:016x} ({}), min acc width {} bits",
            self.version,
            self.layers,
            self.model_digest,
            self.stream_digest,
            if self.is_equivalent() {
                "equivalent"
            } else {
                "INEQUIVALENT"
            },
            self.min_accumulator_bits,
        )
    }
}

/// Everything one certification run produced.
#[derive(Clone, PartialEq, Debug)]
pub struct CertifyOutcome {
    /// NPC021–NPC026 findings (empty report == fully equivalent with
    /// nothing to note).
    pub report: Report,
    /// The certificate, present whenever both sides decoded and shaped
    /// up well enough to canonicalize (even for inequivalent pairs, so
    /// callers can log both digests).
    pub certificate: Option<Certificate>,
    /// Concrete distinguishing inputs backing NPC022/NPC024 findings.
    pub witnesses: Vec<Witness>,
}

impl CertifyOutcome {
    /// `true` when no equivalence-rule error fired.
    pub fn is_equivalent(&self) -> bool {
        !self.report.has_equiv_errors()
    }
}

/// Errors from [`compile_certified`].
#[derive(Clone, PartialEq, Debug)]
pub enum CertifyError {
    /// The compiler refused the model/input pair.
    Stream(StreamError),
    /// The freshly compiled stream failed its own certification — a
    /// compiler bug by definition; the report carries the findings.
    Inequivalent(Report),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Stream(e) => write!(f, "compile failed: {e}"),
            CertifyError::Inequivalent(r) => write!(f, "self-certification failed: {r}"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Compiles `model` and certifies the emitted stream against it in one
/// step — the "compiler emits a certificate alongside every loadable"
/// entry point. An [`CertifyError::Inequivalent`] return means the
/// compiler itself miscompiled, which the translation-validation suite
/// asserts never happens.
pub fn compile_certified(
    model: &QuantMlp,
    pixels: &[u8],
    cfg: &HwConfig,
) -> Result<(Loadable, Certificate), CertifyError> {
    let loadable = compile(model, pixels).map_err(CertifyError::Stream)?;
    let outcome = certify(model, &loadable.words, cfg);
    match outcome.certificate {
        Some(cert) if outcome.is_equivalent() => Ok((loadable, cert)),
        _ => Err(CertifyError::Inequivalent(outcome.report)),
    }
}

/// Certifies that `words` computes exactly `model` on the configured
/// instance. See the module docs for the decision procedure; the
/// outcome's report carries only NPC021–NPC026 findings.
pub fn certify(model: &QuantMlp, words: &[u64], cfg: &HwConfig) -> CertifyOutcome {
    let mut report = Report::default();
    let mut witnesses = Vec::new();
    if model.validate().is_err() {
        report.push(
            RuleId::Npc021,
            Severity::Error,
            None,
            None,
            "claimed source model fails validation".into(),
        );
        return CertifyOutcome {
            report,
            certificate: None,
            witnesses,
        };
    }
    let decoded = match decode(words) {
        Ok(d) => d,
        Err(e) => {
            report.push(
                RuleId::Npc021,
                Severity::Error,
                Some(0),
                None,
                format!("stream does not decode to a model: {e}"),
            );
            return CertifyOutcome {
                report,
                certificate: None,
                witnesses,
            };
        }
    };
    let dec = &decoded.model;
    if !shapes_match(model, dec, &mut report) {
        return CertifyOutcome {
            report,
            certificate: None,
            witnesses,
        };
    }

    let domain = pixel_domain(decoded.input_range);
    let src_sem = canonicalize(model, domain);
    let dec_sem = canonicalize(dec, domain);

    compare(
        model,
        dec,
        &src_sem,
        &dec_sem,
        domain,
        &decoded.pixels,
        &mut report,
        &mut witnesses,
    );
    dead_output_slices(&dec_sem, &mut report);
    if dec_sem.min_width < cfg.accumulator_bits {
        report.push(
            RuleId::Npc026,
            Severity::Info,
            None,
            None,
            format!(
                "exact minimal accumulator width is {} bits; instance generated with {}",
                dec_sem.min_width, cfg.accumulator_bits
            ),
        );
    }

    let certificate = Certificate {
        version: CERTIFICATE_VERSION,
        model_digest: src_sem.digest,
        stream_digest: dec_sem.digest,
        layers: model.layer_count(),
        min_accumulator_bits: dec_sem.min_width,
    };
    CertifyOutcome {
        report,
        certificate: Some(certificate),
        witnesses,
    }
}

/// The admissible pixel domain: the stream's declared input range when
/// it is well-formed, the full 8-bit range otherwise (mirroring the
/// range analyzer's NPC020 fallback).
fn pixel_domain(declared: Option<(u8, u8)>) -> (u8, u8) {
    match declared {
        Some((lo, hi)) if lo <= hi => (lo, hi),
        _ => (0, u8::MAX),
    }
}

// ---------------------------------------------------------------------
// Canonical forms
// ---------------------------------------------------------------------

/// Exact step form of one neuron's monotone post-accumulator stage over
/// the reachable accumulator interval `[lo, hi]`: the output level at
/// `lo` plus every `(first_input, new_level)` change point, ascending.
#[derive(Clone, PartialEq, Eq, Debug)]
struct StepForm {
    lo: i64,
    hi: i64,
    base: i32,
    steps: Vec<(i64, i32)>,
}

impl StepForm {
    /// Smallest and largest output level the form takes.
    fn level_range(&self) -> (i32, i32) {
        let mut lo = self.base;
        let mut hi = self.base;
        for &(_, v) in &self.steps {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Every probe point needed to distinguish this form from another:
    /// the interval endpoints and both sides of each change point.
    fn probes(&self, out: &mut Vec<i64>) {
        out.push(self.lo);
        out.push(self.hi);
        for &(at, _) in &self.steps {
            out.push(at - 1);
            out.push(at);
        }
    }

    fn digest(&self, h: &mut u64) {
        fnv(h, word(self.lo));
        fnv(h, word(self.hi));
        fnv(h, word(i64::from(self.base)));
        for &(at, v) in &self.steps {
            fnv(h, word(at));
            fnv(h, word(i64::from(v)));
        }
    }
}

/// Recovers the exact step form of `f` over `[lo, hi]` by bisection.
/// Exact for monotone `f` (every post stage composed of BN and a
/// threshold/QUAN activation is monotone in the accumulator);
/// conservative — but still deterministic in `f`'s values, so equal
/// functions always canonicalize identically — otherwise.
fn step_form(f: &dyn Fn(i64) -> i32, lo: i64, hi: i64) -> StepForm {
    let base = f(lo);
    let mut steps = Vec::new();
    if hi > lo {
        collect_steps(f, lo, hi, base, f(hi), &mut steps);
    }
    StepForm {
        lo,
        hi,
        base,
        steps,
    }
}

fn collect_steps(
    f: &dyn Fn(i64) -> i32,
    lo: i64,
    hi: i64,
    flo: i32,
    fhi: i32,
    out: &mut Vec<(i64, i32)>,
) {
    if flo == fhi {
        return;
    }
    if lo + 1 == hi {
        out.push((hi, fhi));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let fmid = f(mid);
    collect_steps(f, lo, mid, flo, fmid, out);
    collect_steps(f, mid, hi, fmid, fhi, out);
}

/// Canonical summary of one model over the pixel domain: per-layer step
/// forms, exact accumulator envelopes, output-score probes, and the
/// digest over all of it.
struct ModelSem {
    /// Step form per input-layer element.
    input: Vec<StepForm>,
    /// Per hidden layer: reachable accumulator interval and step form
    /// per neuron.
    hidden: Vec<Vec<(i64, i64, StepForm)>>,
    /// Reachable accumulator interval per output neuron.
    out_acc: Vec<(i64, i64)>,
    /// Raw Q32.5 score interval per output class.
    scores: Vec<(i64, i64)>,
    /// Exact minimal accumulator width over every FC layer's prefix
    /// envelope, in bits.
    min_width: u8,
    /// FNV-1a digest of every canonical form above.
    digest: u64,
}

fn fnv(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn word(v: i64) -> u64 {
    u64::from_ne_bytes(v.to_le_bytes())
}

/// Maps an output-level interval into the domain the next MAC consumes
/// (bipolar `2l − 1` for binary producers, the unsigned level
/// otherwise). Monotone, so endpoint images are exact.
fn mac_interval((lo, hi): (i32, i32), precision: Precision) -> (i64, i64) {
    if precision.is_binary() {
        (2 * i64::from(lo) - 1, 2 * i64::from(hi) - 1)
    } else {
        (i64::from(lo), i64::from(hi))
    }
}

/// Exact reachable interval and prefix-envelope width of one neuron's
/// accumulator: per-term extremes are independently attainable (each
/// input element ranges freely), so the running min/max of the term
/// sequence — bias last, mirroring the accumulate order — is attained
/// by a concrete input, making the width exact rather than just sound.
fn fc_envelope(weights: &[i32], inputs: &[(i64, i64)], bias: Option<i32>) -> ((i64, i64), u8) {
    let mut lo = 0i64;
    let mut hi = 0i64;
    let mut width = 1u8;
    for (&w, &(xlo, xhi)) in weights.iter().zip(inputs) {
        let a = i64::from(w) * xlo;
        let b = i64::from(w) * xhi;
        lo += a.min(b);
        hi += a.max(b);
        width = width.max(signed_width(lo, hi));
    }
    if let Some(b) = bias {
        lo += i64::from(b);
        hi += i64::from(b);
        width = width.max(signed_width(lo, hi));
    }
    ((lo, hi), width)
}

/// Two's-complement bit width covering every value in `[lo, hi]`.
fn signed_width(lo: i64, hi: i64) -> u8 {
    let need = |v: i64| -> u32 {
        if v >= 0 {
            65 - v.leading_zeros()
        } else {
            65 - (!v).leading_zeros()
        }
    };
    cast::u8_sat(u64::from(need(lo).max(need(hi)).max(1)))
}

/// Evaluates one hidden/input neuron's post stage at accumulator `acc`.
fn post_at(
    act: &LayerActivation,
    bn: Option<netpu_nn::qmodel::BnParams>,
    neuron: usize,
    acc: i64,
    out: Precision,
) -> i32 {
    reference::neuron_post(act, bn, neuron, cast::i32_sat(acc), out)
}

/// Evaluates one output neuron's score at accumulator `acc` (before
/// bias/BN), returning the raw Q32.5 word.
fn score_at(layer: &netpu_nn::qmodel::OutputLayer, neuron: usize, acc: i64) -> i64 {
    let mut a = cast::i32_sat(acc);
    if let Some(b) = layer.bias.as_ref() {
        a = reference::accumulate(a, i64::from(b[neuron]));
    }
    let mut x = Fix::from_i32(a);
    if let Some(p) = layer.bn.as_ref() {
        x = p[neuron].apply(x);
    }
    x.raw()
}

fn canonicalize(mlp: &QuantMlp, (plo, phi): (u8, u8)) -> ModelSem {
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    // Input layer: one step form per element over the pixel domain.
    let mut input = Vec::with_capacity(mlp.input.len);
    let mut mac: Vec<(i64, i64)> = Vec::with_capacity(mlp.input.len);
    let first_in = mlp
        .hidden
        .first()
        .map(|h| h.in_precision)
        .unwrap_or(mlp.output.in_precision);
    for i in 0..mlp.input.len {
        let act = &mlp.input.activation;
        let out = mlp.input.out_precision;
        let f = |p: i64| act.apply(i, Fix::from_i32(cast::i32_sat(p)), out);
        let form = step_form(&f, i64::from(plo), i64::from(phi));
        form.digest(&mut digest);
        mac.push(mac_interval(form.level_range(), first_in));
        input.push(form);
    }

    let mut min_width = 1u8;
    let mut hidden = Vec::with_capacity(mlp.hidden.len());
    for (k, layer) in mlp.hidden.iter().enumerate() {
        let mut neurons = Vec::with_capacity(layer.neurons);
        let mut next_mac = Vec::with_capacity(layer.neurons);
        let next_in = mlp
            .hidden
            .get(k + 1)
            .map(|h| h.in_precision)
            .unwrap_or(mlp.output.in_precision);
        for n in 0..layer.neurons {
            let row = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let ((alo, ahi), w) = fc_envelope(row, &mac, bias);
            min_width = min_width.max(w);
            for &wv in row {
                fnv(&mut digest, word(i64::from(wv)));
            }
            let bn = layer.bn.as_ref().map(|p| p[n]);
            let act = &layer.activation;
            let out = layer.out_precision;
            let f = |acc: i64| post_at(act, bn, n, acc, out);
            let form = step_form(&f, alo, ahi);
            form.digest(&mut digest);
            next_mac.push(mac_interval(form.level_range(), next_in));
            neurons.push((alo, ahi, form));
        }
        mac = next_mac;
        hidden.push(neurons);
    }

    // Output layer: accumulator envelopes and score probes.
    let mut out_acc = Vec::with_capacity(mlp.output.neurons);
    let mut scores = Vec::with_capacity(mlp.output.neurons);
    for n in 0..mlp.output.neurons {
        let row = &mlp.output.weights[n * mlp.output.in_len..(n + 1) * mlp.output.in_len];
        // Output bias flows through `score_at`, not the envelope, so
        // the probe domain is the pre-bias accumulator.
        let ((alo, ahi), w) = fc_envelope(row, &mac, None);
        min_width = min_width.max(
            w.max(signed_width(
                alo + mlp
                    .output
                    .bias
                    .as_ref()
                    .map_or(0, |b| i64::from(b[n]).min(0)),
                ahi + mlp
                    .output
                    .bias
                    .as_ref()
                    .map_or(0, |b| i64::from(b[n]).max(0)),
            )),
        );
        for &wv in row {
            fnv(&mut digest, word(i64::from(wv)));
        }
        for p in canonical_probes(alo, ahi) {
            fnv(&mut digest, word(score_at(&mlp.output, n, p)));
        }
        let s_lo = score_at(&mlp.output, n, alo);
        let s_hi = score_at(&mlp.output, n, ahi);
        scores.push((s_lo.min(s_hi), s_lo.max(s_hi)));
        out_acc.push((alo, ahi));
    }

    ModelSem {
        input,
        hidden,
        out_acc,
        scores,
        min_width,
        digest,
    }
}

/// The canonical probe set for an output neuron's score affine over
/// `[lo, hi]`: endpoints, their neighbours, zero when reachable, and a
/// stratified interior sweep. A pure function of the interval, so both
/// sides of a comparison (and both digests) probe identical points.
fn canonical_probes(lo: i64, hi: i64) -> Vec<i64> {
    let mut probes = vec![lo, hi, lo + 1, hi - 1];
    if lo <= 0 && 0 <= hi {
        probes.push(0);
    }
    let span = hi.saturating_sub(lo);
    if span > 2 {
        for k in 1..SCORE_PROBES {
            probes.push(lo + span / SCORE_PROBES * k);
        }
    }
    probes.retain(|p| (lo..=hi).contains(p));
    probes.sort_unstable();
    probes.dedup();
    probes
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

fn shapes_match(src: &QuantMlp, dec: &QuantMlp, report: &mut Report) -> bool {
    let mut ok = true;
    let mut flag = |layer: usize, msg: String, ok: &mut bool| {
        report.push(RuleId::Npc021, Severity::Error, None, Some(layer), msg);
        *ok = false;
    };
    if src.layer_count() != dec.layer_count() {
        flag(
            0,
            format!(
                "layer count mismatch: source {}, stream {}",
                src.layer_count(),
                dec.layer_count()
            ),
            &mut ok,
        );
        return false;
    }
    if src.input.len != dec.input.len
        || src.input.out_precision != dec.input.out_precision
        || src.input.activation.kind() != dec.input.activation.kind()
    {
        flag(0, "input layer shape/semantics mismatch".into(), &mut ok);
    }
    for (k, (s, d)) in src.hidden.iter().zip(&dec.hidden).enumerate() {
        if s.in_len != d.in_len
            || s.neurons != d.neurons
            || s.weight_precision != d.weight_precision
            || s.in_precision != d.in_precision
            || s.out_precision != d.out_precision
            || s.activation.kind() != d.activation.kind()
        {
            flag(
                k + 1,
                format!("hidden layer {k} shape/semantics mismatch"),
                &mut ok,
            );
        }
    }
    if src.output.in_len != dec.output.in_len
        || src.output.neurons != dec.output.neurons
        || src.output.weight_precision != dec.output.weight_precision
        || src.output.in_precision != dec.output.in_precision
    {
        flag(
            src.layer_count() - 1,
            "output layer shape/semantics mismatch".into(),
            &mut ok,
        );
    }
    ok
}

/// Per-neuron parameter row used for exact-encoding comparison and the
/// NPC024 permutation check: the weight row, the bias/BN words, and the
/// activation parameters, all as raw integers.
fn neuron_row(
    weights: &[i32],
    in_len: usize,
    bias: &Option<Vec<i32>>,
    bn: &Option<Vec<netpu_nn::qmodel::BnParams>>,
    act: Option<&LayerActivation>,
    n: usize,
) -> Vec<i64> {
    let mut row: Vec<i64> = weights[n * in_len..(n + 1) * in_len]
        .iter()
        .map(|&w| i64::from(w))
        .collect();
    row.push(i64::MIN + 1); // section marker
    if let Some(b) = bias {
        row.push(i64::from(b[n]));
    }
    if let Some(p) = bn {
        row.push(i64::from(p[n].scale_q16));
        row.push(p[n].offset.raw());
    }
    row.push(i64::MIN + 2);
    if let Some(a) = act {
        match a {
            LayerActivation::Sign { thresholds } => row.push(thresholds[n].raw()),
            LayerActivation::MultiThreshold { thresholds } => {
                row.extend(thresholds[n].iter().map(|t| t.raw()));
            }
            LayerActivation::Relu { quant }
            | LayerActivation::Sigmoid { quant }
            | LayerActivation::Tanh { quant } => {
                row.push(quant.scale.raw());
                row.push(quant.offset.raw());
            }
        }
    }
    row
}

/// `true` when the two layers' neuron rows are equal as multisets but
/// not pointwise — the signature of a row-interleave/packing bug.
fn is_permutation(src_rows: &[Vec<i64>], dec_rows: &[Vec<i64>]) -> bool {
    if src_rows == dec_rows {
        return false;
    }
    let mut a = src_rows.to_vec();
    let mut b = dec_rows.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

struct LayerDiff {
    layer: usize,
    neuron: usize,
    rule: RuleId,
    detail: String,
}

#[allow(clippy::too_many_arguments)]
fn compare(
    src: &QuantMlp,
    dec: &QuantMlp,
    src_sem: &ModelSem,
    dec_sem: &ModelSem,
    domain: (u8, u8),
    hint: &[u8],
    report: &mut Report,
    witnesses: &mut Vec<Witness>,
) {
    let mut diffs: Vec<LayerDiff> = Vec::new();
    let mut drift: Vec<(usize, String)> = Vec::new();

    // Input layer: pointwise step-form comparison.
    for i in 0..src.input.len {
        let sf = &src_sem.input[i];
        let df = &dec_sem.input[i];
        let mut probes = Vec::new();
        sf.probes(&mut probes);
        df.probes(&mut probes);
        probes.sort_unstable();
        probes.dedup();
        let sa = &src.input.activation;
        let da = &dec.input.activation;
        let (so, dd) = (src.input.out_precision, dec.input.out_precision);
        let diverged = probes.iter().find(|&&p| {
            sa.apply(i, Fix::from_i32(cast::i32_sat(p)), so)
                != da.apply(i, Fix::from_i32(cast::i32_sat(p)), dd)
        });
        if let Some(&p) = diverged {
            diffs.push(LayerDiff {
                layer: 0,
                neuron: i,
                rule: RuleId::Npc022,
                detail: format!("input element {i} quantizes pixel {p} differently"),
            });
        } else if neuron_row(&[], 0, &None, &None, Some(sa), i)
            != neuron_row(&[], 0, &None, &None, Some(da), i)
        {
            drift.push((0, format!("input element {i}")));
        }
    }

    // Hidden layers.
    for (k, (sl, dl)) in src.hidden.iter().zip(&dec.hidden).enumerate() {
        let layer = k + 1;
        if sl.weights != dl.weights {
            let src_rows: Vec<Vec<i64>> = (0..sl.neurons)
                .map(|n| {
                    neuron_row(
                        &sl.weights,
                        sl.in_len,
                        &sl.bias,
                        &sl.bn,
                        Some(&sl.activation),
                        n,
                    )
                })
                .collect();
            let dec_rows: Vec<Vec<i64>> = (0..dl.neurons)
                .map(|n| {
                    neuron_row(
                        &dl.weights,
                        dl.in_len,
                        &dl.bias,
                        &dl.bn,
                        Some(&dl.activation),
                        n,
                    )
                })
                .collect();
            let neuron = (0..sl.neurons)
                .find(|&n| src_rows[n] != dec_rows[n])
                .unwrap_or(0);
            if is_permutation(&src_rows, &dec_rows) {
                diffs.push(LayerDiff {
                    layer,
                    neuron,
                    rule: RuleId::Npc024,
                    detail: format!(
                        "hidden layer {k}: weight rows are a permutation of the source rows"
                    ),
                });
            } else {
                diffs.push(LayerDiff {
                    layer,
                    neuron,
                    rule: RuleId::Npc022,
                    detail: format!("hidden layer {k} neuron {neuron}: weight row differs"),
                });
            }
            continue;
        }
        // Same affine part: compare post stages over the union of both
        // reachable accumulator intervals.
        for n in 0..sl.neurons {
            let (s_lo, s_hi, sf) = &src_sem.hidden[k][n];
            let (d_lo, d_hi, df) = &dec_sem.hidden[k][n];
            let (lo, hi) = ((*s_lo).min(*d_lo), (*s_hi).max(*d_hi));
            let mut probes = vec![lo, hi];
            sf.probes(&mut probes);
            df.probes(&mut probes);
            probes.retain(|p| (lo..=hi).contains(p));
            probes.sort_unstable();
            probes.dedup();
            let s_bn = sl.bn.as_ref().map(|p| p[n]);
            let d_bn = dl.bn.as_ref().map(|p| p[n]);
            let s_bias = sl.bias.as_ref().map(|b| b[n]);
            let d_bias = dl.bias.as_ref().map(|b| b[n]);
            // Bias is part of the accumulator; a bias delta shifts the
            // effective step positions, which the probe comparison only
            // sees through the accumulator domain. Fold it in here.
            let diverged = probes.iter().find(|&&p| {
                let sp = i64::from(s_bias.unwrap_or(0));
                let dp = i64::from(d_bias.unwrap_or(0));
                post_at(&sl.activation, s_bn, n, p + sp, sl.out_precision)
                    != post_at(&dl.activation, d_bn, n, p + dp, dl.out_precision)
            });
            if let Some(&p) = diverged {
                diffs.push(LayerDiff {
                    layer,
                    neuron: n,
                    rule: RuleId::Npc022,
                    detail: format!(
                        "hidden layer {k} neuron {n}: post stage diverges at accumulator {p}"
                    ),
                });
            } else if neuron_row(
                &sl.weights,
                sl.in_len,
                &sl.bias,
                &sl.bn,
                Some(&sl.activation),
                n,
            ) != neuron_row(
                &dl.weights,
                dl.in_len,
                &dl.bias,
                &dl.bn,
                Some(&dl.activation),
                n,
            ) {
                drift.push((layer, format!("hidden layer {k} neuron {n}")));
            }
        }
    }

    // Output layer.
    let out_layer = src.layer_count() - 1;
    let (so, dobj) = (&src.output, &dec.output);
    if so.weights != dobj.weights {
        let src_rows: Vec<Vec<i64>> = (0..so.neurons)
            .map(|n| neuron_row(&so.weights, so.in_len, &so.bias, &so.bn, None, n))
            .collect();
        let dec_rows: Vec<Vec<i64>> = (0..dobj.neurons)
            .map(|n| neuron_row(&dobj.weights, dobj.in_len, &dobj.bias, &dobj.bn, None, n))
            .collect();
        let neuron = (0..so.neurons)
            .find(|&n| src_rows[n] != dec_rows[n])
            .unwrap_or(0);
        let rule = if is_permutation(&src_rows, &dec_rows) {
            RuleId::Npc024
        } else {
            RuleId::Npc022
        };
        diffs.push(LayerDiff {
            layer: out_layer,
            neuron,
            rule,
            detail: format!("output layer: weight rows differ (neuron {neuron})"),
        });
    } else {
        for n in 0..so.neurons {
            let (s_lo, s_hi) = src_sem.out_acc[n];
            let (d_lo, d_hi) = dec_sem.out_acc[n];
            let (lo, hi) = (s_lo.min(d_lo), s_hi.max(d_hi));
            let mut probes = canonical_probes(lo, hi);
            probes.extend(crossing_probes(so, dobj, n, lo, hi));
            probes.sort_unstable();
            probes.dedup();
            let diverged = probes
                .iter()
                .find(|&&p| score_at(so, n, p) != score_at(dobj, n, p));
            if let Some(&p) = diverged {
                diffs.push(LayerDiff {
                    layer: out_layer,
                    neuron: n,
                    rule: RuleId::Npc022,
                    detail: format!("output neuron {n}: score diverges at accumulator {p}"),
                });
            } else if neuron_row(&so.weights, so.in_len, &so.bias, &so.bn, None, n)
                != neuron_row(&dobj.weights, dobj.in_len, &dobj.bias, &dobj.bn, None, n)
            {
                drift.push((out_layer, format!("output neuron {n}")));
            }
        }
    }

    // Emit: one NPC022/NPC024 per diverging layer (first finding wins a
    // witness search), one NPC023 per drifting layer.
    let mut seen_layers = Vec::new();
    for d in &diffs {
        if seen_layers.contains(&(d.layer, d.rule)) {
            continue;
        }
        seen_layers.push((d.layer, d.rule));
        let witness = find_witness(src, dec, hint, domain, d.layer).map(|mut w| {
            w.neuron = d.neuron;
            w
        });
        let msg = match &witness {
            Some(w) => format!(
                "{} — distinguishing input found ({} pixels)",
                d.detail,
                w.pixels.len()
            ),
            None => format!("{} (no end-to-end witness found)", d.detail),
        };
        report.push(d.rule, Severity::Error, None, Some(d.layer), msg);
        if let Some(w) = witness {
            witnesses.push(w);
        }
    }
    let mut seen_drift = Vec::new();
    for (layer, what) in drift {
        if seen_drift.contains(&layer) {
            continue;
        }
        seen_drift.push(layer);
        report.push(
            RuleId::Npc023,
            Severity::Warning,
            None,
            Some(layer),
            format!("{what}: parameter encoding drifts from the source fold with no reachable divergence"),
        );
    }
}

/// Analytic crossing probes for two output-score parameterizations:
/// accumulator values near which two different BN affines can first
/// disagree. Pure endpoints miss a crossing interior to the interval
/// when both affines have similar slopes.
fn crossing_probes(
    src: &netpu_nn::qmodel::OutputLayer,
    dec: &netpu_nn::qmodel::OutputLayer,
    n: usize,
    lo: i64,
    hi: i64,
) -> Vec<i64> {
    let params = |l: &netpu_nn::qmodel::OutputLayer| -> (i64, i64) {
        match (&l.bias, &l.bn) {
            (Some(b), _) => (
                1 << 16,
                i64::from(b[n]) << netpu_arith::fixed::FRAC_BITS << 16,
            ),
            (_, Some(p)) => (i64::from(p[n].scale_q16), p[n].offset.raw() << 16),
            _ => (1 << 16, 0),
        }
    };
    let (s1, o1) = params(src);
    let (s2, o2) = params(dec);
    if s1 == s2 {
        return Vec::new();
    }
    // Solve (x<<5)·s1 + o1 ≈ (x<<5)·s2 + o2 in Q16.16: the divergence
    // onset is near x* = (o2 − o1) / (32·(s1 − s2)).
    let num = o2 - o1;
    let den = 32 * (s1 - s2);
    if den == 0 {
        return Vec::new();
    }
    let x = num / den;
    (-3..=3)
        .map(|d| x + d)
        .filter(|p| (lo..=hi).contains(p))
        .collect()
}

// ---------------------------------------------------------------------
// NPC025: provably-dead output slices
// ---------------------------------------------------------------------

/// Flags output classes MaxOut can never select: class `k` is dead when
/// some earlier class's minimum score dominates `k`'s maximum (ties go
/// to the lowest index), or some later class's minimum strictly beats
/// it. Interval minima/maxima are attained by concrete inputs per
/// neuron, so domination here is a proof, not a heuristic.
fn dead_output_slices(sem: &ModelSem, report: &mut Report) {
    let n = sem.scores.len();
    let mut dead = Vec::new();
    for k in 0..n {
        let (_, k_max) = sem.scores[k];
        let dominated = (0..n).any(|j| {
            let (j_min, _) = sem.scores[j];
            j != k && (if j < k { j_min >= k_max } else { j_min > k_max })
        });
        if dominated {
            dead.push(k);
        }
    }
    if !dead.is_empty() {
        let shown: Vec<String> = dead.iter().take(4).map(|k| k.to_string()).collect();
        report.push(
            RuleId::Npc025,
            Severity::Warning,
            None,
            None,
            format!(
                "{} of {} output classes are provably dead under MaxOut (classes {}{})",
                dead.len(),
                n,
                shown.join(", "),
                if dead.len() > 4 { ", …" } else { "" }
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Witness search
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pixel(&mut self, lo: u8, hi: u8) -> u8 {
        let span = u64::from(hi) - u64::from(lo) + 1;
        cast::u8_sat(u64::from(lo) + self.next() % span)
    }
}

/// Number of elements differing between the two models' activations at
/// stream layer `focus` (0 = input layer, `1..=H` = hidden layers,
/// anything larger = output scores) plus a large bonus when the final
/// scores differ — the hill-climbing objective.
fn divergence_score(src: &QuantMlp, dec: &QuantMlp, pixels: &[u8], focus: usize) -> u64 {
    let a = reference::infer_traced(src, pixels);
    let b = reference::infer_traced(dec, pixels);
    let local = if focus == 0 {
        diff_count(&a.input_levels, &b.input_levels)
    } else if focus <= a.hidden_levels.len() && focus <= b.hidden_levels.len() {
        diff_count(&a.hidden_levels[focus - 1], &b.hidden_levels[focus - 1])
    } else {
        0
    };
    let end = if a.scores != b.scores { 1_000_000 } else { 0 };
    local + end
}

fn diff_count<T: PartialEq>(a: &[T], b: &[T]) -> u64 {
    if a.len() != b.len() {
        return cast::u64_from_usize(a.len().max(b.len()));
    }
    cast::u64_from_usize(a.iter().zip(b).filter(|(x, y)| x != y).count())
}

fn scores_differ(src: &QuantMlp, dec: &QuantMlp, pixels: &[u8]) -> bool {
    reference::infer_traced(src, pixels).scores != reference::infer_traced(dec, pixels).scores
}

/// Searches for a concrete input on which the source model and the
/// decoded stream model produce different output scores: fixed
/// candidates, a seeded random sweep, then coordinate descent driven by
/// layer-local divergence at the flagged layer. Deterministic in its
/// arguments, like every other part of the verifier.
fn find_witness(
    src: &QuantMlp,
    dec: &QuantMlp,
    hint: &[u8],
    (lo, hi): (u8, u8),
    focus: usize,
) -> Option<Witness> {
    let len = src.input.len;
    let mid = cast::u8_sat((u64::from(lo) + u64::from(hi)) / 2);
    let mut candidates: Vec<Vec<u8>> = vec![
        vec![lo; len],
        vec![hi; len],
        vec![mid; len],
        (0..len).map(|i| if i % 2 == 0 { lo } else { hi }).collect(),
    ];
    if hint.len() == len {
        candidates.insert(0, hint.to_vec());
    }
    let found = |pixels: Vec<u8>| -> Option<Witness> {
        Some(Witness {
            layer: focus,
            neuron: 0,
            pixels,
        })
    };
    for c in &candidates {
        if scores_differ(src, dec, c) {
            return found(c.clone());
        }
    }
    let mut rng = XorShift(0x4E50_5345_0000_0001 ^ cast::u64_from_usize(focus));
    let mut best = candidates.swap_remove(0);
    let mut best_score = divergence_score(src, dec, &best, focus);
    for _ in 0..WITNESS_RANDOM_TRIES {
        let p: Vec<u8> = (0..len).map(|_| rng.pixel(lo, hi)).collect();
        if scores_differ(src, dec, &p) {
            return found(p);
        }
        let s = divergence_score(src, dec, &p, focus);
        if s > best_score {
            best_score = s;
            best = p;
        }
    }
    // Coordinate descent from the best random start.
    let coords = len.min(WITNESS_CLIMB_COORDS);
    for _ in 0..WITNESS_CLIMB_PASSES {
        let mut improved = false;
        for i in 0..coords {
            let orig = best[i];
            for v in [lo, hi, mid] {
                if v == orig {
                    continue;
                }
                best[i] = v;
                let s = divergence_score(src, dec, &best, focus);
                if s > best_score {
                    best_score = s;
                    improved = true;
                    if scores_differ(src, dec, &best) {
                        return found(best);
                    }
                    break;
                }
                best[i] = orig;
            }
        }
        if !improved {
            break;
        }
    }
    if scores_differ(src, dec, &best) {
        return found(best);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    fn cfg() -> HwConfig {
        HwConfig::paper_instance()
    }

    #[test]
    fn step_form_recovers_a_threshold_staircase() {
        let f = |x: i64| -> i32 {
            if x < -5 {
                0
            } else if x < 10 {
                1
            } else {
                2
            }
        };
        let form = step_form(&f, -100, 100);
        assert_eq!(form.base, 0);
        assert_eq!(form.steps, vec![(-5, 1), (10, 2)]);
        assert_eq!(form.level_range(), (0, 2));
    }

    #[test]
    fn signed_width_matches_twos_complement() {
        assert_eq!(signed_width(0, 0), 1);
        assert_eq!(signed_width(0, 127), 8);
        assert_eq!(signed_width(-128, 0), 8);
        assert_eq!(signed_width(-129, 0), 9);
        assert_eq!(signed_width(0, 128), 9);
    }

    #[test]
    fn honest_zoo_compile_certifies_equivalent() {
        let model = ZooModel::TfcW2A2
            .build_untrained(3, BnMode::Folded)
            .expect("zoo model builds");
        let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).expect("compiles");
        let outcome = certify(&model, &loadable.words, &cfg());
        assert!(outcome.is_equivalent(), "{}", outcome.report);
        let cert = outcome.certificate.expect("certificate");
        assert!(cert.is_equivalent());
        assert!(cert.validate(&model, &loadable.words, &cfg()));
    }

    #[test]
    fn hardware_bn_zoo_compile_certifies_equivalent() {
        let model = ZooModel::LfcW1A2
            .build_untrained(5, BnMode::Hardware)
            .expect("zoo model builds");
        let (loadable, cert) =
            compile_certified(&model, &vec![7u8; 784], &cfg()).expect("self-certifies");
        assert!(cert.is_equivalent());
        assert!(cert.validate(&model, &loadable.words, &cfg()));
    }

    #[test]
    fn a_swapped_weight_pair_is_caught_with_a_witness() {
        let model = ZooModel::TfcW1A1
            .build_untrained(11, BnMode::Folded)
            .expect("zoo model builds");
        let mut mutated = model.clone();
        // Swap the first two weights of hidden neuron 0: same multiset,
        // different function.
        let w = &mut mutated.hidden[0].weights;
        let i = (0..w.len() - 1)
            .find(|&i| w[i] != w[i + 1])
            .expect("adjacent differing weights");
        w.swap(i, i + 1);
        let loadable = netpu_compiler::compile(&mutated, &vec![0u8; 784]).expect("compiles");
        let outcome = certify(&model, &loadable.words, &cfg());
        assert!(!outcome.is_equivalent());
        assert!(outcome.report.fired(RuleId::Npc022), "{}", outcome.report);
        let w = outcome.witnesses.first().expect("witness found");
        assert!(scores_differ(
            &model,
            &netpu_compiler::decode(&loadable.words)
                .expect("decodes")
                .model,
            &w.pixels
        ));
    }

    #[test]
    fn a_permuted_layer_fires_npc024() {
        let model = ZooModel::TfcW1A1
            .build_untrained(13, BnMode::Folded)
            .expect("zoo model builds");
        let mut mutated = model.clone();
        let h = &mut mutated.hidden[0];
        // Swap neurons 0 and 1 wholesale: rows, biases, thresholds.
        for i in 0..h.in_len {
            h.weights.swap(i, h.in_len + i);
        }
        if let Some(b) = h.bias.as_mut() {
            b.swap(0, 1);
        }
        if let LayerActivation::Sign { thresholds } = &mut h.activation {
            thresholds.swap(0, 1);
        }
        if let LayerActivation::MultiThreshold { thresholds } = &mut h.activation {
            thresholds.swap(0, 1);
        }
        let loadable = netpu_compiler::compile(&mutated, &vec![0u8; 784]).expect("compiles");
        let outcome = certify(&model, &loadable.words, &cfg());
        assert!(outcome.report.fired(RuleId::Npc024), "{}", outcome.report);
    }

    #[test]
    fn a_shape_mismatch_fires_npc021_and_yields_no_certificate() {
        let a = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .expect("builds");
        let b = ZooModel::SfcW1A1
            .build_untrained(1, BnMode::Folded)
            .expect("builds");
        let loadable = netpu_compiler::compile(&b, &vec![0u8; 784]).expect("compiles");
        let outcome = certify(&a, &loadable.words, &cfg());
        assert!(outcome.report.fired(RuleId::Npc021), "{}", outcome.report);
        assert!(outcome.certificate.is_none());
    }

    #[test]
    fn garbage_words_fire_npc021() {
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .expect("builds");
        let outcome = certify(&model, &[0xDEAD, 0xBEEF], &cfg());
        assert!(outcome.report.fired(RuleId::Npc021));
        assert!(!outcome.is_equivalent());
    }

    #[test]
    fn certificates_render_and_version() {
        let model = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .expect("builds");
        let (_, cert) = compile_certified(&model, &vec![0u8; 784], &cfg()).expect("certifies");
        let text = cert.to_string();
        assert!(text.contains("equivalent") && text.contains("min acc width"));
        assert_eq!(cert.version, CERTIFICATE_VERSION);
    }
}
