//! The rule implementations behind [`crate::check_words`].
//!
//! Each rule encodes one architectural invariant of the NetPU-M stream
//! protocol or instance configuration; DESIGN.md §4.3 is the catalog.
//! Rules that, when violated, make the accelerator model reject, stall,
//! or panic are **errors**; rules that only compromise numerics are
//! **warnings**. This module's *structural* errors (NPC001–NPC013) never
//! refuse a stream the accelerator would run to completion; the
//! [`crate::absint`] tier additionally emits *range* errors
//! (NPC014/NPC018/NPC020) for streams that run but with provably unsafe
//! numerics — strict admission (the default) refuses those too.

use crate::diag::{Report, RuleId, Severity};
use netpu_arith::{cast, ActivationKind, Fix};
use netpu_compiler::settings::MAX_FIELD_WIDTH;
use netpu_compiler::stream::{
    input_words, neuron_weight_words_mode, unpack_u32_pairs, uses_xnor_path, weight_field_bits,
    weight_words_mode, MAGIC, VERSION,
};
use netpu_compiler::{LayerSetting, LayerType, PackingMode};
use netpu_core::resources::{netpu_utilization, ULTRA96_V2};
use netpu_core::HwConfig;

/// Depth of the 64-bit data buffers (Layer Input / Layer Weight / Bias).
const DATA_BUFFER_DEPTH: usize = 1024;
/// Depth of the 128-bit parameter buffers (BN / threshold / QUAN).
const PARAM_BUFFER_DEPTH: usize = 2048;

/// Bytes per stream word, for diagnostic offsets.
const WORD: usize = 8;

/// 32-bit activation-parameter values per neuron for a layer setting
/// (mirrors the compiler's section sizing).
fn act_param_u32s(setting: &LayerSetting) -> usize {
    match setting.activation {
        ActivationKind::Sign => 1,
        ActivationKind::MultiThreshold => setting.out_precision.multi_threshold_count(),
        ActivationKind::Relu | ActivationKind::Sigmoid | ActivationKind::Tanh => 2,
    }
}

/// Parameter-section words of a layer (mirrors the compiler).
fn param_section_words(setting: &LayerSetting) -> usize {
    let neurons = cast::usize_from_u32(setting.neurons);
    let mut words = 0usize;
    if setting.layer_type != LayerType::Input {
        words += if setting.bn_folded {
            neurons.div_ceil(8)
        } else {
            neurons
        };
    }
    if setting.layer_type != LayerType::Output {
        words += (neurons * act_param_u32s(setting)).div_ceil(2);
    }
    words
}

/// Runs every rule over a raw word stream against an instance config.
///
/// The stream is treated exactly the way the accelerator model consumes
/// it: as a *burst* of one or more back-to-back loadables (§III.B.3,
/// `batch_stream`). After each segment's section layout is consumed the
/// accelerator resets to its header state and parses the next word as
/// the next loadable's header, so every segment — not just the first —
/// must satisfy the structural rules. (The stream fuzzer found the
/// lenient version of this: one garbage word past the layout end drew
/// only a warning here while the accelerator rejected the run.)
pub fn run_all(words: &[u64], cfg: &HwConfig) -> Report {
    let mut report = Report::default();

    // NPC011 — configuration validity + resource feasibility. Config
    // problems are reported even when the stream is also bad, and once
    // per check rather than once per burst segment.
    if let Err(e) = cfg.validate() {
        report.push(
            RuleId::Npc011,
            Severity::Error,
            None,
            None,
            format!("invalid hardware configuration: {e}"),
        );
    } else if !netpu_utilization(cfg).fits(&ULTRA96_V2) {
        let u = netpu_utilization(cfg);
        report.push(
            RuleId::Npc011,
            Severity::Warning,
            None,
            None,
            format!(
                "instance needs {} LUTs / {} DSPs / {:.1} BRAM36 — exceeds the {} envelope",
                u.luts, u.dsps, u.bram36, ULTRA96_V2.name
            ),
        );
    }

    let mut start = 0usize;
    loop {
        let (segment, consumed) = run_segment(&words[start..], cfg);
        for d in segment.diagnostics {
            report.push(
                d.rule,
                d.severity,
                d.byte_offset.map(|o| o + start * WORD),
                d.layer,
                d.message,
            );
        }
        // A segment whose layout could not be computed (or that carries
        // structural errors) already fails the run on the accelerator;
        // validating bytes past it would only produce noise.
        let Some(pos) = consumed else { return report };
        if report.has_errors() {
            return report;
        }
        start += pos;
        if start >= words.len() {
            return report;
        }
    }
}

/// Runs the structural rules over one burst segment (byte offsets are
/// segment-relative; [`run_all`] shifts them). Returns the report plus
/// the segment's layout length in words when it was computable — the
/// offset at which the accelerator would parse the next header.
fn run_segment(words: &[u64], cfg: &HwConfig) -> (Report, Option<usize>) {
    let mut report = Report::default();

    // NPC001 — header word.
    let Some(&header) = words.first() else {
        report.push(
            RuleId::Npc005,
            Severity::Error,
            Some(0),
            None,
            "empty stream: no header word".to_string(),
        );
        return (report, None);
    };
    if cast::lo16(header) != MAGIC {
        report.push(
            RuleId::Npc001,
            Severity::Error,
            Some(0),
            None,
            format!(
                "header magic {:#06x}, expected {MAGIC:#06x}",
                cast::lo16(header)
            ),
        );
        return (report, None);
    }
    if cast::lo8(header >> 16) != VERSION {
        report.push(
            RuleId::Npc001,
            Severity::Error,
            Some(0),
            None,
            format!(
                "stream version {}, this instance speaks {VERSION}",
                cast::lo8(header >> 16)
            ),
        );
        return (report, None);
    }
    let mode = if header >> 40 & 1 == 1 {
        PackingMode::Dense
    } else {
        PackingMode::Lanes8
    };

    // NPC002 — layer count.
    let n = cast::usize_sat(header >> 24 & 0xFFFF);
    if n < 2 {
        report.push(
            RuleId::Npc002,
            Severity::Error,
            Some(0),
            None,
            format!("{n} layer(s): a network needs at least Input and Output"),
        );
        return (report, None);
    }

    // NPC005 (early) — the settings block itself must be present.
    if words.len() < 1 + n {
        report.push(
            RuleId::Npc005,
            Severity::Error,
            Some(words.len() * WORD),
            None,
            format!(
                "stream ends inside the settings block: {} word(s), {} needed",
                words.len(),
                1 + n
            ),
        );
        return (report, None);
    }

    // NPC003 — every setting word must decode.
    let mut settings = Vec::with_capacity(n);
    for (k, &w) in words[1..1 + n].iter().enumerate() {
        match LayerSetting::decode(w) {
            Ok(s) => settings.push(s),
            Err(e) => report.push(
                RuleId::Npc003,
                Severity::Error,
                Some((1 + k) * WORD),
                Some(k),
                format!("undecodable layer setting: {e}"),
            ),
        }
    }
    if settings.len() < n {
        // The section layout is uncomputable without every setting.
        return (report, None);
    }

    // NPC002 — layer sequence.
    let seq_ok = settings[0].layer_type == LayerType::Input
        && settings[n - 1].layer_type == LayerType::Output
        && settings[1..n - 1]
            .iter()
            .all(|s| s.layer_type == LayerType::Hidden);
    if !seq_ok {
        report.push(
            RuleId::Npc002,
            Severity::Error,
            Some(WORD),
            None,
            "layer sequence is not Input, Hidden*, Output".to_string(),
        );
    }

    // NPC004 — inter-layer shape chain.
    for k in 1..n {
        if settings[k].input_len != settings[k - 1].neurons {
            report.push(
                RuleId::Npc004,
                Severity::Error,
                Some((1 + k) * WORD),
                Some(k),
                format!(
                    "layer consumes {} inputs but the previous layer produces {}",
                    settings[k].input_len,
                    settings[k - 1].neurons
                ),
            );
        }
    }

    // NPC010 — width and buffer bounds.
    for (k, s) in settings.iter().enumerate() {
        if s.neurons == 0 {
            report.push(
                RuleId::Npc010,
                Severity::Error,
                Some((1 + k) * WORD),
                Some(k),
                "zero-width layer: the drain/maxout stages would never fire".to_string(),
            );
        }
        debug_assert!(s.neurons <= MAX_FIELD_WIDTH, "decode enforces the ceiling");
        if k == 0 && input_words(cast::usize_from_u32(s.neurons)) > DATA_BUFFER_DEPTH {
            report.push(
                RuleId::Npc010,
                Severity::Warning,
                Some((1 + k) * WORD),
                Some(k),
                format!(
                    "input of {} pixels overflows the {DATA_BUFFER_DEPTH}-word Layer Input buffer",
                    s.neurons
                ),
            );
        }
        if k > 0 && !s.bn_folded && cast::usize_from_u32(s.neurons) > PARAM_BUFFER_DEPTH {
            report.push(
                RuleId::Npc010,
                Severity::Warning,
                Some((1 + k) * WORD),
                Some(k),
                format!(
                    "{} unfolded BN entries overflow the {PARAM_BUFFER_DEPTH}-deep BN buffers",
                    s.neurons
                ),
            );
        }
    }

    // NPC006 — packing flag vs the instance's unpack logic.
    if mode == PackingMode::Dense && !cfg.dense_weight_packing {
        report.push(
            RuleId::Npc006,
            Severity::Error,
            Some(0),
            None,
            "stream uses dense weight packing; this instance was generated without it".to_string(),
        );
    }

    // NPC013 — multi-threshold precision vs the synthesis-time cap.
    for (k, s) in settings.iter().enumerate() {
        if s.layer_type != LayerType::Output
            && s.activation == ActivationKind::MultiThreshold
            && s.out_precision.bits() > cfg.max_multithreshold_bits
        {
            report.push(
                RuleId::Npc013,
                Severity::Warning,
                Some((1 + k) * WORD),
                Some(k),
                format!(
                    "{}-bit multi-threshold output exceeds the instance's {}-bit comparator bank",
                    s.out_precision.bits(),
                    cfg.max_multithreshold_bits
                ),
            );
        }
    }

    // If the sequence or shape chain is broken the section layout below
    // would be built on nonsense; stop after the structural errors.
    if report.has_errors() {
        return (report, None);
    }

    // Recompute the section layout (§III.B.3 interleave): input block,
    // then P0, (P1, W0), (P2, W1), …, W(n−1).
    let mut pos = 1 + n;
    let in_words = input_words(cast::usize_from_u32(settings[0].neurons));
    pos += in_words;
    let mut sections: Vec<(bool, usize, usize, usize)> = Vec::new(); // (is_params, layer, start, len)
    sections.push((true, 0, pos, param_section_words(&settings[0])));
    pos += param_section_words(&settings[0]);
    for k in 1..n {
        sections.push((true, k, pos, param_section_words(&settings[k])));
        pos += param_section_words(&settings[k]);
        let wlen = weight_words_mode(&settings[k - 1], mode);
        sections.push((false, k - 1, pos, wlen));
        pos += wlen;
    }
    let wlen = weight_words_mode(&settings[n - 1], mode);
    sections.push((false, n - 1, pos, wlen));
    pos += wlen;

    // NPC005 — exact stream length.
    if words.len() < pos {
        report.push(
            RuleId::Npc005,
            Severity::Error,
            Some(words.len() * WORD),
            None,
            format!(
                "stream truncated: {} word(s), the section layout needs {pos}",
                words.len()
            ),
        );
        return (report, None);
    }
    // Words past `pos` belong to the next burst segment; `run_all`
    // validates them as a loadable in their own right.

    // Per-section parameter rules.
    for &(is_params, k, start, len) in &sections {
        let s = &settings[k];
        let body = &words[start..start + len];
        if is_params {
            check_param_section(&mut report, s, k, start, body);
        } else {
            check_weight_section(&mut report, s, k, start, body, mode);
        }
    }

    // NPC009 — a dense flag that buys nothing is a packing mismatch
    // smell (the compiler only sets it when some layer packs denser).
    if mode == PackingMode::Dense
        && !settings[1..]
            .iter()
            .any(|s| uses_xnor_path(s) || weight_field_bits(s, mode) < 8)
    {
        report.push(
            RuleId::Npc009,
            Severity::Warning,
            Some(0),
            None,
            "dense packing flagged but every layer still packs 8-bit lanes".to_string(),
        );
    }

    (report, Some(pos))
}

/// NPC007 / NPC008 / NPC012 over one layer's parameter section.
fn check_param_section(
    report: &mut Report,
    s: &LayerSetting,
    layer: usize,
    start: usize,
    body: &[u64],
) {
    let neurons = cast::usize_from_u32(s.neurons);
    let mut cursor = 0usize;

    // Bias / BN block (FC layers).
    if s.layer_type != LayerType::Input {
        if s.bn_folded {
            cursor += neurons.div_ceil(8);
        } else {
            for (i, &w) in body[..neurons.min(body.len())].iter().enumerate() {
                // NPC008 — a zero Q16.16 scale multiplies every
                // accumulator to zero; the layer cannot discriminate.
                if cast::i32_from_bits(cast::lo32(w)) == 0 {
                    report.push(
                        RuleId::Npc008,
                        Severity::Warning,
                        Some((start + i) * WORD),
                        Some(layer),
                        format!("neuron {i}: BN scale is zero"),
                    );
                }
            }
            cursor += neurons;
        }
    }

    // Activation block (Input and Hidden layers).
    if s.layer_type == LayerType::Output || cursor >= body.len() {
        return;
    }
    let act_words = &body[cursor..];
    match s.activation {
        ActivationKind::MultiThreshold => {
            let per = s.out_precision.multi_threshold_count();
            let vals = unpack_u32_pairs(act_words, neurons * per);
            for (ni, row) in vals.chunks(per).enumerate() {
                for i in 1..row.len() {
                    let prev = Fix::from_stream_word(row[i - 1]).raw();
                    let cur = Fix::from_stream_word(row[i]).raw();
                    if cur < prev {
                        // NPC007 — the comparator cascade binary-
                        // searches the table; out-of-order entries make
                        // quantization non-monotone.
                        let off = (start + cursor + (ni * per + i) / 2) * WORD;
                        report.push(
                            RuleId::Npc007,
                            Severity::Warning,
                            Some(off),
                            Some(layer),
                            format!(
                                "neuron {ni}: threshold {i} ({cur}) below threshold {} ({prev})",
                                i - 1
                            ),
                        );
                        break; // one finding per neuron row
                    }
                }
            }
        }
        ActivationKind::Relu | ActivationKind::Sigmoid | ActivationKind::Tanh => {
            let vals = unpack_u32_pairs(act_words, neurons * 2);
            if let (Some(&s0), Some(&o0)) = (vals.first(), vals.get(1)) {
                for (ni, pair) in vals.chunks(2).enumerate() {
                    if pair[0] != s0 || pair[1] != o0 {
                        // NPC012 — QUAN is one per-layer unit in the
                        // hardware; divergent per-neuron copies mean
                        // the stream was assembled inconsistently.
                        let off = (start + cursor + ni) * WORD;
                        report.push(
                            RuleId::Npc012,
                            Severity::Warning,
                            Some(off),
                            Some(layer),
                            format!("neuron {ni}: QUAN parameters differ from neuron 0"),
                        );
                        break;
                    }
                }
            }
        }
        ActivationKind::Sign => {}
    }
}

/// NPC009 over one layer's weight section: padding bits past the layer
/// width must be zero, as the compiler emits them.
fn check_weight_section(
    report: &mut Report,
    s: &LayerSetting,
    layer: usize,
    start: usize,
    body: &[u64],
    mode: PackingMode,
) {
    if s.layer_type == LayerType::Input {
        return;
    }
    let in_len = cast::usize_from_u32(s.input_len);
    let per_neuron = neuron_weight_words_mode(s, mode);
    if per_neuron == 0 {
        return;
    }
    let fields_per_word = if uses_xnor_path(s) {
        64
    } else {
        64 / cast::usize_from_u32(weight_field_bits(s, mode))
    };
    let used_in_last = in_len - (per_neuron - 1) * fields_per_word;
    let used_bits = if uses_xnor_path(s) {
        used_in_last
    } else {
        used_in_last * cast::usize_from_u32(weight_field_bits(s, mode))
    };
    if used_bits >= 64 {
        return; // final word fully used, nothing to check
    }
    let pad_mask = !0u64 << used_bits;
    for (ni, row) in body.chunks(per_neuron).enumerate() {
        if let Some(&last) = row.last() {
            if last & pad_mask != 0 {
                let off = (start + ni * per_neuron + per_neuron - 1) * WORD;
                report.push(
                    RuleId::Npc009,
                    Severity::Warning,
                    Some(off),
                    Some(layer),
                    format!("neuron {ni}: non-zero padding bits past the layer width"),
                );
                return; // one finding per section
            }
        }
    }
}
