//! Workspace automation (`cargo run -p xtask -- lint`,
//! `cargo run -p xtask -- replay <trace.bin>`, and
//! `cargo run -p xtask -- certify [models]`).
//!
//! `replay` decodes a recorded binary trace, verifies its internal
//! consistency against the arbiter recurrence (`netpu_trace::verify`),
//! proves the decode → re-encode round trip is byte-identical, and
//! prints the replay summary — including a per-`RejectReason`-code
//! breakdown of every denied request the trace recorded.
//!
//! `certify` is the translation-validation release gate (DESIGN.md
//! §4.8): it compiles the whole model zoo (both BN modes) plus a
//! deterministic sweep of random valid models (1000 by default),
//! certifies every emitted stream against its own source via
//! `netpu_check::compile_certified`, and re-validates each
//! [`netpu_check::Certificate`] from scratch. Any false inequivalence
//! or stale certificate fails the gate.
//!
//! `lint` enforces source-level gates that rustc and clippy cannot
//! express at the granularity the workspace wants:
//!
//! * **panic-free hot paths** — no `.unwrap()` / `.expect(` in the
//!   non-test code of `netpu-arith`, `netpu-core`, `netpu-sim`,
//!   `netpu-runtime`, `netpu-serve`, `netpu-fleet`, `netpu-check`,
//!   `netpu-compiler`, `netpu-trace`, and `netpu-fuzz`. These crates
//!   sit under the serving layer (the checker and compiler both run on
//!   the admission path, the trace sink runs inside the arbiter's
//!   critical section, and the arith kernels — including the bitsliced
//!   batch kernel — run inside every worker), where a panic poisons
//!   locks and wedges worker threads; fallible paths must return
//!   structured errors (or use the `let … else { panic!() }` form,
//!   which forces an explicit message at the site). The fuzzer is held
//!   to the same bar so a crash it reports is always the target's,
//!   never its own.
//! * **audited numeric casts** — no bare `as <numeric>` casts in
//!   `netpu-arith`, `netpu-core`, `netpu-fleet`, `netpu-check`,
//!   `netpu-compiler`, `netpu-trace`, and `netpu-fuzz`.
//!   All width changes go through the checked/saturating helpers in
//!   `netpu_arith::cast`; that module itself is the single exemption,
//!   and every `as` inside it carries an `// audited:` comment.
//! * **documented public surfaces** — every library crate's root
//!   carries `#![deny(missing_docs)]`.
//! * **NPC fixture coverage** — every `NpcNNN` rule ID declared in
//!   `crates/check/src/diag.rs` must appear in `crates/check/tests/`
//!   in both an accepting assertion (`!…fired(RuleId::NpcNNN)`) and a
//!   rejecting one (`…fired(RuleId::NpcNNN)`), so no diagnostic ships
//!   without a fixture that triggers it and one that stays clean.
//!
//! The scanner strips comments, strings, and `#[cfg(test)]`-gated items
//! before matching, so test fixtures and doc examples are free to use
//! whatever they like. Lines are assumed rustfmt-normalized (CI runs
//! `cargo fmt --check` first), so `as` casts always read ` as `.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must not call `.unwrap()` / `.expect(`.
const PANIC_FREE: &[&str] = &[
    "arith", "core", "sim", "runtime", "serve", "fleet", "check", "compiler", "trace", "fuzz",
];

/// Crates whose non-test code must not contain bare numeric `as` casts.
const CAST_FREE: &[&str] = &[
    "arith", "core", "fleet", "check", "compiler", "trace", "fuzz",
];

/// The one module allowed to contain bare casts (each one audited).
const CAST_EXEMPT: &str = "crates/arith/src/cast.rs";

/// Library crates that must carry `#![deny(missing_docs)]`.
const DOCUMENTED: &[&str] = &[
    "arith", "bench", "check", "compiler", "core", "finn", "fleet", "fuzz", "nn", "runtime",
    "serve", "sim", "trace",
];

/// Primitive types whose `as` casts must go through `netpu_arith::cast`.
const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("replay") => match args.next() {
            Some(path) => replay(Path::new(&path)),
            None => {
                eprintln!("usage: cargo run -p xtask -- replay <trace.bin>");
                ExitCode::FAILURE
            }
        },
        Some("certify") => match args.next().map(|n| n.parse::<usize>()) {
            None => certify(DEFAULT_CERTIFY_MODELS),
            Some(Ok(models)) => certify(models),
            Some(Err(_)) => {
                eprintln!("usage: cargo run -p xtask -- certify [models]");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint | replay <trace.bin> | certify [models]   \
                 (got {:?})",
                other.unwrap_or("<nothing>")
            );
            ExitCode::FAILURE
        }
    }
}

fn replay(path: &Path) -> ExitCode {
    match replay_file(path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask replay: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Decodes, round-trips, and verifies one binary trace file, returning
/// the printable summary line.
fn replay_file(path: &Path) -> Result<String, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let reader =
        netpu_trace::TraceReader::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    // The codec promises decode∘encode is the identity on accepted
    // input; hold it to that before trusting anything it decoded.
    if reader.to_bytes() != bytes {
        return Err(format!(
            "{}: decode → re-encode is not byte-identical",
            path.display()
        ));
    }
    let s = netpu_trace::verify(reader.records())
        .map_err(|e| format!("{}: inconsistent trace: {e}", path.display()))?;
    let mut summary = format!(
        "xtask replay: {} verified — {} records / {} requests \
         ({} completed, {} failed, {} rejected), {} crashes ({} requeued), \
         {} grants over {:.1} us makespan, {} sim events, {} probe samples",
        path.display(),
        s.records,
        s.requests,
        s.completed,
        s.failed,
        s.rejected,
        s.crashes,
        s.requeues,
        s.grants,
        s.makespan_us,
        s.sim_events,
        s.probe_samples
    );
    // Denied requests by stable RejectReason code, so a glance at the
    // replay line says *why* a trace's admissions failed (structural
    // stream rejects vs strict-range vs strict-equiv vs crash policy).
    let mut reject_codes: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for rec in reader.records() {
        if let netpu_trace::TraceEvent::Rejected { code, .. } = &rec.event {
            *reject_codes.entry(code.as_str()).or_insert(0) += 1;
        }
    }
    if !reject_codes.is_empty() {
        let breakdown: Vec<String> = reject_codes
            .iter()
            .map(|(code, n)| format!("{code}×{n}"))
            .collect();
        let _ = write!(summary, "; rejections by reason: {}", breakdown.join(", "));
    }
    Ok(summary)
}

/// Random-model sweep size of a bare `xtask certify`.
const DEFAULT_CERTIFY_MODELS: usize = 1000;

fn certify(models: usize) -> ExitCode {
    match certify_sweep(true, models) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask certify: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Compiles and certifies the zoo (when `zoo` is set) plus `models`
/// deterministic random models, failing on the first false
/// inequivalence or certificate that does not re-validate. Returns the
/// printable summary line.
fn certify_sweep(zoo: bool, models: usize) -> Result<String, String> {
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::{random_model, ZooModel};

    let cfg = netpu_core::HwConfig::paper_instance();
    let mut widths = (u8::MAX, 0u8);
    let mut zoo_count = 0usize;
    if zoo {
        for (i, variant) in ZooModel::ALL.into_iter().enumerate() {
            for mode in [BnMode::Folded, BnMode::Hardware] {
                let Ok(model) = variant.build_untrained(10 + u64::try_from(i).unwrap_or(0), mode)
                else {
                    continue;
                };
                certify_stream(&model, 99, &cfg, &mut widths)?;
                zoo_count += 1;
            }
        }
        if zoo_count < ZooModel::ALL.len() {
            return Err(format!("zoo sweep degenerated to {zoo_count} models"));
        }
    }
    for seed in 0..models {
        let seed = u64::try_from(seed).unwrap_or(0);
        let model = random_model(seed);
        certify_stream(&model, seed ^ 0xA5A5, &cfg, &mut widths)?;
    }
    let mut summary = format!(
        "xtask certify: {zoo_count} zoo + {models} random streams certified \
         equivalent, zero false inequivalences; every certificate re-validates"
    );
    if widths.0 <= widths.1 {
        let _ = write!(
            summary,
            " (exact min accumulator widths {}–{} bits)",
            widths.0, widths.1
        );
    }
    Ok(summary)
}

/// Compiles `model` on a seeded input and certifies the emitted stream
/// against it; extends `widths` with the certificate's exact minimal
/// accumulator width.
fn certify_stream(
    model: &netpu_nn::qmodel::QuantMlp,
    px_seed: u64,
    cfg: &netpu_core::HwConfig,
    widths: &mut (u8, u8),
) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(px_seed);
    let pixels: Vec<u8> = (0..model.input.len).map(|_| rng.gen()).collect();
    let (loadable, cert) = netpu_check::compile_certified(model, &pixels, cfg)
        .map_err(|e| format!("{}: {e}", model.name))?;
    if !cert.validate(model, &loadable.words, cfg) {
        return Err(format!("{}: certificate failed re-validation", model.name));
    }
    widths.0 = widths.0.min(cert.min_accumulator_bits);
    widths.1 = widths.1.max(cert.min_accumulator_bits);
    Ok(())
}

fn lint() -> ExitCode {
    let violations = lint_violations();
    if violations.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn lint_violations() -> Vec<String> {
    let root = workspace_root();
    let mut violations = Vec::new();

    for krate in PANIC_FREE {
        for file in rust_sources(&root.join("crates").join(krate).join("src")) {
            check_panic_free(&root, &file, &mut violations);
        }
    }
    for krate in CAST_FREE {
        for file in rust_sources(&root.join("crates").join(krate).join("src")) {
            if rel(&root, &file) == CAST_EXEMPT {
                continue;
            }
            check_cast_free(&root, &file, &mut violations);
        }
    }
    for krate in DOCUMENTED {
        let lib = root.join("crates").join(krate).join("src").join("lib.rs");
        let text = read(&lib);
        if !text.contains("#![deny(missing_docs)]") {
            violations.push(format!(
                "{}: library root lacks #![deny(missing_docs)]",
                rel(&root, &lib)
            ));
        }
    }
    check_rule_fixture_coverage(&root, &mut violations);

    violations
}

/// Tests directory whose fixtures must cover every NPC rule both ways.
const RULE_FIXTURES: &str = "crates/check/tests";

fn check_rule_fixture_coverage(root: &Path, out: &mut Vec<String>) {
    let diag = strip_code(&read(&root.join("crates/check/src/diag.rs")));
    let rules = collect_rule_ids(&diag);
    if rules.is_empty() {
        out.push("crates/check/src/diag.rs: no NpcNNN rule IDs found".into());
        return;
    }
    let mut accepting = std::collections::BTreeSet::new();
    let mut rejecting = std::collections::BTreeSet::new();
    for file in rust_sources(&root.join(RULE_FIXTURES)) {
        classify_fired_assertions(&strip_code(&read(&file)), &mut accepting, &mut rejecting);
    }
    for rule in &rules {
        if !accepting.contains(rule) {
            out.push(format!(
                "{RULE_FIXTURES}: {rule} has no accepting fixture \
                 (an `!…fired(RuleId::{rule})` assertion)"
            ));
        }
        if !rejecting.contains(rule) {
            out.push(format!(
                "{RULE_FIXTURES}: {rule} has no rejecting fixture \
                 (a `…fired(RuleId::{rule})` assertion)"
            ));
        }
    }
}

/// Extracts every `NpcNNN` identifier from stripped source.
fn collect_rule_ids(stripped: &str) -> std::collections::BTreeSet<String> {
    let mut rules = std::collections::BTreeSet::new();
    let bytes = stripped.as_bytes();
    let mut search = 0;
    while let Some(found) = stripped[search..].find("Npc") {
        let start = search + found;
        let boundary = start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric()
                || bytes[start - 1] == b'_'
                || bytes[start - 1] == b':');
        let digits: String = stripped[start + 3..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if boundary && !digits.is_empty() {
            rules.insert(format!("Npc{digits}"));
        }
        search = start + 3;
    }
    rules
}

/// Finds every `.fired(RuleId::NpcNNN)` call in stripped test source and
/// classifies it as accepting (the whole receiver expression is negated
/// with `!`) or rejecting (it is not).
fn classify_fired_assertions(
    stripped: &str,
    accepting: &mut std::collections::BTreeSet<String>,
    rejecting: &mut std::collections::BTreeSet<String>,
) {
    const NEEDLE: &str = ".fired(RuleId::Npc";
    let mut search = 0;
    while let Some(found) = stripped[search..].find(NEEDLE) {
        let dot = search + found;
        let digits_start = dot + NEEDLE.len();
        let digits: String = stripped[digits_start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if !digits.is_empty() {
            let rule = format!("Npc{digits}");
            if negated_receiver(stripped.as_bytes(), dot) {
                accepting.insert(rule);
            } else {
                rejecting.insert(rule);
            }
        }
        search = digits_start;
    }
}

/// Walks backward from the `.` of a `.fired(…)` call over the receiver
/// expression — identifiers, paths, field/method chains, and balanced
/// `(…)` / `[…]` groups — and reports whether the first character
/// beyond it is a `!` negation.
fn negated_receiver(bytes: &[u8], dot: usize) -> bool {
    let mut depth = 0usize;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let c = bytes[j] as char;
        if c == ')' || c == ']' {
            depth += 1;
        } else if c == '(' || c == '[' {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if depth > 0 || c.is_ascii_alphanumeric() || "_.:".contains(c) || c.is_whitespace() {
            // Still inside the receiver (or a nested group).
        } else {
            return c == '!';
        }
    }
    false
}

fn check_panic_free(root: &Path, file: &Path, out: &mut Vec<String>) {
    let masked = mask_tests(&strip_code(&read(file)));
    for (lineno, line) in masked.lines().enumerate() {
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{}:{}: `{}` in non-test code (return an error or use `let … else`)",
                    rel(root, file),
                    lineno + 1,
                    needle.trim_end_matches('(')
                );
                out.push(v);
            }
        }
    }
}

fn check_cast_free(root: &Path, file: &Path, out: &mut Vec<String>) {
    let masked = mask_tests(&strip_code(&read(file)));
    for (lineno, line) in masked.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find(" as ") {
            let after = &rest[pos + 4..];
            let target: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NUMERIC.contains(&target.as_str()) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{}:{}: bare `as {}` cast (use a netpu_arith::cast helper)",
                    rel(root, file),
                    lineno + 1,
                    target
                );
                out.push(v);
            }
            rest = after;
        }
    }
}

/// Blanks comments, string literals, and char literals with spaces,
/// preserving newlines so line numbers survive.
fn strip_code(src: &str) -> String {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < bytes.len() && bytes[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        } else if c == 'r' && matches!(next, Some('"') | Some('#')) && raw_string_at(&bytes, i) {
            i = blank_raw_string(&bytes, i, &mut out);
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        } else if c == '\'' && char_literal_at(&bytes, i) {
            out.push(' ');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '\'' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// `true` when the `r` at `i` starts a raw string (`r"…"`, `r#"…"#`).
fn raw_string_at(bytes: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Blanks a raw string starting at `i`; returns the index past it.
fn blank_raw_string(bytes: &[char], i: usize, out: &mut String) -> usize {
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // Opening `r##"`.
    for _ in i..=j {
        out.push(' ');
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == '"' && bytes[j + 1..].iter().take(hashes).all(|c| *c == '#') {
            for _ in 0..=hashes {
                out.push(' ');
            }
            return j + 1 + hashes;
        }
        out.push(if bytes[j] == '\n' { '\n' } else { ' ' });
        j += 1;
    }
    j
}

/// `true` when the `'` at `i` starts a char literal rather than a
/// lifetime: `'x'` or `'\…'`.
fn char_literal_at(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Blanks every `#[cfg(test)]`-gated item (attribute through matching
/// closing brace or semicolon) in already-stripped source.
fn mask_tests(stripped: &str) -> String {
    let chars: Vec<char> = stripped.chars().collect();
    let mut blank = vec![false; chars.len()];
    let text: String = chars.iter().collect();
    let mut search = 0;
    while let Some(found) = text[search..].find("#[cfg(test)]") {
        let attr_start = search + found;
        let mut j = attr_start;
        // Blank the attribute, any stacked attributes after it, and the
        // gated item: through the matching `}` if a `{` comes before a
        // top-level `;`, else through the `;`.
        let mut depth = 0usize;
        let mut saw_brace = false;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    depth += 1;
                    saw_brace = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if saw_brace && depth == 0 {
                        blank[j] = true;
                        j += 1;
                        break;
                    }
                }
                ';' if !saw_brace => {
                    blank[j] = true;
                    j += 1;
                    break;
                }
                _ => {}
            }
            blank[j] = true;
            j += 1;
        }
        search = j.max(attr_start + 1);
    }
    chars
        .iter()
        .zip(&blank)
        .map(|(c, b)| if *b && *c != '\n' { ' ' } else { *c })
        .collect()
}

fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn read(path: &Path) -> String {
    match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is set by
    // cargo for both `cargo run` and the test harness.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_strings_and_chars() {
        let s = strip_code("let x = \"a.unwrap()\"; // .expect(\nlet c = 'u'; let l: &'a u8;");
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(s.contains("let l: &'a u8;"));
    }

    #[test]
    fn strips_raw_strings_and_block_comments() {
        let s = strip_code("r#\"x.unwrap()\"#; /* outer /* a as u32 */ */ y");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("as u32"));
        assert!(s.ends_with("y"));
    }

    #[test]
    fn masks_cfg_test_modules_and_items() {
        let s = mask_tests("fn a() {}\n#[cfg(test)]\nmod t {\n  x.unwrap();\n}\nfn b() {}");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn a()") && s.contains("fn b()"));
        let s = mask_tests("#[cfg(test)]\nuse foo::bar;\nfn keep() {}");
        assert!(!s.contains("foo::bar") && s.contains("fn keep()"));
    }

    #[test]
    fn line_numbers_survive_masking() {
        let src = "line1\n\"str\nstr\"\nline4";
        assert_eq!(strip_code(src).lines().count(), src.lines().count());
    }

    #[test]
    fn cast_scan_flags_only_numeric_targets() {
        let root = workspace_root();
        let dir = std::env::temp_dir().join("xtask-cast-scan");
        fs::create_dir_all(&dir).expect("temp dir");
        let file = dir.join("probe.rs");
        fs::write(&file, "let a = x as u32;\nlet b = y as MyType;\n").expect("write probe");
        let mut v = Vec::new();
        check_cast_free(&root, &file, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("as u32"));
    }

    #[test]
    fn fired_assertions_classify_by_receiver_negation() {
        let mut acc = std::collections::BTreeSet::new();
        let mut rej = std::collections::BTreeSet::new();
        let src = "assert!(!check(&l, &cfg()).fired(RuleId::Npc001));\n\
                   assert!(r.has_errors() && r.fired(RuleId::Npc002));\n\
                   assert!(!reports[0].fired(RuleId::Npc003));";
        classify_fired_assertions(src, &mut acc, &mut rej);
        assert!(acc.contains("Npc001") && !rej.contains("Npc001"));
        assert!(rej.contains("Npc002") && !acc.contains("Npc002"));
        assert!(acc.contains("Npc003"));
    }

    #[test]
    fn rule_ids_collect_from_the_enum_declaration() {
        let rules = collect_rule_ids("enum RuleId { Npc001, Npc002 }\nRuleId::Npc002 => x,");
        assert_eq!(
            rules.into_iter().collect::<Vec<_>>(),
            vec!["Npc001", "Npc002"]
        );
    }

    #[test]
    fn workspace_is_clean() {
        // The real gate, run in-process so `cargo test` exercises it.
        let violations = lint_violations();
        assert!(violations.is_empty(), "{}", violations.join("\n"));
    }

    #[test]
    fn replay_verifies_a_recorded_trace_and_rejects_corruption() {
        use netpu_trace::{MemorySink, TraceEvent, TraceSink};

        let sink = MemorySink::new();
        sink.record(
            0.0,
            TraceEvent::Submitted {
                request: 1,
                tenant: 0,
                model: 0,
            },
        );
        sink.record(
            0.0,
            TraceEvent::Granted {
                request: 1,
                board: 0,
                arrival_us: 0.0,
                transfer_us: 10.0,
                latency_us: 25.0,
                start_us: 0.0,
                transfer_end_us: 10.0,
                complete_us: 25.0,
            },
        );
        sink.record(
            25.0,
            TraceEvent::Completed {
                request: 1,
                latency_us: 25.0,
            },
        );
        let dir = std::env::temp_dir().join("xtask-replay");
        fs::create_dir_all(&dir).expect("temp dir");
        let good = dir.join("good.bin");
        fs::write(&good, sink.to_bytes()).expect("write trace");
        let summary = replay_file(&good).expect("good trace verifies");
        assert!(summary.contains("1 requests"), "{summary}");
        assert!(summary.contains("1 grants"), "{summary}");

        // Truncated bytes must fail the decode, not verify anyway.
        let bad = dir.join("bad.bin");
        let mut bytes = sink.to_bytes();
        bytes.truncate(bytes.len() - 3);
        fs::write(&bad, bytes).expect("write trace");
        assert!(replay_file(&bad).is_err());
    }

    #[test]
    fn replay_summary_breaks_rejections_down_by_reason_code() {
        use netpu_trace::{MemorySink, TraceEvent, TraceSink};

        let sink = MemorySink::new();
        for (id, code) in [
            (1, "INVALID_STREAM"),
            (2, "INVALID_STREAM"),
            (3, "CRASH_POLICY"),
        ] {
            sink.record(
                0.0,
                TraceEvent::Submitted {
                    request: id,
                    tenant: 0,
                    model: 0,
                },
            );
            sink.record(
                0.0,
                TraceEvent::Rejected {
                    request: id,
                    code: code.into(),
                    rules: Vec::new(),
                },
            );
        }
        let dir = std::env::temp_dir().join("xtask-replay-rejects");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("rejects.bin");
        fs::write(&path, sink.to_bytes()).expect("write trace");
        let summary = replay_file(&path).expect("trace verifies");
        assert!(summary.contains("3 rejected"), "{summary}");
        assert!(
            summary.contains("rejections by reason: CRASH_POLICY×1, INVALID_STREAM×2"),
            "{summary}"
        );
    }

    #[test]
    fn certify_sweep_passes_on_random_models_and_reports_widths() {
        let summary = certify_sweep(false, 6).expect("random models certify");
        assert!(summary.contains("6 random streams"), "{summary}");
        assert!(summary.contains("min accumulator widths"), "{summary}");
    }
}
