//! Workspace automation (`cargo run -p xtask -- lint`,
//! `cargo run -p xtask -- replay <trace.bin>`,
//! `cargo run -p xtask -- certify [models]`,
//! `cargo run -p xtask -- certify-timing [models]`, and
//! `cargo run -p xtask -- dse [--smoke] [--write]`).
//!
//! `replay` decodes a recorded binary trace, verifies its internal
//! consistency against the arbiter recurrence (`netpu_trace::verify`),
//! proves the decode → re-encode round trip is byte-identical, and
//! prints the replay summary — including a per-`RejectReason`-code
//! breakdown of every denied request the trace recorded and, where the
//! trace carries the driver's timing annotations, a cross-check that
//! the static cycle model predicted every recorded run exactly.
//!
//! `certify` is the translation-validation release gate (DESIGN.md
//! §4.8): it compiles the whole model zoo (both BN modes) plus a
//! deterministic sweep of random valid models (1000 by default),
//! certifies every emitted stream against its own source via
//! `netpu_check::compile_certified`, and re-validates each
//! [`netpu_check::Certificate`] from scratch. Any false inequivalence
//! or stale certificate fails the gate.
//!
//! `certify-timing` is the timing-soundness release gate (DESIGN.md
//! §4.9): it prices the same zoo + random-model corpus with the
//! closed-form cycle model (`netpu_check::timing`) against every
//! fuzzer sweep instance, and fails on any disagreement with the tick
//! simulator's cycle counter — zero tolerance, no `±` band.
//!
//! `dse` is the offline design-space exploration: it enumerates
//! `HwConfig` × folding × packing × accumulator-width candidates,
//! prices each statically (timing + resources + minimal certified
//! widths), rejects unsound or over-budget points without ever
//! simulating them, and emits the Pareto frontier as a committed
//! reproducible artifact under `artifacts/dse/` (`--write` refreshes,
//! the default mode fails if the committed artifact is stale).
//!
//! `lint` enforces source-level gates that rustc and clippy cannot
//! express at the granularity the workspace wants:
//!
//! * **panic-free hot paths** — no `.unwrap()` / `.expect(` in the
//!   non-test code of `netpu-arith`, `netpu-core`, `netpu-sim`,
//!   `netpu-runtime`, `netpu-serve`, `netpu-fleet`, `netpu-check`,
//!   `netpu-compiler`, `netpu-trace`, `netpu-fuzz`, and `xtask`
//!   itself. These crates
//!   sit under the serving layer (the checker and compiler both run on
//!   the admission path, the trace sink runs inside the arbiter's
//!   critical section, and the arith kernels — including the bitsliced
//!   batch kernel — run inside every worker), where a panic poisons
//!   locks and wedges worker threads; fallible paths must return
//!   structured errors (or use the `let … else { panic!() }` form,
//!   which forces an explicit message at the site). The fuzzer is held
//!   to the same bar so a crash it reports is always the target's,
//!   never its own; `xtask` is held to it so a release gate that fails
//!   always fails with a diagnosis, not a backtrace.
//! * **audited numeric casts** — no bare `as <numeric>` casts in
//!   `netpu-arith`, `netpu-core`, `netpu-fleet`, `netpu-check`,
//!   `netpu-compiler`, `netpu-trace`, `netpu-fuzz`, and `xtask`.
//!   All width changes go through the checked/saturating helpers in
//!   `netpu_arith::cast`; that module itself is the single exemption,
//!   and every `as` inside it carries an `// audited:` comment.
//! * **documented public surfaces** — every library crate's root
//!   carries `#![deny(missing_docs)]`.
//! * **NPC fixture coverage** — every `NpcNNN` rule ID declared in
//!   `crates/check/src/diag.rs` must appear in `crates/check/tests/`
//!   in both an accepting assertion (`!…fired(RuleId::NpcNNN)`) and a
//!   rejecting one (`…fired(RuleId::NpcNNN)`), so no diagnostic ships
//!   without a fixture that triggers it and one that stays clean.
//!
//! The scanner strips comments, strings, and `#[cfg(test)]`-gated items
//! before matching, so test fixtures and doc examples are free to use
//! whatever they like. Lines are assumed rustfmt-normalized (CI runs
//! `cargo fmt --check` first), so `as` casts always read ` as `.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must not call `.unwrap()` / `.expect(`.
/// `xtask` holds itself to the same bar: the DSE search and the
/// certification gates are release tooling whose failures must be
/// structured errors, not panics.
const PANIC_FREE: &[&str] = &[
    "arith", "core", "sim", "runtime", "serve", "fleet", "check", "compiler", "trace", "fuzz",
    "xtask",
];

/// Crates whose non-test code must not contain bare numeric `as` casts.
const CAST_FREE: &[&str] = &[
    "arith", "core", "fleet", "check", "compiler", "trace", "fuzz", "xtask",
];

/// The one module allowed to contain bare casts (each one audited).
const CAST_EXEMPT: &str = "crates/arith/src/cast.rs";

/// Library crates that must carry `#![deny(missing_docs)]`.
const DOCUMENTED: &[&str] = &[
    "arith", "bench", "check", "compiler", "core", "finn", "fleet", "fuzz", "nn", "runtime",
    "serve", "sim", "trace",
];

/// Primitive types whose `as` casts must go through `netpu_arith::cast`.
const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("replay") => match args.next() {
            Some(path) => replay(Path::new(&path)),
            None => {
                eprintln!("usage: cargo run -p xtask -- replay <trace.bin>");
                ExitCode::FAILURE
            }
        },
        Some("certify") => match args.next().map(|n| n.parse::<usize>()) {
            None => certify(DEFAULT_CERTIFY_MODELS),
            Some(Ok(models)) => certify(models),
            Some(Err(_)) => {
                eprintln!("usage: cargo run -p xtask -- certify [models]");
                ExitCode::FAILURE
            }
        },
        Some("certify-timing") => match args.next().map(|n| n.parse::<usize>()) {
            None => certify_timing(DEFAULT_CERTIFY_MODELS),
            Some(Ok(models)) => certify_timing(models),
            Some(Err(_)) => {
                eprintln!("usage: cargo run -p xtask -- certify-timing [models]");
                ExitCode::FAILURE
            }
        },
        Some("dse") => {
            let mut smoke = false;
            let mut write = false;
            let mut bad = None;
            for flag in args {
                match flag.as_str() {
                    "--smoke" => smoke = true,
                    "--write" => write = true,
                    other => bad = Some(other.to_string()),
                }
            }
            match bad {
                None => dse(smoke, write),
                Some(flag) => {
                    eprintln!(
                        "usage: cargo run -p xtask -- dse [--smoke] [--write]   (got {flag:?})"
                    );
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint | replay <trace.bin> | certify [models] | \
                 certify-timing [models] | dse [--smoke] [--write]   (got {:?})",
                other.unwrap_or("<nothing>")
            );
            ExitCode::FAILURE
        }
    }
}

fn replay(path: &Path) -> ExitCode {
    match replay_file(path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask replay: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Decodes, round-trips, and verifies one binary trace file, returning
/// the printable summary line.
fn replay_file(path: &Path) -> Result<String, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let reader =
        netpu_trace::TraceReader::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    // The codec promises decode∘encode is the identity on accepted
    // input; hold it to that before trusting anything it decoded.
    if reader.to_bytes() != bytes {
        return Err(format!(
            "{}: decode → re-encode is not byte-identical",
            path.display()
        ));
    }
    let s = netpu_trace::verify(reader.records())
        .map_err(|e| format!("{}: inconsistent trace: {e}", path.display()))?;
    let mut summary = format!(
        "xtask replay: {} verified — {} records / {} requests \
         ({} completed, {} failed, {} rejected), {} crashes ({} requeued), \
         {} grants over {:.1} us makespan, {} sim events, {} probe samples",
        path.display(),
        s.records,
        s.requests,
        s.completed,
        s.failed,
        s.rejected,
        s.crashes,
        s.requeues,
        s.grants,
        s.makespan_us,
        s.sim_events,
        s.probe_samples
    );
    // Denied requests by stable RejectReason code, so a glance at the
    // replay line says *why* a trace's admissions failed (structural
    // stream rejects vs strict-range vs strict-equiv vs crash policy).
    let mut reject_codes: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for rec in reader.records() {
        if let netpu_trace::TraceEvent::Rejected { code, .. } = &rec.event {
            *reject_codes.entry(code.as_str()).or_insert(0) += 1;
        }
    }
    if !reject_codes.is_empty() {
        let breakdown: Vec<String> = reject_codes
            .iter()
            .map(|(code, n)| format!("{code}×{n}"))
            .collect();
        let _ = write!(summary, "; rejections by reason: {}", breakdown.join(", "));
    }
    // Predicted-vs-recorded cycle cross-check: the driver annotates
    // every sink-traced run with the static timing certificate next to
    // the simulator's own count (`timing.predicted_cycles` /
    // `timing.recorded_cycles` Meta pairs, in order). Replay re-pairs
    // them and holds the model to exactness on the recorded runs too.
    let mut predicted = Vec::new();
    let mut recorded = Vec::new();
    for rec in reader.records() {
        if let netpu_trace::TraceEvent::Meta { key, value } = &rec.event {
            match key.as_str() {
                "timing.predicted_cycles" => predicted.push(value.clone()),
                "timing.recorded_cycles" => recorded.push(value.clone()),
                _ => {}
            }
        }
    }
    if predicted.len() != recorded.len() {
        return Err(format!(
            "{}: {} predicted-cycle annotations but {} recorded-cycle annotations",
            path.display(),
            predicted.len(),
            recorded.len()
        ));
    }
    if !predicted.is_empty() {
        let mut exact = 0usize;
        for (i, (p, r)) in predicted.iter().zip(&recorded).enumerate() {
            if p != r {
                return Err(format!(
                    "{}: timing model diverges on recorded run {i}: \
                     predicted {p} cycles, recorded {r}",
                    path.display()
                ));
            }
            exact += 1;
        }
        let _ = write!(
            summary,
            "; timing model: {exact}/{exact} runs predicted == recorded cycles"
        );
    }
    Ok(summary)
}

/// Random-model sweep size of a bare `xtask certify`.
const DEFAULT_CERTIFY_MODELS: usize = 1000;

fn certify(models: usize) -> ExitCode {
    match certify_sweep(true, models) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask certify: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Compiles and certifies the zoo (when `zoo` is set) plus `models`
/// deterministic random models, failing on the first false
/// inequivalence or certificate that does not re-validate. Returns the
/// printable summary line.
fn certify_sweep(zoo: bool, models: usize) -> Result<String, String> {
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::{random_model, ZooModel};

    let cfg = netpu_core::HwConfig::paper_instance();
    let mut widths = (u8::MAX, 0u8);
    let mut zoo_count = 0usize;
    if zoo {
        for (i, variant) in ZooModel::ALL.into_iter().enumerate() {
            for mode in [BnMode::Folded, BnMode::Hardware] {
                let Ok(model) = variant.build_untrained(10 + u64::try_from(i).unwrap_or(0), mode)
                else {
                    continue;
                };
                certify_stream(&model, 99, &cfg, &mut widths)?;
                zoo_count += 1;
            }
        }
        if zoo_count < ZooModel::ALL.len() {
            return Err(format!("zoo sweep degenerated to {zoo_count} models"));
        }
    }
    for seed in 0..models {
        let seed = u64::try_from(seed).unwrap_or(0);
        let model = random_model(seed);
        certify_stream(&model, seed ^ 0xA5A5, &cfg, &mut widths)?;
    }
    let mut summary = format!(
        "xtask certify: {zoo_count} zoo + {models} random streams certified \
         equivalent, zero false inequivalences; every certificate re-validates"
    );
    if widths.0 <= widths.1 {
        let _ = write!(
            summary,
            " (exact min accumulator widths {}–{} bits)",
            widths.0, widths.1
        );
    }
    Ok(summary)
}

/// Compiles `model` on a seeded input and certifies the emitted stream
/// against it; extends `widths` with the certificate's exact minimal
/// accumulator width.
fn certify_stream(
    model: &netpu_nn::qmodel::QuantMlp,
    px_seed: u64,
    cfg: &netpu_core::HwConfig,
    widths: &mut (u8, u8),
) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(px_seed);
    let pixels: Vec<u8> = (0..model.input.len).map(|_| rng.gen()).collect();
    let (loadable, cert) = netpu_check::compile_certified(model, &pixels, cfg)
        .map_err(|e| format!("{}: {e}", model.name))?;
    if !cert.validate(model, &loadable.words, cfg) {
        return Err(format!("{}: certificate failed re-validation", model.name));
    }
    widths.0 = widths.0.min(cert.min_accumulator_bits);
    widths.1 = widths.1.max(cert.min_accumulator_bits);
    Ok(())
}

fn certify_timing(models: usize) -> ExitCode {
    match certify_timing_sweep(true, models) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask certify-timing: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The timing-certification differential gate: proves the closed-form
/// cycle model (`netpu_check::timing`, DESIGN.md §4.9) **exact** —
/// zero tolerance, not a bound — against the tick simulator's cycle
/// counter across the full zoo (both BN modes, both weight packings),
/// `models` deterministic random models, and every fuzzer sweep
/// instance, plus a pre-packaged burst. A `(stream, instance)` pair
/// the instance statically rejects is skipped (there is no simulated
/// cycle count to compare against); every admitted pair must match to
/// the cycle.
fn certify_timing_sweep(zoo: bool, models: usize) -> Result<String, String> {
    use netpu_compiler::PackingMode;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::{random_model, ZooModel};

    let configs = netpu_fuzz::sweep_configs();
    let mut compared = 0usize;
    let mut skipped = 0usize;
    let mut zoo_streams = 0usize;
    if zoo {
        for (i, variant) in ZooModel::ALL.into_iter().enumerate() {
            for mode in [BnMode::Folded, BnMode::Hardware] {
                let Ok(model) = variant.build_untrained(10 + u64::try_from(i).unwrap_or(0), mode)
                else {
                    continue;
                };
                for packing in [PackingMode::Lanes8, PackingMode::Dense] {
                    let words = compile_timing_stream(&model, 99, packing)?;
                    for cfg in &configs {
                        if certify_timing_stream(&words, cfg)? {
                            compared += 1;
                        } else {
                            skipped += 1;
                        }
                    }
                    zoo_streams += 1;
                }
            }
        }
        if zoo_streams < 2 * ZooModel::ALL.len() {
            return Err(format!("zoo sweep degenerated to {zoo_streams} streams"));
        }
        certify_burst_timing()?;
    }
    for seed in 0..models {
        let seed = u64::try_from(seed).unwrap_or(0);
        let model = random_model(seed);
        let words = compile_timing_stream(&model, seed ^ 0xA5A5, PackingMode::Lanes8)?;
        for cfg in &configs {
            if certify_timing_stream(&words, cfg)? {
                compared += 1;
            } else {
                skipped += 1;
            }
        }
    }
    if compared == 0 {
        return Err("no (stream, instance) pair was actually compared".into());
    }
    Ok(format!(
        "xtask certify-timing: {compared} (stream, instance) pairs cycle-exact against the \
         tick simulator ({zoo_streams} zoo streams + {models} random models x {} sweep \
         instances; {skipped} pairs skipped where the instance rejects the stream), \
         zero tolerance; burst model exact",
        configs.len()
    ))
}

/// Compiles `model` on a seeded input under `packing`, returning the
/// raw stream words.
fn compile_timing_stream(
    model: &netpu_nn::qmodel::QuantMlp,
    px_seed: u64,
    packing: netpu_compiler::PackingMode,
) -> Result<Vec<u64>, String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(px_seed);
    let pixels: Vec<u8> = (0..model.input.len).map(|_| rng.gen()).collect();
    let loadable = netpu_compiler::compile_packed(model, &pixels, packing)
        .map_err(|e| format!("{}: {e}", model.name))?;
    Ok(loadable.words)
}

/// Proves one stream's statically predicted cycle count equals the tick
/// simulator's on `cfg`. `Ok(false)` means the instance rejects the
/// stream (nothing to compare); `Ok(true)` is an exact match; any
/// mismatch is an error.
fn certify_timing_stream(words: &[u64], cfg: &netpu_core::HwConfig) -> Result<bool, String> {
    let Some(predicted) = netpu_check::predict_cycles(words, cfg) else {
        return Err("compiled stream failed to decode for timing analysis".into());
    };
    let Ok(run) = netpu_core::run_inference_fast(cfg, words.to_vec()) else {
        return Ok(false);
    };
    if run.cycles != predicted {
        return Err(format!(
            "timing certificate broken on {}: predicted {predicted} cycles, \
             simulator counted {}",
            netpu_fuzz::config_tag(cfg),
            run.cycles
        ));
    }
    Ok(true)
}

/// Proves the burst extrapolation (`StreamTiming::burst_cycles`) exact
/// on a pre-packaged 3-inference burst of the TFC-W1A1 stream.
fn certify_burst_timing() -> Result<(), String> {
    use netpu_compiler::PackingMode;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let cfg = netpu_core::HwConfig::paper_instance();
    let model = ZooModel::TfcW1A1
        .build_untrained(7, BnMode::Folded)
        .map_err(|e| format!("burst model: {e}"))?;
    let mut rng = StdRng::seed_from_u64(123);
    let inputs: Vec<Vec<u8>> = (0..3)
        .map(|_| (0..model.input.len).map(|_| rng.gen()).collect())
        .collect();
    let burst = netpu_compiler::batch_stream(&model, &inputs, PackingMode::Lanes8)
        .map_err(|e| format!("burst stream: {e}"))?;
    let single = netpu_compiler::compile_packed(&model, &inputs[0], PackingMode::Lanes8)
        .map_err(|e| format!("burst head: {e}"))?;
    let decoded =
        netpu_compiler::decode(&single.words).map_err(|e| format!("burst head decode: {e}"))?;
    let predicted = netpu_check::timing::analyze(&decoded, &cfg).burst_cycles(3);
    let run = netpu_core::run_inference_fast(&cfg, burst)
        .map_err(|e| format!("burst simulation: {e}"))?;
    if run.cycles != predicted {
        return Err(format!(
            "burst timing broken: predicted {predicted} cycles, simulator counted {}",
            run.cycles
        ));
    }
    Ok(())
}

fn dse(smoke: bool, write: bool) -> ExitCode {
    match dse_run(smoke, write) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask dse: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Relative directory the committed DSE frontier artifacts live in.
const DSE_ARTIFACT_DIR: &str = "artifacts/dse";

/// One statically admissible design point, priced entirely offline by
/// the timing certificate and the resource model.
struct DsePoint {
    cfg: netpu_core::HwConfig,
    packing: netpu_compiler::PackingMode,
    cycles: u64,
    latency_us: f64,
    fps: f64,
    cold_us: f64,
    resident_us: f64,
    util: netpu_core::resources::Utilization,
}

impl DsePoint {
    /// Stable tag naming the point: the fuzzer's config tag plus the
    /// multiplier mappings (which only move resources, not cycles).
    fn tag(&self) -> String {
        format!(
            "{}{}{}",
            netpu_fuzz::config_tag(&self.cfg),
            if matches!(self.cfg.bn_mul, netpu_core::MulImpl::Lut) {
                "-bnlut"
            } else {
                ""
            },
            if matches!(self.cfg.int_mul, netpu_core::MulImpl::Lut) {
                "-intlut"
            } else {
                ""
            },
        )
    }

    /// Weak Pareto dominance on the four frontier objectives
    /// (per-inference cycles, LUTs, DSPs, BRAM36).
    fn dominates(&self, other: &DsePoint) -> bool {
        self.cycles <= other.cycles
            && self.util.luts <= other.util.luts
            && self.util.dsps <= other.util.dsps
            && self.util.bram36 <= other.util.bram36
    }
}

/// Everything one DSE search produced for one model.
struct DseOutcome {
    frontier: Vec<DsePoint>,
    seed: DsePoint,
    candidates: usize,
    infeasible: usize,
    unsound: usize,
    min_acc: u8,
}

/// Runs the offline design-space search for the given zoo targets
/// (TFC-W1A1 only under `--smoke`), checks each frontier against the
/// committed artifact (or regenerates it under `--write`), asserts the
/// hand-picked paper instance is reproduced or statically dominated,
/// and prints the Table VI-style comparison.
fn dse_run(smoke: bool, write: bool) -> Result<String, String> {
    use netpu_nn::zoo::ZooModel;
    let targets: &[ZooModel] = if smoke {
        &[ZooModel::TfcW1A1]
    } else {
        &[ZooModel::TfcW1A1, ZooModel::SfcW1A1, ZooModel::LfcW1A1]
    };
    let root = workspace_root();
    let mut lines = Vec::new();
    for &variant in targets {
        let outcome = dse_model(variant)?;
        if !outcome.frontier.iter().any(|p| p.dominates(&outcome.seed)) {
            return Err(format!(
                "{}: no frontier point reproduces or dominates the paper instance",
                variant.name()
            ));
        }
        let artifact = dse_artifact(variant, &outcome);
        let path = root
            .join(DSE_ARTIFACT_DIR)
            .join(format!("{}.tsv", variant.name().to_lowercase()));
        if write {
            if let Some(dir) = path.parent() {
                fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
            fs::write(&path, &artifact).map_err(|e| format!("{}: {e}", path.display()))?;
        } else {
            let committed = fs::read_to_string(&path).map_err(|e| {
                format!(
                    "{}: {e} (generate the frontier artifact with `xtask dse --write`)",
                    path.display()
                )
            })?;
            if committed != artifact {
                return Err(format!(
                    "{}: committed frontier is stale; regenerate with `xtask dse --write`",
                    path.display()
                ));
            }
        }
        lines.push(dse_comparison(variant, &outcome, &path, &root));
    }
    Ok(format!("xtask dse:\n{}", lines.join("\n")))
}

/// Enumerates and statically prices the full candidate grid for one
/// zoo model: ring/folding geometry x multiplier mappings x weight
/// packing x accumulator width (the absint-proved minimum and the
/// paper's 32). Candidates are rejected *statically* — an invalid
/// geometry or one over the Ultra96-V2 envelope is infeasible, and one
/// the four-tier checker finds errors on is unsound. Nothing here
/// simulates; `xtask certify-timing` is what makes the prices
/// trustworthy.
fn dse_model(variant: netpu_nn::zoo::ZooModel) -> Result<DseOutcome, String> {
    use netpu_compiler::PackingMode;
    use netpu_core::resources::{netpu_utilization, ULTRA96_V2};
    use netpu_core::{HwConfig, MulImpl};
    use netpu_nn::export::BnMode;

    let model = variant
        .build_untrained(42, BnMode::Folded)
        .map_err(|e| format!("{}: {e}", variant.name()))?;
    let pixels = vec![0u8; model.input.len];
    let mut streams = Vec::new();
    for packing in [PackingMode::Lanes8, PackingMode::Dense] {
        let loadable = netpu_compiler::compile_packed(&model, &pixels, packing)
            .map_err(|e| format!("{}: {e}", variant.name()))?;
        let decoded = netpu_compiler::decode(&loadable.words)
            .map_err(|e| format!("{}: decode: {e}", variant.name()))?;
        streams.push((packing, loadable.words, decoded.settings));
    }
    let reference = HwConfig::paper_instance();
    let (_, analysis) = netpu_check::check_words_analyzed(&streams[0].1, &reference);
    let min_acc = analysis
        .as_ref()
        .map_or(32, minimal_accumulator_bits)
        .clamp(8, 32);
    let mut accs = vec![min_acc, 32];
    accs.dedup();
    let mut points = Vec::new();
    let mut candidates = 0usize;
    let mut infeasible = 0usize;
    let mut unsound = 0usize;
    for lpus in [2usize, 4] {
        for tnpus_per_lpu in [1usize, 2, 4, 8, 16] {
            for mul_lanes in [1usize, 2, 4, 8] {
                for double_buffered_weights in [false, true] {
                    for (packing, words, settings) in &streams {
                        for &accumulator_bits in &accs {
                            for bn_mul in [MulImpl::Dsp, MulImpl::Lut] {
                                for int_mul in [MulImpl::Dsp, MulImpl::Lut] {
                                    candidates += 1;
                                    let cfg = HwConfig {
                                        lpus,
                                        tnpus_per_lpu,
                                        mul_lanes,
                                        bn_mul,
                                        int_mul,
                                        double_buffered_weights,
                                        dense_weight_packing: matches!(packing, PackingMode::Dense),
                                        accumulator_bits,
                                        ..reference
                                    };
                                    if cfg.validate().is_err() {
                                        infeasible += 1;
                                        continue;
                                    }
                                    let util = netpu_utilization(&cfg);
                                    if !util.fits(&ULTRA96_V2) {
                                        infeasible += 1;
                                        continue;
                                    }
                                    if netpu_check::check_words(words, &cfg).has_errors() {
                                        unsound += 1;
                                        continue;
                                    }
                                    points.push(dse_price(cfg, *packing, settings, util));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let seed = dse_price(
        reference,
        PackingMode::Lanes8,
        &streams[0].2,
        netpu_utilization(&reference),
    );
    Ok(DseOutcome {
        frontier: dse_pareto(points),
        seed,
        candidates,
        infeasible,
        unsound,
        min_acc,
    })
}

/// Prices one admissible candidate with the timing certificate, the
/// §V DMA model, and the resource model.
fn dse_price(
    cfg: netpu_core::HwConfig,
    packing: netpu_compiler::PackingMode,
    settings: &[netpu_compiler::LayerSetting],
    util: netpu_core::resources::Utilization,
) -> DsePoint {
    let t = netpu_check::timing::analyze_settings(settings, packing, &cfg);
    let dma = netpu_check::DmaParams::zynq_uls();
    DsePoint {
        cycles: t.total_cycles(),
        latency_us: t.latency_us(cfg.clock_mhz),
        fps: t.steady_state_fps(cfg.clock_mhz),
        cold_us: t.cold_latency_us(&dma, cfg.clock_mhz),
        resident_us: t.resident_latency_us(&dma, cfg.clock_mhz),
        cfg,
        packing,
        util,
    }
}

/// The minimal signed accumulator width proved sufficient by the
/// absint bounds — the NPC019 answer, recomputed from the public
/// per-neuron intervals (the reference instance is 32-bit, so the
/// clamped intervals equal the true envelopes for any sound model).
fn minimal_accumulator_bits(analysis: &netpu_check::RangeAnalysis) -> u8 {
    let mut width = 0u8;
    for layer in &analysis.layers {
        for neuron in &layer.neurons {
            if let Some((lo, hi)) = neuron.acc {
                width = width.max(interval_width(i64::from(lo), i64::from(hi)));
            }
        }
    }
    if width == 0 {
        32
    } else {
        width
    }
}

/// Bits of a signed two's-complement field covering `[lo, hi]`
/// (mirrors the absint analyzer's own width rule).
fn interval_width(lo: i64, hi: i64) -> u8 {
    for bits in 1u8..=63 {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        if lo >= min && hi <= max {
            return bits;
        }
    }
    64
}

/// Reduces priced points to the Pareto frontier over (cycles, LUTs,
/// DSPs, BRAM36), deterministically ordered by cycles then resources
/// then tag; exact objective ties keep only the first point in that
/// order.
fn dse_pareto(mut points: Vec<DsePoint>) -> Vec<DsePoint> {
    points.sort_by(|a, b| {
        a.cycles
            .cmp(&b.cycles)
            .then(a.util.luts.cmp(&b.util.luts))
            .then(a.util.dsps.cmp(&b.util.dsps))
            .then(
                a.util
                    .bram36
                    .partial_cmp(&b.util.bram36)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.tag().cmp(&b.tag()))
    });
    let mut frontier: Vec<DsePoint> = Vec::new();
    for p in points {
        if !frontier.iter().any(|q| q.dominates(&p)) {
            frontier.push(p);
        }
    }
    frontier
}

/// Renders one search's committed artifact: provenance header plus the
/// frontier as TSV, fully deterministic (fixed model seed, fixed input,
/// closed-form prices, stable ordering and float formatting).
fn dse_artifact(variant: netpu_nn::zoo::ZooModel, outcome: &DseOutcome) -> String {
    use netpu_core::resources::ULTRA96_V2;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# xtask dse frontier: {} (build_untrained seed 42, BN folded)",
        variant.name()
    );
    let _ = writeln!(
        out,
        "# budget: {} ({} LUT, {} DSP, {} FF, {} BRAM36)",
        ULTRA96_V2.name, ULTRA96_V2.luts, ULTRA96_V2.dsps, ULTRA96_V2.ffs, ULTRA96_V2.bram36
    );
    let _ = writeln!(
        out,
        "# search: {} candidates, {} infeasible, {} unsound, {} frontier points; \
         minimal certified accumulator width {} bits",
        outcome.candidates,
        outcome.infeasible,
        outcome.unsound,
        outcome.frontier.len(),
        outcome.min_acc
    );
    let _ = writeln!(
        out,
        "# seed instance: {}",
        dse_row(&outcome.seed).replace('\t', " ")
    );
    let _ = writeln!(
        out,
        "config\tpacking\tcycles\tlatency_us\tfps\tcold_us\tresident_us\tluts\tdsps\tffs\tbram36"
    );
    for p in &outcome.frontier {
        let _ = writeln!(out, "{}", dse_row(p));
    }
    out
}

/// One TSV row of a priced design point.
fn dse_row(p: &DsePoint) -> String {
    format!(
        "{}\t{:?}\t{}\t{:.3}\t{:.1}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{:.1}",
        p.tag(),
        p.packing,
        p.cycles,
        p.latency_us,
        p.fps,
        p.cold_us,
        p.resident_us,
        p.util.luts,
        p.util.dsps,
        p.util.ffs,
        p.util.bram36
    )
}

/// The printable Table VI-style comparison for one model: the
/// hand-picked seed instance against the frontier's best-latency point
/// and its cheapest point matching the seed's latency.
fn dse_comparison(
    variant: netpu_nn::zoo::ZooModel,
    outcome: &DseOutcome,
    path: &Path,
    root: &Path,
) -> String {
    let describe = |p: &DsePoint| {
        format!(
            "{} = {} cycles ({:.1} us, {:.0} fps, {} LUT, {} DSP, {:.1} BRAM36)",
            p.tag(),
            p.cycles,
            p.latency_us,
            p.fps,
            p.util.luts,
            p.util.dsps,
            p.util.bram36
        )
    };
    let mut out = format!(
        "{}:\n  seed     {}",
        variant.name(),
        describe(&outcome.seed)
    );
    if let Some(best) = outcome.frontier.first() {
        let _ = write!(out, "\n  fastest  {}", describe(best));
    }
    if let Some(cheapest) = outcome
        .frontier
        .iter()
        .filter(|p| p.cycles <= outcome.seed.cycles)
        .min_by_key(|p| (p.util.luts, p.util.dsps))
    {
        let _ = write!(out, "\n  cheapest@seed-latency  {}", describe(cheapest));
    }
    let _ = write!(
        out,
        "\n  frontier: {} points of {} candidates ({} infeasible, {} unsound statically \
         rejected), artifact {}",
        outcome.frontier.len(),
        outcome.candidates,
        outcome.infeasible,
        outcome.unsound,
        rel(root, path)
    );
    out
}

fn lint() -> ExitCode {
    let violations = lint_violations();
    if violations.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn lint_violations() -> Vec<String> {
    let root = workspace_root();
    let mut violations = Vec::new();

    for krate in PANIC_FREE {
        for file in rust_sources(&root.join("crates").join(krate).join("src")) {
            check_panic_free(&root, &file, &mut violations);
        }
    }
    for krate in CAST_FREE {
        for file in rust_sources(&root.join("crates").join(krate).join("src")) {
            if rel(&root, &file) == CAST_EXEMPT {
                continue;
            }
            check_cast_free(&root, &file, &mut violations);
        }
    }
    for krate in DOCUMENTED {
        let lib = root.join("crates").join(krate).join("src").join("lib.rs");
        let text = read(&lib);
        if !text.contains("#![deny(missing_docs)]") {
            violations.push(format!(
                "{}: library root lacks #![deny(missing_docs)]",
                rel(&root, &lib)
            ));
        }
    }
    check_rule_fixture_coverage(&root, &mut violations);

    violations
}

/// Tests directory whose fixtures must cover every NPC rule both ways.
const RULE_FIXTURES: &str = "crates/check/tests";

fn check_rule_fixture_coverage(root: &Path, out: &mut Vec<String>) {
    let diag = strip_code(&read(&root.join("crates/check/src/diag.rs")));
    let rules = collect_rule_ids(&diag);
    if rules.is_empty() {
        out.push("crates/check/src/diag.rs: no NpcNNN rule IDs found".into());
        return;
    }
    let mut accepting = std::collections::BTreeSet::new();
    let mut rejecting = std::collections::BTreeSet::new();
    for file in rust_sources(&root.join(RULE_FIXTURES)) {
        classify_fired_assertions(&strip_code(&read(&file)), &mut accepting, &mut rejecting);
    }
    for rule in &rules {
        if !accepting.contains(rule) {
            out.push(format!(
                "{RULE_FIXTURES}: {rule} has no accepting fixture \
                 (an `!…fired(RuleId::{rule})` assertion)"
            ));
        }
        if !rejecting.contains(rule) {
            out.push(format!(
                "{RULE_FIXTURES}: {rule} has no rejecting fixture \
                 (a `…fired(RuleId::{rule})` assertion)"
            ));
        }
    }
}

/// Extracts every `NpcNNN` identifier from stripped source.
fn collect_rule_ids(stripped: &str) -> std::collections::BTreeSet<String> {
    let mut rules = std::collections::BTreeSet::new();
    let bytes = stripped.as_bytes();
    let mut search = 0;
    while let Some(found) = stripped[search..].find("Npc") {
        let start = search + found;
        let boundary = start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric()
                || bytes[start - 1] == b'_'
                || bytes[start - 1] == b':');
        let digits: String = stripped[start + 3..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if boundary && !digits.is_empty() {
            rules.insert(format!("Npc{digits}"));
        }
        search = start + 3;
    }
    rules
}

/// Finds every `.fired(RuleId::NpcNNN)` call in stripped test source and
/// classifies it as accepting (the whole receiver expression is negated
/// with `!`) or rejecting (it is not).
fn classify_fired_assertions(
    stripped: &str,
    accepting: &mut std::collections::BTreeSet<String>,
    rejecting: &mut std::collections::BTreeSet<String>,
) {
    const NEEDLE: &str = ".fired(RuleId::Npc";
    let mut search = 0;
    while let Some(found) = stripped[search..].find(NEEDLE) {
        let dot = search + found;
        let digits_start = dot + NEEDLE.len();
        let digits: String = stripped[digits_start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if !digits.is_empty() {
            let rule = format!("Npc{digits}");
            if negated_receiver(stripped.as_bytes(), dot) {
                accepting.insert(rule);
            } else {
                rejecting.insert(rule);
            }
        }
        search = digits_start;
    }
}

/// Walks backward from the `.` of a `.fired(…)` call over the receiver
/// expression — identifiers, paths, field/method chains, and balanced
/// `(…)` / `[…]` groups — and reports whether the first character
/// beyond it is a `!` negation.
fn negated_receiver(bytes: &[u8], dot: usize) -> bool {
    let mut depth = 0usize;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let c = bytes[j] as char;
        if c == ')' || c == ']' {
            depth += 1;
        } else if c == '(' || c == '[' {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if depth > 0 || c.is_ascii_alphanumeric() || "_.:".contains(c) || c.is_whitespace() {
            // Still inside the receiver (or a nested group).
        } else {
            return c == '!';
        }
    }
    false
}

fn check_panic_free(root: &Path, file: &Path, out: &mut Vec<String>) {
    let masked = mask_tests(&strip_code(&read(file)));
    for (lineno, line) in masked.lines().enumerate() {
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{}:{}: `{}` in non-test code (return an error or use `let … else`)",
                    rel(root, file),
                    lineno + 1,
                    needle.trim_end_matches('(')
                );
                out.push(v);
            }
        }
    }
}

fn check_cast_free(root: &Path, file: &Path, out: &mut Vec<String>) {
    let masked = mask_tests(&strip_code(&read(file)));
    for (lineno, line) in masked.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find(" as ") {
            let after = &rest[pos + 4..];
            let target: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NUMERIC.contains(&target.as_str()) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{}:{}: bare `as {}` cast (use a netpu_arith::cast helper)",
                    rel(root, file),
                    lineno + 1,
                    target
                );
                out.push(v);
            }
            rest = after;
        }
    }
}

/// Blanks comments, string literals, and char literals with spaces,
/// preserving newlines so line numbers survive.
fn strip_code(src: &str) -> String {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < bytes.len() && bytes[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        } else if c == 'r' && matches!(next, Some('"') | Some('#')) && raw_string_at(&bytes, i) {
            i = blank_raw_string(&bytes, i, &mut out);
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        } else if c == '\'' && char_literal_at(&bytes, i) {
            out.push(' ');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if bytes[i] == '\'' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// `true` when the `r` at `i` starts a raw string (`r"…"`, `r#"…"#`).
fn raw_string_at(bytes: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Blanks a raw string starting at `i`; returns the index past it.
fn blank_raw_string(bytes: &[char], i: usize, out: &mut String) -> usize {
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // Opening `r##"`.
    for _ in i..=j {
        out.push(' ');
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == '"' && bytes[j + 1..].iter().take(hashes).all(|c| *c == '#') {
            for _ in 0..=hashes {
                out.push(' ');
            }
            return j + 1 + hashes;
        }
        out.push(if bytes[j] == '\n' { '\n' } else { ' ' });
        j += 1;
    }
    j
}

/// `true` when the `'` at `i` starts a char literal rather than a
/// lifetime: `'x'` or `'\…'`.
fn char_literal_at(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Blanks every `#[cfg(test)]`-gated item (attribute through matching
/// closing brace or semicolon) in already-stripped source.
fn mask_tests(stripped: &str) -> String {
    let chars: Vec<char> = stripped.chars().collect();
    let mut blank = vec![false; chars.len()];
    let text: String = chars.iter().collect();
    let mut search = 0;
    while let Some(found) = text[search..].find("#[cfg(test)]") {
        let attr_start = search + found;
        let mut j = attr_start;
        // Blank the attribute, any stacked attributes after it, and the
        // gated item: through the matching `}` if a `{` comes before a
        // top-level `;`, else through the `;`.
        let mut depth = 0usize;
        let mut saw_brace = false;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    depth += 1;
                    saw_brace = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if saw_brace && depth == 0 {
                        blank[j] = true;
                        j += 1;
                        break;
                    }
                }
                ';' if !saw_brace => {
                    blank[j] = true;
                    j += 1;
                    break;
                }
                _ => {}
            }
            blank[j] = true;
            j += 1;
        }
        search = j.max(attr_start + 1);
    }
    chars
        .iter()
        .zip(&blank)
        .map(|(c, b)| if *b && *c != '\n' { ' ' } else { *c })
        .collect()
}

fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn read(path: &Path) -> String {
    match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is set by
    // cargo for both `cargo run` and the test harness.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_strings_and_chars() {
        let s = strip_code("let x = \"a.unwrap()\"; // .expect(\nlet c = 'u'; let l: &'a u8;");
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(s.contains("let l: &'a u8;"));
    }

    #[test]
    fn strips_raw_strings_and_block_comments() {
        let s = strip_code("r#\"x.unwrap()\"#; /* outer /* a as u32 */ */ y");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("as u32"));
        assert!(s.ends_with("y"));
    }

    #[test]
    fn masks_cfg_test_modules_and_items() {
        let s = mask_tests("fn a() {}\n#[cfg(test)]\nmod t {\n  x.unwrap();\n}\nfn b() {}");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn a()") && s.contains("fn b()"));
        let s = mask_tests("#[cfg(test)]\nuse foo::bar;\nfn keep() {}");
        assert!(!s.contains("foo::bar") && s.contains("fn keep()"));
    }

    #[test]
    fn line_numbers_survive_masking() {
        let src = "line1\n\"str\nstr\"\nline4";
        assert_eq!(strip_code(src).lines().count(), src.lines().count());
    }

    #[test]
    fn cast_scan_flags_only_numeric_targets() {
        let root = workspace_root();
        let dir = std::env::temp_dir().join("xtask-cast-scan");
        fs::create_dir_all(&dir).expect("temp dir");
        let file = dir.join("probe.rs");
        fs::write(&file, "let a = x as u32;\nlet b = y as MyType;\n").expect("write probe");
        let mut v = Vec::new();
        check_cast_free(&root, &file, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("as u32"));
    }

    #[test]
    fn fired_assertions_classify_by_receiver_negation() {
        let mut acc = std::collections::BTreeSet::new();
        let mut rej = std::collections::BTreeSet::new();
        let src = "assert!(!check(&l, &cfg()).fired(RuleId::Npc001));\n\
                   assert!(r.has_errors() && r.fired(RuleId::Npc002));\n\
                   assert!(!reports[0].fired(RuleId::Npc003));";
        classify_fired_assertions(src, &mut acc, &mut rej);
        assert!(acc.contains("Npc001") && !rej.contains("Npc001"));
        assert!(rej.contains("Npc002") && !acc.contains("Npc002"));
        assert!(acc.contains("Npc003"));
    }

    #[test]
    fn rule_ids_collect_from_the_enum_declaration() {
        let rules = collect_rule_ids("enum RuleId { Npc001, Npc002 }\nRuleId::Npc002 => x,");
        assert_eq!(
            rules.into_iter().collect::<Vec<_>>(),
            vec!["Npc001", "Npc002"]
        );
    }

    #[test]
    fn workspace_is_clean() {
        // The real gate, run in-process so `cargo test` exercises it.
        let violations = lint_violations();
        assert!(violations.is_empty(), "{}", violations.join("\n"));
    }

    #[test]
    fn replay_verifies_a_recorded_trace_and_rejects_corruption() {
        use netpu_trace::{MemorySink, TraceEvent, TraceSink};

        let sink = MemorySink::new();
        sink.record(
            0.0,
            TraceEvent::Submitted {
                request: 1,
                tenant: 0,
                model: 0,
            },
        );
        sink.record(
            0.0,
            TraceEvent::Granted {
                request: 1,
                board: 0,
                arrival_us: 0.0,
                transfer_us: 10.0,
                latency_us: 25.0,
                start_us: 0.0,
                transfer_end_us: 10.0,
                complete_us: 25.0,
            },
        );
        sink.record(
            25.0,
            TraceEvent::Completed {
                request: 1,
                latency_us: 25.0,
            },
        );
        let dir = std::env::temp_dir().join("xtask-replay");
        fs::create_dir_all(&dir).expect("temp dir");
        let good = dir.join("good.bin");
        fs::write(&good, sink.to_bytes()).expect("write trace");
        let summary = replay_file(&good).expect("good trace verifies");
        assert!(summary.contains("1 requests"), "{summary}");
        assert!(summary.contains("1 grants"), "{summary}");

        // Truncated bytes must fail the decode, not verify anyway.
        let bad = dir.join("bad.bin");
        let mut bytes = sink.to_bytes();
        bytes.truncate(bytes.len() - 3);
        fs::write(&bad, bytes).expect("write trace");
        assert!(replay_file(&bad).is_err());
    }

    #[test]
    fn replay_summary_breaks_rejections_down_by_reason_code() {
        use netpu_trace::{MemorySink, TraceEvent, TraceSink};

        let sink = MemorySink::new();
        for (id, code) in [
            (1, "INVALID_STREAM"),
            (2, "INVALID_STREAM"),
            (3, "CRASH_POLICY"),
        ] {
            sink.record(
                0.0,
                TraceEvent::Submitted {
                    request: id,
                    tenant: 0,
                    model: 0,
                },
            );
            sink.record(
                0.0,
                TraceEvent::Rejected {
                    request: id,
                    code: code.into(),
                    rules: Vec::new(),
                },
            );
        }
        let dir = std::env::temp_dir().join("xtask-replay-rejects");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("rejects.bin");
        fs::write(&path, sink.to_bytes()).expect("write trace");
        let summary = replay_file(&path).expect("trace verifies");
        assert!(summary.contains("3 rejected"), "{summary}");
        assert!(
            summary.contains("rejections by reason: CRASH_POLICY×1, INVALID_STREAM×2"),
            "{summary}"
        );
    }

    #[test]
    fn replay_summary_cross_checks_predicted_against_recorded_cycles() {
        use netpu_trace::{MemorySink, TraceEvent, TraceSink};

        let annotated = |pairs: &[(u64, u64)]| {
            let sink = MemorySink::new();
            for (p, r) in pairs {
                sink.record(
                    0.0,
                    TraceEvent::Meta {
                        key: "timing.predicted_cycles".into(),
                        value: p.to_string(),
                    },
                );
                sink.record(
                    0.0,
                    TraceEvent::Meta {
                        key: "timing.recorded_cycles".into(),
                        value: r.to_string(),
                    },
                );
            }
            sink.to_bytes()
        };
        let dir = std::env::temp_dir().join("xtask-replay-timing");
        fs::create_dir_all(&dir).expect("temp dir");

        let exact = dir.join("exact.bin");
        fs::write(&exact, annotated(&[(3503, 3503), (2533, 2533)])).expect("write trace");
        let summary = replay_file(&exact).expect("exact trace verifies");
        assert!(
            summary.contains("timing model: 2/2 runs predicted == recorded cycles"),
            "{summary}"
        );

        // A single diverging run fails replay outright: the model is
        // certified exact, so drift means a broken recording or model.
        let drift = dir.join("drift.bin");
        fs::write(&drift, annotated(&[(3503, 3504)])).expect("write trace");
        let err = replay_file(&drift).expect_err("diverging trace must fail");
        assert!(err.contains("predicted 3503"), "{err}");

        // An unannotated trace gets no timing column and no error.
        let plain = dir.join("plain.bin");
        fs::write(&plain, MemorySink::new().to_bytes()).expect("write trace");
        let summary = replay_file(&plain).expect("plain trace verifies");
        assert!(!summary.contains("timing model"), "{summary}");
    }

    #[test]
    fn certify_sweep_passes_on_random_models_and_reports_widths() {
        let summary = certify_sweep(false, 6).expect("random models certify");
        assert!(summary.contains("6 random streams"), "{summary}");
        assert!(summary.contains("min accumulator widths"), "{summary}");
    }

    #[test]
    fn certify_timing_sweep_is_cycle_exact_on_random_models() {
        let summary = certify_timing_sweep(false, 4).expect("timing certifies");
        assert!(summary.contains("cycle-exact"), "{summary}");
        assert!(summary.contains("zero tolerance"), "{summary}");
    }

    #[test]
    fn burst_timing_is_cycle_exact() {
        certify_burst_timing().expect("burst extrapolation exact");
    }

    #[test]
    fn dse_reproduces_or_dominates_the_paper_instance_on_tfc() {
        let outcome = dse_model(netpu_nn::zoo::ZooModel::TfcW1A1).expect("search runs");
        assert!(!outcome.frontier.is_empty());
        assert!(
            outcome.frontier.iter().any(|p| p.dominates(&outcome.seed)),
            "no frontier point reproduces or dominates the hand-picked seed instance"
        );
        // The frontier is a frontier: no point dominates another.
        for (i, p) in outcome.frontier.iter().enumerate() {
            for (j, q) in outcome.frontier.iter().enumerate() {
                assert!(i == j || !p.dominates(q) || !q.dominates(p));
            }
        }
        assert!(outcome.min_acc < 32, "absint found no width slack on TFC");
    }

    #[test]
    fn dse_frontier_prices_are_simulation_exact() {
        // The search never simulates; spot-check its prices against the
        // tick simulator on the cheapest and fastest frontier points.
        let variant = netpu_nn::zoo::ZooModel::TfcW1A1;
        let outcome = dse_model(variant).expect("search runs");
        let model = variant
            .build_untrained(42, netpu_nn::export::BnMode::Folded)
            .expect("zoo model builds");
        let pixels = vec![0u8; model.input.len];
        for p in [
            outcome.frontier.first().expect("frontier non-empty"),
            outcome.frontier.last().expect("frontier non-empty"),
        ] {
            let loadable = netpu_compiler::compile_packed(&model, &pixels, p.packing)
                .expect("frontier packing compiles");
            let run = netpu_core::run_inference_fast(&p.cfg, loadable.words)
                .expect("frontier instance admits the stream");
            assert_eq!(run.cycles, p.cycles, "stale price for {}", p.tag());
        }
    }

    #[test]
    fn dse_committed_artifacts_are_current() {
        // The committed TFC frontier must regenerate byte-identically
        // (the CI `dse --smoke` stage re-checks this from the binary).
        let root = workspace_root();
        let outcome = dse_model(netpu_nn::zoo::ZooModel::TfcW1A1).expect("search runs");
        let committed = fs::read_to_string(root.join(DSE_ARTIFACT_DIR).join("tfc-w1a1.tsv"))
            .expect("committed TFC frontier artifact exists");
        assert_eq!(
            committed,
            dse_artifact(netpu_nn::zoo::ZooModel::TfcW1A1, &outcome),
            "artifacts/dse/tfc-w1a1.tsv is stale; regenerate with `xtask dse --write`"
        );
    }
}
