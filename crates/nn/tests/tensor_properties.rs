//! Property tests for the dense-matrix substrate the trainer rests on.

use netpu_nn::tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((r * 31 + c * 7) as u64);
        ((h % 2000) as f32 - 1000.0) / 500.0
    })
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (AB)C = A(BC) within float tolerance.
    #[test]
    fn matmul_is_associative(m in 1usize..8, k in 1usize..8, n in 1usize..8, p in 1usize..8, seed in 0u64..100) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed + 1);
        let c = matrix(n, p, seed + 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// The fused transposed products agree with explicit transposition.
    #[test]
    fn fused_transpose_products_agree(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..100) {
        let a = matrix(k, m, seed);
        let b = matrix(k, n, seed + 3);
        prop_assert!(approx_eq(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-5));
        let c = matrix(m, k, seed + 4);
        let d = matrix(n, k, seed + 5);
        prop_assert!(approx_eq(&c.matmul_t(&d), &c.matmul(&d.transpose()), 1e-5));
    }

    /// Transposition is an involution and swaps dimensions.
    #[test]
    fn transpose_involution(m in 1usize..12, n in 1usize..12, seed in 0u64..100) {
        let a = matrix(m, n, seed);
        let t = a.transpose();
        prop_assert_eq!(t.rows(), n);
        prop_assert_eq!(t.cols(), m);
        prop_assert_eq!(t.transpose(), a);
    }

    /// Distributivity: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes_over_addition(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..100) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed + 6);
        let c = matrix(k, n, seed + 7);
        let mut sum = b.clone();
        sum.axpy_inplace(1.0, &c);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.axpy_inplace(1.0, &a.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// Column sums equal multiplication by a ones row-vector.
    #[test]
    fn col_sums_equal_ones_product(m in 1usize..10, n in 1usize..10, seed in 0u64..100) {
        let a = matrix(m, n, seed);
        let ones = Matrix::from_fn(1, m, |_, _| 1.0);
        let product = ones.matmul(&a);
        for (s, p) in a.col_sums().iter().zip(product.row(0)) {
            prop_assert!((s - p).abs() < 1e-4);
        }
    }
}
