//! Lowering a trained [`FloatMlp`] to a hardware-ready [`QuantMlp`].
//!
//! This is the FINN-style "streamlining" step. Because every stage after
//! the accumulator — BN (monotone, `γ > 0`), activation (monotone), and
//! quantization (monotone) — is monotone in the integer accumulator
//! value, the whole post-MAC pipeline collapses into integer thresholds:
//!
//! * Sign: one threshold per neuron (Eq. 3),
//! * Multi-Threshold: `2^n − 1` thresholds per neuron (HWGQ, §II.C),
//!
//! computed by inverting the affine chain analytically. With BN folding
//! *disabled* the BN stays in hardware (Q16.16 scale per neuron) and the
//! thresholds live in the post-BN domain instead — that is the Table V
//! "BN Folding: No" configuration.

use crate::float::{ActSpec, FloatLayer, FloatMlp};
use crate::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_arith::{Fix, Precision, QuantParams};

/// Whether to fold BN into thresholds (Eq. 2/3) or run it in hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BnMode {
    /// Fold BN (and the accumulator scale) into the thresholds; the BN
    /// submodule is bypassed.
    Folded,
    /// Keep BN in hardware: per-neuron Q16.16 scale + Q32.5 offset.
    Hardware,
}

/// Export configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExportConfig {
    /// BN handling for every layer.
    pub bn_mode: BnMode,
}

impl Default for ExportConfig {
    fn default() -> ExportConfig {
        ExportConfig {
            bn_mode: BnMode::Folded,
        }
    }
}

/// Errors during export.
#[derive(Clone, PartialEq, Debug)]
pub enum ExportError {
    /// The final layer must be the output layer (`ActSpec::None`).
    MissingOutputLayer,
    /// `ActSpec::None` appeared before the final layer.
    EarlyOutputLayer {
        /// Offending layer index.
        layer: usize,
    },
    /// The resulting model failed validation.
    Invalid(crate::qmodel::ModelError),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::MissingOutputLayer => f.write_str("last layer must use ActSpec::None"),
            ExportError::EarlyOutputLayer { layer } => {
                write!(f, "layer {layer}: ActSpec::None before the final layer")
            }
            ExportError::Invalid(e) => write!(f, "exported model invalid: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// The float-domain scale of the values a layer feeds into the next MAC:
/// `float_value = scale · integer_level_in_mac_domain`.
fn activation_scale(act: ActSpec, is_input_layer: bool) -> f32 {
    match act {
        ActSpec::Sign => 1.0, // bipolar ±1 in both domains
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } => {
            if is_input_layer {
                // quantize_input spreads levels over [0,1]: α = 1/m.
                1.0 / ((1u32 << bits) - 1) as f32
            } else {
                act.alpha()
            }
        }
        // Sigmoid levels cover [0,1] on both the input and hidden paths.
        ActSpec::SigmoidQuant { .. } => act.alpha(),
        ActSpec::None => 1.0,
    }
}

/// Affine description of one neuron's post-accumulator chain:
/// `ẑ = g·acc + h` in the float domain.
struct PostChain {
    g: f64,
    h: f64,
}

fn post_chain(layer: &FloatLayer, neuron: usize, s: f64) -> PostChain {
    match &layer.bn {
        Some(bn) => {
            let inv = ((bn.running_var[neuron] + bn.eps) as f64).sqrt().recip();
            let gamma = bn.gamma[neuron] as f64;
            let beta = bn.beta[neuron] as f64;
            let mu = bn.running_mean[neuron] as f64;
            // ẑ = γ(s·acc + b − μ)/√v + β with b = 0 under BN.
            PostChain {
                g: gamma * s * inv,
                h: gamma * (0.0 - mu) * inv + beta,
            }
        }
        None => PostChain {
            g: s,
            h: layer.b[neuron] as f64,
        },
    }
}

/// The activation-quantizer level boundaries in the (post-BN) float
/// domain: level ≥ k exactly when `ẑ ≥ boundary(k)`.
fn level_boundaries(act: ActSpec) -> Vec<f64> {
    match act {
        ActSpec::Sign => vec![0.0],
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } => {
            let alpha = act.alpha() as f64;
            (1..(1u32 << bits))
                .map(|k| (k as f64 - 0.5) * alpha)
                .collect()
        }
        // SigmoidQuant never folds (it exports onto the Sigmoid+QUAN
        // hardware path); no threshold boundaries exist for it.
        ActSpec::SigmoidQuant { .. } => vec![],
        ActSpec::None => vec![],
    }
}

/// Folds one boundary from the float domain onto the integer accumulator
/// domain: smallest integer `acc` with `g·acc + h ≥ boundary` (requires
/// `g > 0`, guaranteed by the trainer's γ floor and positive scales).
fn fold_boundary(chain: &PostChain, boundary: f64) -> Fix {
    debug_assert!(chain.g > 0.0, "threshold fold requires positive gain");
    let t_real = (boundary - chain.h) / chain.g;
    let t_int = t_real.ceil();
    // Clamp into the 32-bit parameter word range.
    Fix::from_i32(t_int.clamp(i32::MIN as f64 / 64.0, i32::MAX as f64 / 64.0) as i32)
}

/// Per-neuron thresholds for a layer under the chosen BN mode.
fn layer_thresholds(layer: &FloatLayer, s: f64, mode: BnMode) -> Vec<Vec<Fix>> {
    let boundaries = level_boundaries(layer.spec.act);
    (0..layer.spec.neurons)
        .map(|n| match mode {
            BnMode::Folded => {
                let chain = post_chain(layer, n, s);
                boundaries
                    .iter()
                    .map(|&b| fold_boundary(&chain, b))
                    .collect()
            }
            // Hardware BN produces ẑ directly; thresholds stay in the
            // float (post-BN) domain, rounded to parameter words.
            BnMode::Hardware => boundaries.iter().map(|&b| Fix::from_f64(b)).collect(),
        })
        .collect()
}

/// Hardware BN parameters for a layer (the `BnMode::Hardware` path):
/// `ẑ ≈ scale·acc + offset` with the accumulator scale `s` folded into
/// the Q16.16 scale word.
fn layer_bn_params(layer: &FloatLayer, s: f64) -> Vec<BnParams> {
    (0..layer.spec.neurons)
        .map(|n| {
            let chain = post_chain(layer, n, s);
            BnParams {
                scale_q16: Fix::q16_scale_from_f64(chain.g),
                offset: Fix::from_f64(chain.h),
            }
        })
        .collect()
}

/// Builds the exported input layer.
fn export_input_layer(spec_input_len: usize, act: ActSpec) -> InputLayer {
    let out = Precision::new(act.bits().max(1)).expect("input activation bits");
    let activation = match act {
        ActSpec::Sign => LayerActivation::Sign {
            thresholds: vec![Fix::from_i32(128); spec_input_len],
        },
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } | ActSpec::SigmoidQuant { bits }
            if bits <= 4 =>
        {
            // Pixel-domain boundaries: level ≥ k ⟺ p ≥ 255(k−0.5)/m.
            let m = ((1u32 << bits) - 1) as f64;
            let row: Vec<Fix> = (1..(1u32 << bits))
                .map(|k| Fix::from_i32((255.0 * (k as f64 - 0.5) / m).ceil() as i32))
                .collect();
            LayerActivation::MultiThreshold {
                thresholds: vec![row; spec_input_len],
            }
        }
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } | ActSpec::SigmoidQuant { bits } => {
            // >4-bit input precision: the ReLU+QUAN path. The Q32.5 scale
            // word limits scale resolution to 1/32; exact for the 8-bit
            // identity case (scale 1), approximate otherwise.
            let m = ((1u32 << bits) - 1) as f64;
            LayerActivation::Relu {
                quant: QuantParams::from_f64(m / 255.0, 0.5),
            }
        }
        ActSpec::None => LayerActivation::Relu {
            quant: QuantParams::from_f64(1.0, 0.0),
        },
    };
    InputLayer {
        len: spec_input_len,
        out_precision: if act == ActSpec::None {
            Precision::W8
        } else {
            out
        },
        activation,
    }
}

/// Lowers a trained float model into the hardware model.
pub fn export(mlp: &FloatMlp, cfg: &ExportConfig) -> Result<QuantMlp, ExportError> {
    let n_layers = mlp.layers.len();
    if n_layers == 0 || mlp.layers[n_layers - 1].spec.act != ActSpec::None {
        return Err(ExportError::MissingOutputLayer);
    }
    for (i, l) in mlp.layers[..n_layers - 1].iter().enumerate() {
        if l.spec.act == ActSpec::None {
            return Err(ExportError::EarlyOutputLayer { layer: i + 1 });
        }
    }

    let input = export_input_layer(mlp.spec.input_len, mlp.spec.input_act);
    let mut prev_act = mlp.spec.input_act;
    let mut prev_is_input = true;
    let mut prev_width = mlp.spec.input_len;
    let mut hidden = Vec::with_capacity(n_layers - 1);

    for (li, layer) in mlp.layers.iter().enumerate() {
        let is_output = li == n_layers - 1;
        let wbits = layer.spec.weight_bits;
        let (_, alpha_w) = crate::float::quantize_weights(&layer.w, wbits);
        let weights = crate::float::integer_weights(&layer.w, wbits, alpha_w);
        let s = alpha_w as f64 * activation_scale(prev_act, prev_is_input) as f64;
        let wp = Precision::new(wbits).expect("weight bits");
        let ip = Precision::new(prev_act.bits().max(1)).expect("input bits");

        if is_output {
            // The output layer always carries hardware BN: MaxOut needs
            // per-class affine scores, and per-class biases do not fit
            // the 8-bit accumulator bias port in general.
            let bn = layer_bn_params(layer, s);
            let output = OutputLayer {
                in_len: prev_width,
                neurons: layer.spec.neurons,
                weight_precision: wp,
                in_precision: ip,
                weights,
                bias: None,
                bn: Some(bn),
            };
            let q = QuantMlp {
                name: mlp.spec.name.clone(),
                input,
                hidden,
                output,
            };
            q.validate().map_err(ExportError::Invalid)?;
            return Ok(q);
        }

        let out = Precision::new(layer.spec.act.bits()).expect("activation bits");
        let (bias, bn, activation) = match layer.spec.act {
            ActSpec::Sign => {
                let thr = layer_thresholds(layer, s, cfg.bn_mode);
                let thresholds = thr.into_iter().map(|mut r| r.pop().expect("one")).collect();
                match cfg.bn_mode {
                    BnMode::Folded => (
                        Some(vec![0; layer.spec.neurons]),
                        None,
                        LayerActivation::Sign { thresholds },
                    ),
                    BnMode::Hardware => (
                        None,
                        Some(layer_bn_params(layer, s)),
                        LayerActivation::Sign { thresholds },
                    ),
                }
            }
            ActSpec::Hwgq { .. } => {
                let thresholds = layer_thresholds(layer, s, cfg.bn_mode);
                match cfg.bn_mode {
                    BnMode::Folded => (
                        Some(vec![0; layer.spec.neurons]),
                        None,
                        LayerActivation::MultiThreshold { thresholds },
                    ),
                    BnMode::Hardware => (
                        None,
                        Some(layer_bn_params(layer, s)),
                        LayerActivation::MultiThreshold { thresholds },
                    ),
                }
            }
            ActSpec::ReluQuant { .. } => {
                // The ReLU + QUAN hardware path; BN must stay in hardware
                // (its scale cannot fold into a threshold-free path).
                let alpha = layer.spec.act.alpha() as f64;
                let quant = QuantParams::from_f64(1.0 / alpha, 0.5);
                (
                    None,
                    Some(layer_bn_params(layer, s)),
                    LayerActivation::Relu { quant },
                )
            }
            ActSpec::SigmoidQuant { .. } => {
                // The Sigmoid + QUAN hardware path: σ output in [0,1]
                // rescaled to levels by QUAN (q = floor(σ·m + 0.5)).
                let m = layer.spec.act.max_level() as f64;
                let quant = QuantParams::from_f64(m, 0.5);
                (
                    None,
                    Some(layer_bn_params(layer, s)),
                    LayerActivation::Sigmoid { quant },
                )
            }
            ActSpec::None => unreachable!("checked above"),
        };
        hidden.push(HiddenLayer {
            in_len: prev_width,
            neurons: layer.spec.neurons,
            weight_precision: wp,
            in_precision: ip,
            out_precision: out,
            weights,
            bias,
            bn,
            activation,
        });
        prev_act = layer.spec.act;
        prev_is_input = false;
        prev_width = layer.spec.neurons;
    }
    unreachable!("loop returns at the output layer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::float::{LayerSpec, MlpSpec};
    use crate::reference;
    use crate::tensor::Matrix;
    use crate::train::{train, TrainConfig};

    fn spec(input_act: ActSpec, hidden_act: ActSpec, wbits: u8) -> MlpSpec {
        MlpSpec {
            name: "exp".into(),
            input_len: dataset::IMAGE_PIXELS,
            input_act,
            layers: vec![
                LayerSpec {
                    neurons: 24,
                    weight_bits: wbits,
                    act: hidden_act,
                    batch_norm: true,
                },
                LayerSpec {
                    neurons: 10,
                    weight_bits: wbits,
                    act: ActSpec::None,
                    batch_norm: true,
                },
            ],
        }
    }

    fn trained(input_act: ActSpec, hidden_act: ActSpec, wbits: u8) -> FloatMlp {
        let (ds, _) = dataset::standard_splits(400, 0, 31);
        let mut m = FloatMlp::init(spec(input_act, hidden_act, wbits), 3);
        train(
            &mut m,
            &ds,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        m
    }

    fn trained_long(input_act: ActSpec, hidden_act: ActSpec, wbits: u8) -> FloatMlp {
        let (ds, _) = dataset::easy_splits(800, 0, 31);
        let mut m = FloatMlp::init(spec(input_act, hidden_act, wbits), 3);
        train(
            &mut m,
            &ds,
            &TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
        );
        m
    }

    /// Agreement between float inference-mode predictions and the
    /// bit-exact integer reference on a fresh split.
    fn agreement(fm: &FloatMlp, qm: &crate::qmodel::QuantMlp, n: usize) -> f64 {
        let ds = dataset::generate(n, 777, &dataset::GeneratorConfig::default());
        let mut agree = 0usize;
        for e in &ds.examples {
            let fx = crate::float::quantize_input(&e.pixels, fm.spec.input_act);
            let x = Matrix::from_vec(1, fx.len(), fx);
            let float_pred = fm.predict(&x)[0];
            let int_pred = reference::infer(qm, &e.pixels);
            agree += usize::from(float_pred == int_pred);
        }
        agree as f64 / n as f64
    }

    #[test]
    fn folded_binary_export_matches_float_model() {
        let fm = trained(ActSpec::Sign, ActSpec::Sign, 1);
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        qm.validate().unwrap();
        assert!(qm.is_fully_binary());
        let a = agreement(&fm, &qm, 100);
        assert!(a >= 0.97, "binary folded agreement {a}");
    }

    #[test]
    fn folded_two_bit_export_matches_float_model() {
        let fm = trained(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2);
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        qm.validate().unwrap();
        let a = agreement(&fm, &qm, 100);
        assert!(a >= 0.97, "2-bit folded agreement {a}");
    }

    #[test]
    fn hardware_bn_export_matches_float_model() {
        let fm = trained(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2);
        let qm = export(
            &fm,
            &ExportConfig {
                bn_mode: BnMode::Hardware,
            },
        )
        .unwrap();
        qm.validate().unwrap();
        assert!(qm.hidden[0].bn.is_some());
        assert!(qm.hidden[0].bias.is_none());
        let a = agreement(&fm, &qm, 100);
        // Q16.16 BN rounding admits a little more disagreement.
        assert!(a >= 0.9, "hardware-BN agreement {a}");
    }

    #[test]
    fn mixed_precision_w1a2_exports_on_integer_path() {
        // LFC-w1a2 shape: binary weights, 2-bit activations.
        let fm = trained(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 1);
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        qm.validate().unwrap();
        assert!(qm.hidden[0].weight_precision.is_binary());
        assert!(!qm.hidden[0].in_precision.is_binary());
        assert!(!qm.is_fully_binary());
        let a = agreement(&fm, &qm, 100);
        assert!(a >= 0.97, "w1a2 agreement {a}");
    }

    #[test]
    fn relu_quant_layer_exports_onto_quan_path() {
        let fm = trained(ActSpec::Hwgq { bits: 4 }, ActSpec::ReluQuant { bits: 4 }, 4);
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        qm.validate().unwrap();
        assert!(matches!(
            qm.hidden[0].activation,
            LayerActivation::Relu { .. }
        ));
        assert!(qm.hidden[0].bn.is_some(), "ReLU path keeps hardware BN");
        let a = agreement(&fm, &qm, 100);
        assert!(a >= 0.85, "relu-quant agreement {a}");
    }

    #[test]
    fn sigmoid_quant_layer_exports_onto_sigmoid_path() {
        let fm = trained(
            ActSpec::SigmoidQuant { bits: 4 },
            ActSpec::SigmoidQuant { bits: 4 },
            4,
        );
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        qm.validate().unwrap();
        assert!(matches!(
            qm.hidden[0].activation,
            LayerActivation::Sigmoid { .. }
        ));
        assert!(qm.hidden[0].bn.is_some(), "Sigmoid path keeps hardware BN");
        // The hardware's Fix-grid PWL sigmoid rounds slightly differently
        // from the float PWL: allow more disagreement than the threshold
        // paths.
        let a = agreement(&fm, &qm, 100);
        assert!(a >= 0.75, "sigmoid-quant agreement {a}");
    }

    #[test]
    fn export_rejects_missing_output_layer() {
        let mut s = spec(ActSpec::Sign, ActSpec::Sign, 1);
        s.layers[1].act = ActSpec::Sign; // no None layer
        let fm = FloatMlp::init(s, 0);
        assert_eq!(
            export(&fm, &ExportConfig::default()).unwrap_err(),
            ExportError::MissingOutputLayer
        );
    }

    #[test]
    fn export_rejects_early_output_layer() {
        let mut s = spec(ActSpec::Sign, ActSpec::Sign, 1);
        s.layers[0].act = ActSpec::None;
        let fm = FloatMlp::init(s, 0);
        assert_eq!(
            export(&fm, &ExportConfig::default()).unwrap_err(),
            ExportError::EarlyOutputLayer { layer: 1 }
        );
    }

    #[test]
    fn exported_accuracy_survives_quantization() {
        let (_, test_ds) = dataset::easy_splits(0, 200, 31);
        let fm = trained_long(ActSpec::Sign, ActSpec::Sign, 1);
        let qm = export(&fm, &ExportConfig::default()).unwrap();
        let correct = test_ds
            .examples
            .iter()
            .filter(|e| reference::infer(&qm, &e.pixels) == e.label as usize)
            .count();
        let acc = correct as f64 / test_ds.len() as f64;
        assert!(acc > 0.5, "exported BNN accuracy {acc}");
    }
}
