#![deny(missing_docs)]
//! Quantization-aware MLP toolkit: the Brevitas/FINN-training substitute.
//!
//! The NetPU-M paper consumes *pre-trained 1/2-bit quantized MLPs from
//! FINN and Brevitas*; this crate reproduces that upstream toolchain:
//!
//! * [`tensor`] — a small parallel dense-matrix type.
//! * [`dataset`] — the synthetic MNIST-shaped digit dataset.
//! * [`float`] + [`train`] — float-domain quantization-aware training
//!   (STE fake quantization, BatchNorm).
//! * [`mod@export`] — FINN-style streamlining: folding BN and quantizers into
//!   integer thresholds (Eq. 2/3) or hardware BN parameters.
//! * [`qmodel`] — the hardware-ready [`qmodel::QuantMlp`] consumed by the
//!   compiler and the accelerator model.
//! * [`mod@reference`] — bit-exact integer/fixed-point reference inference.
//! * [`zoo`] — the six TFC/SFC/LFC evaluation models.
//! * [`metrics`] — accuracy and confusion matrices.
//! * [`conv`] — CNN support by lowering conv/avg-pool stages onto the
//!   FC substrate (§V future work).
//! * [`sensor`] — a synthetic smart-sensor waveform dataset (the §I
//!   IoT deployment scenario).

pub mod conv;
pub mod dataset;
pub mod export;
pub mod float;
pub mod io;
mod json;
pub mod metrics;
pub mod qmodel;
pub mod reference;
pub mod sensor;
pub mod tensor;
pub mod train;
pub mod zoo;

pub use export::{export, BnMode, ExportConfig};
pub use float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
pub use qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
pub use zoo::ZooModel;
