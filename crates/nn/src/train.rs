//! SGD training with quantization-aware forward passes.
//!
//! Standard momentum SGD over softmax cross-entropy. The forward pass
//! fake-quantizes weights and activations (see [`crate::float`]);
//! gradients flow through straight-through estimators. BatchNorm trains
//! `γ`/`β` with batch statistics treated as constants in the backward
//! pass (the usual lightweight approximation), and `γ` is clamped
//! positive so threshold folding preserves comparison direction at
//! export (Eq. 3's division by `γ`).

use crate::dataset::Dataset;
use crate::float::{quantize_activations, quantize_input, quantize_weights, FloatMlp};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Early stopping: stop when the epoch loss has not improved by at
    /// least 0.1% for this many consecutive epochs (`None` disables).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 15,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            lr_decay: 0.9,
            seed: 0xD1617,
            patience: None,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f64,
    /// `true` when the patience criterion ended training early.
    pub stopped_early: bool,
}

/// Lower bound on BN γ: keeps the export-time threshold fold well posed.
const GAMMA_FLOOR: f32 = 0.01;

struct LayerCache {
    a_prev: Matrix,
    wq: Matrix,
    znorm: Option<Matrix>,
    inv_std: Vec<f32>,
    mask: Matrix,
}

struct Velocity {
    w: Matrix,
    b: Vec<f32>,
    gamma: Vec<f32>,
    beta: Vec<f32>,
}

/// Builds the input batch matrix for the listed example indices.
fn batch_inputs(mlp: &FloatMlp, data: &Dataset, idx: &[usize]) -> Matrix {
    let cols = mlp.spec.input_len;
    let mut x = Matrix::zeros(idx.len(), cols);
    for (r, &i) in idx.iter().enumerate() {
        let q = quantize_input(&data.examples[i].pixels, mlp.spec.input_act);
        x.row_mut(r).copy_from_slice(&q);
    }
    x
}

/// Training-mode forward pass: returns logits and per-layer caches.
fn forward_train(mlp: &mut FloatMlp, x: &Matrix) -> (Matrix, Vec<LayerCache>) {
    let mut caches = Vec::with_capacity(mlp.layers.len());
    let mut a = x.clone();
    for layer in &mut mlp.layers {
        let (wq, _) = quantize_weights(&layer.w, layer.spec.weight_bits);
        let mut z = a.matmul_t(&wq);
        let n = z.rows() as f32;
        let mut znorm = None;
        let mut inv_std = Vec::new();
        if let Some(bn) = &mut layer.bn {
            let neurons = z.cols();
            let mut mean = vec![0.0f32; neurons];
            let mut var = vec![0.0f32; neurons];
            for r in 0..z.rows() {
                for (j, &v) in z.row(r).iter().enumerate() {
                    mean[j] += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= n;
            }
            for r in 0..z.rows() {
                for (j, &v) in z.row(r).iter().enumerate() {
                    var[j] += (v - mean[j]) * (v - mean[j]);
                }
            }
            for v in var.iter_mut() {
                *v /= n;
            }
            inv_std = var.iter().map(|&v| (v + bn.eps).sqrt().recip()).collect();
            let mut zn = Matrix::zeros(z.rows(), neurons);
            for r in 0..z.rows() {
                for j in 0..neurons {
                    let norm = (z.get(r, j) - mean[j]) * inv_std[j];
                    zn.set(r, j, norm);
                    z.set(r, j, bn.gamma[j] * norm + bn.beta[j]);
                }
            }
            for j in 0..neurons {
                bn.running_mean[j] =
                    (1.0 - bn.momentum) * bn.running_mean[j] + bn.momentum * mean[j];
                bn.running_var[j] = (1.0 - bn.momentum) * bn.running_var[j] + bn.momentum * var[j];
            }
            znorm = Some(zn);
        } else {
            for r in 0..z.rows() {
                for (j, v) in z.row_mut(r).iter_mut().enumerate() {
                    *v += layer.b[j];
                }
            }
        }
        let mask = quantize_activations(&mut z, layer.spec.act);
        caches.push(LayerCache {
            a_prev: a,
            wq,
            znorm,
            inv_std,
            mask,
        });
        a = z;
    }
    (a, caches)
}

/// Softmax cross-entropy: returns (mean loss, dLogits).
fn softmax_ce(logits: &Matrix, labels: &[u8]) -> (f32, Matrix) {
    let n = logits.rows();
    let mut grad = Matrix::zeros(n, logits.cols());
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - maxv).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let label = label as usize;
        loss += -(exps[label] / sum).max(1e-12).ln();
        for (j, &e) in exps.iter().enumerate() {
            let p = e / sum;
            grad.set(r, j, (p - f32::from(j == label)) / n as f32);
        }
    }
    (loss / n as f32, grad)
}

/// Runs momentum SGD over the dataset, mutating `mlp` in place.
pub fn train(mlp: &mut FloatMlp, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut velocities: Vec<Velocity> = mlp
        .layers
        .iter()
        .map(|l| Velocity {
            w: Matrix::zeros(l.w.rows(), l.w.cols()),
            b: vec![0.0; l.b.len()],
            gamma: vec![0.0; l.bn.as_ref().map_or(0, |bn| bn.gamma.len())],
            beta: vec![0.0; l.bn.as_ref().map_or(0, |bn| bn.beta.len())],
        })
        .collect();

    let mut report = TrainReport::default();
    let mut lr = cfg.lr;
    let mut indices: Vec<usize> = (0..data.len()).collect();

    for _epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(cfg.batch_size) {
            let x = batch_inputs(mlp, data, chunk);
            let labels: Vec<u8> = chunk.iter().map(|&i| data.examples[i].label).collect();
            let (logits, caches) = forward_train(mlp, &x);
            let (loss, dlogits) = softmax_ce(&logits, &labels);
            epoch_loss += loss;
            batches += 1;

            // Backward pass.
            let mut d_a = dlogits;
            for (li, cache) in caches.iter().enumerate().rev() {
                let layer = &mut mlp.layers[li];
                let vel = &mut velocities[li];
                // STE through the activation quantizer.
                let mut dz = d_a;
                dz.hadamard_inplace(&cache.mask);
                // BN backward (batch stats as constants).
                if let Some(bn) = &mut layer.bn {
                    let znorm = cache.znorm.as_ref().expect("BN cache");
                    let mut dgamma = vec![0.0f32; bn.gamma.len()];
                    let mut dbeta = vec![0.0f32; bn.beta.len()];
                    for r in 0..dz.rows() {
                        for (j, &g) in dz.row(r).iter().enumerate() {
                            dgamma[j] += g * znorm.get(r, j);
                            dbeta[j] += g;
                        }
                    }
                    for r in 0..dz.rows() {
                        for (j, v) in dz.row_mut(r).iter_mut().enumerate() {
                            *v *= bn.gamma[j] * cache.inv_std[j];
                        }
                    }
                    for j in 0..bn.gamma.len() {
                        vel.gamma[j] = cfg.momentum * vel.gamma[j] - lr * dgamma[j];
                        vel.beta[j] = cfg.momentum * vel.beta[j] - lr * dbeta[j];
                        bn.gamma[j] = (bn.gamma[j] + vel.gamma[j]).max(GAMMA_FLOOR);
                        bn.beta[j] += vel.beta[j];
                    }
                } else {
                    let db = dz.col_sums();
                    for (j, d) in db.iter().enumerate() {
                        vel.b[j] = cfg.momentum * vel.b[j] - lr * d;
                        layer.b[j] += vel.b[j];
                    }
                }
                // Weight gradient and input gradient (STE through the
                // weight quantizer: gradient lands on the master weights).
                let dw = dz.t_matmul(&cache.a_prev);
                d_a = dz.matmul(&cache.wq);
                vel.w.map_inplace(|v| v * cfg.momentum);
                vel.w.axpy_inplace(-lr, &dw);
                layer.w.axpy_inplace(1.0, &vel.w);
                // Keep master weights bounded so binarization scales stay
                // meaningful (standard BNN practice).
                layer.w.map_inplace(|v| v.clamp(-1.5, 1.5));
            }
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
        lr *= cfg.lr_decay;

        // Early stopping on stalled training loss.
        if let Some(patience) = cfg.patience {
            let losses = &report.epoch_losses;
            if losses.len() > patience {
                let best_before = losses[..losses.len() - patience]
                    .iter()
                    .fold(f32::INFINITY, |m, &v| m.min(v));
                let best_recent = losses[losses.len() - patience..]
                    .iter()
                    .fold(f32::INFINITY, |m, &v| m.min(v));
                if best_recent > best_before * 0.999 {
                    report.stopped_early = true;
                    break;
                }
            }
        }
    }

    report.final_train_accuracy = accuracy(mlp, data);
    report
}

/// Inference-mode accuracy of the float model over a dataset.
pub fn accuracy(mlp: &FloatMlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for chunk in data.examples.chunks(256) {
        let mut x = Matrix::zeros(chunk.len(), mlp.spec.input_len);
        for (r, e) in chunk.iter().enumerate() {
            let q = quantize_input(&e.pixels, mlp.spec.input_act);
            x.row_mut(r).copy_from_slice(&q);
        }
        let preds = mlp.predict(&x);
        correct += preds
            .iter()
            .zip(chunk)
            .filter(|(&p, e)| p == e.label as usize)
            .count();
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::float::{ActSpec, LayerSpec, MlpSpec};

    fn small_spec(input_act: ActSpec, hidden_act: ActSpec, wbits: u8) -> MlpSpec {
        MlpSpec {
            name: "test".into(),
            input_len: dataset::IMAGE_PIXELS,
            input_act,
            layers: vec![
                LayerSpec {
                    neurons: 32,
                    weight_bits: wbits,
                    act: hidden_act,
                    batch_norm: true,
                },
                LayerSpec {
                    neurons: 10,
                    weight_bits: wbits,
                    act: ActSpec::None,
                    batch_norm: true,
                },
            ],
        }
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.0]);
        let (loss, grad) = softmax_ce(&logits, &[1, 2]);
        assert!(loss > 0.0);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn loss_decreases_on_quantized_training() {
        let (train_ds, _) = dataset::standard_splits(300, 0, 42);
        let mut mlp = FloatMlp::init(
            small_spec(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2),
            7,
        );
        let report = train(
            &mut mlp,
            &train_ds,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
    }

    #[test]
    fn binarized_model_learns_the_synthetic_digits() {
        let (train_ds, test_ds) = dataset::easy_splits(800, 200, 9);
        let mut mlp = FloatMlp::init(small_spec(ActSpec::Sign, ActSpec::Sign, 1), 5);
        train(
            &mut mlp,
            &train_ds,
            &TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
        );
        let acc = accuracy(&mlp, &test_ds);
        assert!(acc > 0.7, "binary model accuracy too low: {acc}");
    }

    #[test]
    fn two_bit_model_learns_better_than_chance() {
        let (train_ds, test_ds) = dataset::easy_splits(800, 200, 21);
        let mut mlp = FloatMlp::init(
            small_spec(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2),
            11,
        );
        train(
            &mut mlp,
            &train_ds,
            &TrainConfig {
                epochs: 8,
                lr: 0.05,
                ..TrainConfig::default()
            },
        );
        let acc = accuracy(&mlp, &test_ds);
        assert!(acc > 0.7, "2-bit model accuracy too low: {acc}");
    }

    #[test]
    fn early_stopping_triggers_on_stalled_loss() {
        // An easily-learned task: loss bottoms out quickly; with
        // patience the run must stop well before the epoch budget.
        let (train_ds, _) = dataset::easy_splits(400, 0, 2);
        let mut mlp = FloatMlp::init(
            small_spec(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2),
            3,
        );
        let report = train(
            &mut mlp,
            &train_ds,
            &TrainConfig {
                epochs: 60,
                patience: Some(3),
                ..TrainConfig::default()
            },
        );
        assert!(report.stopped_early, "expected early stop");
        assert!(
            report.epoch_losses.len() < 60,
            "ran all {} epochs",
            report.epoch_losses.len()
        );
        // And without patience, all epochs run.
        let mut mlp2 = FloatMlp::init(
            small_spec(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2),
            3,
        );
        let full = train(
            &mut mlp2,
            &train_ds,
            &TrainConfig {
                epochs: 5,
                patience: None,
                ..TrainConfig::default()
            },
        );
        assert!(!full.stopped_early);
        assert_eq!(full.epoch_losses.len(), 5);
    }

    #[test]
    fn training_is_deterministic() {
        let (train_ds, _) = dataset::standard_splits(100, 0, 3);
        let spec = small_spec(ActSpec::Hwgq { bits: 2 }, ActSpec::Hwgq { bits: 2 }, 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut a = FloatMlp::init(spec.clone(), 1);
        let mut b = FloatMlp::init(spec, 1);
        let ra = train(&mut a, &train_ds, &cfg);
        let rb = train(&mut b, &train_ds, &cfg);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a.layers[0].w, b.layers[0].w);
    }
}
