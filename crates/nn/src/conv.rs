//! CNN support by lowering onto the MLP substrate (§V future work:
//! "extend the network support range of NetPU-M architecture to meet
//! the acceleration of CNN").
//!
//! NetPU-M executes fully connected layers. For a *fixed* input shape,
//! a convolution (and average pooling — any linear, shift-invariant
//! stage) is itself a linear map, so it lowers exactly onto an FC
//! weight matrix: row `o` of the matrix holds the kernel taps of output
//! element `o` scattered to their input positions (the Toeplitz/im2col
//! construction). Max pooling is *not* linear and is not supported.
//!
//! The lowered matrix trades weight-sharing for NetPU-M's generic FC
//! engine: the weight stream re-sends each kernel tap once per output
//! position — acceptable for the paper's streaming design, where
//! weights are re-streamed every inference anyway.

use crate::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A 2-D convolution over a fixed input shape (row-major CHW layout).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2d {
    /// Output height.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Flattened input length (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    /// Flattened output length.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.out_height() * self.out_width()
    }

    /// Kernel tensor length (`out_c · in_c · k · k`).
    pub fn kernel_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Lowers the convolution with the given kernels (row-major
    /// `[out_c][in_c][ky][kx]`) into the equivalent FC weight matrix of
    /// shape `output_len × input_len`.
    pub fn lower(&self, kernels: &[f32]) -> Matrix {
        assert_eq!(kernels.len(), self.kernel_len(), "kernel tensor shape");
        let (oh, ow) = (self.out_height(), self.out_width());
        let mut w = Matrix::zeros(self.output_len(), self.input_len());
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (oc * oh + oy) * ow + ox;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= self.in_height as isize
                                    || ix >= self.in_width as isize
                                {
                                    continue; // zero padding
                                }
                                let col = (ic * self.in_height + iy as usize) * self.in_width
                                    + ix as usize;
                                let tap = kernels[((oc * self.in_channels + ic) * self.kernel
                                    + ky)
                                    * self.kernel
                                    + kx];
                                w.set(row, col, tap);
                            }
                        }
                    }
                }
            }
        }
        w
    }

    /// Direct (nested-loop) convolution reference for equivalence tests.
    pub fn direct(&self, input: &[f32], kernels: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len());
        assert_eq!(kernels.len(), self.kernel_len());
        let (oh, ow) = (self.out_height(), self.out_width());
        let mut out = vec![0.0f32; self.output_len()];
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= self.in_height as isize
                                    || ix >= self.in_width as isize
                                {
                                    continue;
                                }
                                acc += input[(ic * self.in_height + iy as usize) * self.in_width
                                    + ix as usize]
                                    * kernels[((oc * self.in_channels + ic) * self.kernel + ky)
                                        * self.kernel
                                        + kx];
                            }
                        }
                    }
                    out[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }
}

/// Average pooling over a fixed input shape (linear, hence lowerable;
/// max pooling is not).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Channels (unchanged by pooling).
    pub channels: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// Square pooling window (also the stride).
    pub window: usize,
}

impl AvgPool2d {
    /// Output height (truncating partial windows, like most frameworks).
    pub fn out_height(&self) -> usize {
        self.in_height / self.window
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        self.in_width / self.window
    }

    /// Flattened input length.
    pub fn input_len(&self) -> usize {
        self.channels * self.in_height * self.in_width
    }

    /// Flattened output length.
    pub fn output_len(&self) -> usize {
        self.channels * self.out_height() * self.out_width()
    }

    /// Lowers the pooling stage into its FC weight matrix (`1/w²` taps).
    pub fn lower(&self) -> Matrix {
        let (oh, ow) = (self.out_height(), self.out_width());
        let tap = 1.0 / (self.window * self.window) as f32;
        let mut m = Matrix::zeros(self.output_len(), self.input_len());
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (c * oh + oy) * ow + ox;
                    for wy in 0..self.window {
                        for wx in 0..self.window {
                            let iy = oy * self.window + wy;
                            let ix = ox * self.window + wx;
                            let col = (c * self.in_height + iy) * self.in_width + ix;
                            m.set(row, col, tap);
                        }
                    }
                }
            }
        }
        m
    }

    /// Direct pooling reference.
    pub fn direct(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len());
        let (oh, ow) = (self.out_height(), self.out_width());
        let mut out = vec![0.0f32; self.output_len()];
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for wy in 0..self.window {
                        for wx in 0..self.window {
                            acc += input[(c * self.in_height + oy * self.window + wy)
                                * self.in_width
                                + ox * self.window
                                + wx];
                        }
                    }
                    out[(c * oh + oy) * ow + ox] = acc / (self.window * self.window) as f32;
                }
            }
        }
        out
    }
}

/// One stage of a small ConvNet destined for the MLP substrate.
#[derive(Clone, Debug)]
pub enum ConvStage {
    /// A convolution followed by the given quantized activation.
    Conv(Conv2d, ActSpec, u8),
    /// Average pooling followed by the given quantized activation
    /// (pooling lowers onto the same FC engine).
    Pool(AvgPool2d, ActSpec, u8),
    /// A dense classifier head (neurons, activation, weight bits).
    Dense(usize, ActSpec, u8),
}

/// Builds a trainable [`FloatMlp`] from ConvNet stages: conv/pool
/// stages become FC layers initialised with their lowered matrices
/// (structural zeros included; weight sharing is traded away — see the
/// module docs), dense stages are ordinary FC layers.
pub fn convnet_to_mlp(
    name: &str,
    input_len: usize,
    input_act: ActSpec,
    stages: &[ConvStage],
    seed: u64,
) -> FloatMlp {
    let mut prev = input_len;
    let mut specs = Vec::new();
    for stage in stages {
        let (neurons, act, wbits) = match stage {
            ConvStage::Conv(c, act, wbits) => {
                assert_eq!(c.input_len(), prev, "conv input shape chain");
                (c.output_len(), *act, *wbits)
            }
            ConvStage::Pool(p, act, wbits) => {
                assert_eq!(p.input_len(), prev, "pool input shape chain");
                (p.output_len(), *act, *wbits)
            }
            ConvStage::Dense(n, act, wbits) => (*n, *act, *wbits),
        };
        specs.push(LayerSpec {
            neurons,
            weight_bits: wbits,
            act,
            batch_norm: true,
        });
        prev = neurons;
    }
    let spec = MlpSpec {
        name: name.to_string(),
        input_len,
        input_act,
        layers: specs,
    };
    let mut mlp = FloatMlp::init(spec, seed);
    // Overwrite conv/pool layers with their lowered structure (random
    // kernels for conv — training refines them; exact taps for pool).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_4E7);
    for (layer, stage) in mlp.layers.iter_mut().zip(stages) {
        match stage {
            ConvStage::Conv(c, _, _) => {
                let fan_in = (c.in_channels * c.kernel * c.kernel) as f32;
                let std = (2.0 / fan_in).sqrt();
                let kernels: Vec<f32> = (0..c.kernel_len())
                    .map(|_| {
                        let u1: f32 = rng.gen_range(1e-6..1.0);
                        let u2: f32 = rng.gen_range(0.0..1.0);
                        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                    })
                    .collect();
                layer.w = c.lower(&kernels);
            }
            ConvStage::Pool(p, _, _) => {
                layer.w = p.lower();
            }
            ConvStage::Dense(..) => {}
        }
    }
    mlp
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn conv_output_shapes() {
        let c = Conv2d {
            in_channels: 1,
            in_height: 28,
            in_width: 28,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 0,
        };
        assert_eq!(c.out_height(), 13);
        assert_eq!(c.out_width(), 13);
        assert_eq!(c.output_len(), 4 * 13 * 13);
        let padded = Conv2d { padding: 1, ..c };
        assert_eq!(padded.out_height(), 14);
    }

    #[test]
    fn lowered_conv_equals_direct_conv() {
        let c = Conv2d {
            in_channels: 2,
            in_height: 7,
            in_width: 6,
            out_channels: 3,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let kernels = rand_vec(c.kernel_len(), 1);
        let input = rand_vec(c.input_len(), 2);
        let direct = c.direct(&input, &kernels);
        let w = c.lower(&kernels);
        let x = Matrix::from_vec(1, input.len(), input);
        let lowered = x.matmul_t(&w);
        for (a, b) in lowered.row(0).iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn lowered_pool_equals_direct_pool() {
        let p = AvgPool2d {
            channels: 3,
            in_height: 8,
            in_width: 6,
            window: 2,
        };
        let input = rand_vec(p.input_len(), 3);
        let direct = p.direct(&input);
        let w = p.lower();
        let x = Matrix::from_vec(1, input.len(), input);
        let lowered = x.matmul_t(&w);
        for (a, b) in lowered.row(0).iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Lowering ≡ direct convolution over random small shapes.
        #[test]
        fn conv_lowering_property(
            in_c in 1usize..3,
            out_c in 1usize..4,
            h in 3usize..9,
            w in 3usize..9,
            k in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..2,
            seed in 0u64..100,
        ) {
            prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
            let c = Conv2d {
                in_channels: in_c,
                in_height: h,
                in_width: w,
                out_channels: out_c,
                kernel: k,
                stride,
                padding,
            };
            let kernels = rand_vec(c.kernel_len(), seed);
            let input = rand_vec(c.input_len(), seed + 1);
            let direct = c.direct(&input, &kernels);
            let x = Matrix::from_vec(1, input.len(), input);
            let lowered = x.matmul_t(&c.lower(&kernels));
            for (a, b) in lowered.row(0).iter().zip(&direct) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn convnet_builder_chains_shapes() {
        let conv = Conv2d {
            in_channels: 1,
            in_height: 28,
            in_width: 28,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 0,
        };
        let pool = AvgPool2d {
            channels: 4,
            in_height: 13,
            in_width: 13,
            window: 2,
        };
        let mlp = convnet_to_mlp(
            "cnn",
            784,
            ActSpec::Hwgq { bits: 2 },
            &[
                ConvStage::Conv(conv, ActSpec::Hwgq { bits: 2 }, 2),
                ConvStage::Pool(pool, ActSpec::Hwgq { bits: 2 }, 2),
                ConvStage::Dense(10, ActSpec::None, 2),
            ],
            5,
        );
        assert_eq!(mlp.layers.len(), 3);
        assert_eq!(mlp.layers[0].w.rows(), 4 * 13 * 13);
        assert_eq!(mlp.layers[0].w.cols(), 784);
        assert_eq!(mlp.layers[1].w.rows(), 4 * 6 * 6);
        assert_eq!(mlp.layers[2].w.rows(), 10);
        // Pool taps are exactly 1/4 at their structural positions.
        let pw = &mlp.layers[1].w;
        let nonzero = pw.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4 * 6 * 6 * 4);
        assert!(pw
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 0.25).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "conv input shape chain")]
    fn builder_rejects_shape_mismatch() {
        let conv = Conv2d {
            in_channels: 1,
            in_height: 10,
            in_width: 10,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        convnet_to_mlp(
            "bad",
            784, // != conv.input_len()
            ActSpec::Hwgq { bits: 2 },
            &[ConvStage::Conv(conv, ActSpec::Hwgq { bits: 2 }, 2)],
            0,
        );
    }
}
