//! The model zoo: the six pre-trained networks of the paper's evaluation.
//!
//! §IV evaluates six quantized MLPs from FINN/Brevitas on MNIST-shaped
//! data: TFC-w1a1, TFC-w2a2, SFC-w1a1, SFC-w2a2, LFC-w1a1, LFC-w1a2.
//! All share the topology 784 → H → H → H → 10 with H = 64 (TFC),
//! 256 (SFC), 1024 (LFC); `wNaM` quantizes weights to N bits and
//! activations to M bits.

use crate::export::{export, BnMode, ExportConfig, ExportError};
use crate::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
use crate::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_arith::{Fix, Precision, QuantParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Input dimensionality of every zoo model (28×28 images).
pub const ZOO_INPUT_LEN: usize = crate::dataset::IMAGE_PIXELS;
/// Class count of every zoo model.
pub const ZOO_CLASSES: usize = crate::dataset::NUM_CLASSES;
/// Hidden-layer count of every zoo model.
pub const ZOO_HIDDEN_LAYERS: usize = 3;

/// The six evaluation models.
///
/// ```
/// use netpu_nn::{export::BnMode, reference, zoo::ZooModel};
/// let model = ZooModel::TfcW2A2.build_untrained(7, BnMode::Folded).unwrap();
/// assert_eq!(model.layer_count(), 5); // input + 3 hidden + output
/// let class = reference::infer(&model, &vec![128u8; 784]);
/// assert!(class < 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ZooModel {
    /// TFC (64-wide), 1-bit weights, 1-bit activations.
    TfcW1A1,
    /// TFC (64-wide), 2-bit weights, 2-bit activations.
    TfcW2A2,
    /// SFC (256-wide), 1-bit weights, 1-bit activations.
    SfcW1A1,
    /// SFC (256-wide), 2-bit weights, 2-bit activations.
    SfcW2A2,
    /// LFC (1024-wide), 1-bit weights, 1-bit activations.
    LfcW1A1,
    /// LFC (1024-wide), 1-bit weights, 2-bit activations.
    LfcW1A2,
}

impl ZooModel {
    /// All six models in the paper's order.
    pub const ALL: [ZooModel; 6] = [
        ZooModel::TfcW1A1,
        ZooModel::TfcW2A2,
        ZooModel::SfcW1A1,
        ZooModel::SfcW2A2,
        ZooModel::LfcW1A1,
        ZooModel::LfcW1A2,
    ];

    /// The paper's model name, e.g. `"SFC-w1a1"`.
    pub fn name(self) -> &'static str {
        match self {
            ZooModel::TfcW1A1 => "TFC-w1a1",
            ZooModel::TfcW2A2 => "TFC-w2a2",
            ZooModel::SfcW1A1 => "SFC-w1a1",
            ZooModel::SfcW2A2 => "SFC-w2a2",
            ZooModel::LfcW1A1 => "LFC-w1a1",
            ZooModel::LfcW1A2 => "LFC-w1a2",
        }
    }

    /// Hidden-layer width (64 / 256 / 1024).
    pub fn hidden_width(self) -> usize {
        match self {
            ZooModel::TfcW1A1 | ZooModel::TfcW2A2 => 64,
            ZooModel::SfcW1A1 | ZooModel::SfcW2A2 => 256,
            ZooModel::LfcW1A1 | ZooModel::LfcW1A2 => 1024,
        }
    }

    /// Weight precision in bits.
    pub fn weight_bits(self) -> u8 {
        match self {
            ZooModel::TfcW2A2 | ZooModel::SfcW2A2 => 2,
            _ => 1,
        }
    }

    /// Activation precision in bits.
    pub fn act_bits(self) -> u8 {
        match self {
            ZooModel::TfcW1A1 | ZooModel::SfcW1A1 | ZooModel::LfcW1A1 => 1,
            _ => 2,
        }
    }

    /// `true` for the fully binarized (Sign-activation) models.
    pub fn is_binary(self) -> bool {
        self.act_bits() == 1
    }

    /// The activation family used by the hidden layers (and input layer).
    pub fn activation(self) -> ActSpec {
        if self.is_binary() {
            ActSpec::Sign
        } else {
            ActSpec::Hwgq {
                bits: self.act_bits(),
            }
        }
    }

    /// The float-training specification for this model.
    pub fn spec(self) -> MlpSpec {
        let act = self.activation();
        let mut layers: Vec<LayerSpec> = (0..ZOO_HIDDEN_LAYERS)
            .map(|_| LayerSpec {
                neurons: self.hidden_width(),
                weight_bits: self.weight_bits(),
                act,
                batch_norm: true,
            })
            .collect();
        layers.push(LayerSpec {
            neurons: ZOO_CLASSES,
            weight_bits: self.weight_bits(),
            act: ActSpec::None,
            batch_norm: true,
        });
        MlpSpec {
            name: self.name().to_string(),
            input_len: ZOO_INPUT_LEN,
            input_act: act,
            layers,
        }
    }

    /// Total FC weight count (the quantity that dominates stream length
    /// and therefore latency).
    pub fn weight_count(self) -> usize {
        let h = self.hidden_width();
        ZOO_INPUT_LEN * h + (ZOO_HIDDEN_LAYERS - 1) * h * h + h * ZOO_CLASSES
    }

    /// Builds an untrained (randomly initialised, identity-BN) hardware
    /// model, deterministic in `seed`. Latency is data- and
    /// weight-value-independent, so benchmarks use this; accuracy
    /// experiments use [`ZooModel::train`].
    pub fn build_untrained(self, seed: u64, bn_mode: BnMode) -> Result<QuantMlp, ExportError> {
        let fm = FloatMlp::init(self.spec(), seed);
        export(&fm, &ExportConfig { bn_mode })
    }

    /// Trains the model on `data` and exports it under `bn_mode`.
    pub fn train(
        self,
        data: &crate::dataset::Dataset,
        cfg: &crate::train::TrainConfig,
        bn_mode: BnMode,
    ) -> Result<(FloatMlp, QuantMlp), ExportError> {
        let mut fm = FloatMlp::init(self.spec(), cfg.seed ^ 0xA5A5);
        crate::train::train(&mut fm, data, cfg);
        let qm = export(&fm, &ExportConfig { bn_mode })?;
        Ok((fm, qm))
    }
}

impl fmt::Display for ZooModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministically builds a small random-but-valid [`QuantMlp`] from a
/// seed: rng-drawn shape (4–23 inputs, 1–2 hidden layers 2–11 wide, 2–5
/// classes), precision mix (W1/W2/W4 weights, 1/2/4-bit activations),
/// and Sign / Multi-Threshold / QUAN activation paths with either folded
/// biases or hardware BN. Every model validates; the translation
/// validator and `xtask certify` sweep these against their own honest
/// compiles.
pub fn random_model(seed: u64) -> QuantMlp {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_len = rng.gen_range(4..24);
    let hidden_layers = rng.gen_range(1..3);
    let width = rng.gen_range(2..12);
    let classes = rng.gen_range(2..6);

    let act_bits: u8 = [1u8, 2, 2, 4][rng.gen_range(0..4usize)];
    let out_prec = Precision::new(act_bits).expect("1/2/4 are valid activation widths");
    let input_activation = if act_bits == 1 {
        LayerActivation::Sign {
            thresholds: (0..input_len)
                .map(|_| Fix::from_i32(rng.gen_range(0..255)))
                .collect(),
        }
    } else {
        LayerActivation::MultiThreshold {
            thresholds: (0..input_len)
                .map(|_| {
                    let mut t: Vec<i32> = (0..out_prec.multi_threshold_count())
                        .map(|_| rng.gen_range(0..255))
                        .collect();
                    t.sort_unstable();
                    t.into_iter().map(Fix::from_i32).collect()
                })
                .collect(),
        }
    };

    let mut hidden = Vec::new();
    let mut prev_width = input_len;
    let prev_prec = out_prec;
    for _ in 0..hidden_layers {
        // Weight precision: binary only when inputs are binary (the
        // XNOR pairing rule) or on the promoted integer path.
        let wp = if prev_prec.is_binary() {
            Precision::W1
        } else {
            Precision::new([1u8, 2, 4][rng.gen_range(0..3usize)]).expect("valid widths")
        };
        let weights: Vec<i32> = (0..width * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect();
        let out = prev_prec; // keep one precision through the stack
        let activation = if out.is_binary() {
            LayerActivation::Sign {
                thresholds: (0..width)
                    .map(|_| Fix::from_i32(rng.gen_range(-20..20)))
                    .collect(),
            }
        } else if rng.gen_bool(0.3) {
            // The full-precision ACTIV + QUAN path; these require
            // hardware BN to keep the values in a sane range, so force
            // the BN branch below.
            let quant = QuantParams::from_f64(rng.gen_range(0.25..4.0), rng.gen_range(0.0..1.0));
            match rng.gen_range(0..3) {
                0 => LayerActivation::Relu { quant },
                1 => LayerActivation::Sigmoid { quant },
                _ => LayerActivation::Tanh { quant },
            }
        } else {
            LayerActivation::MultiThreshold {
                thresholds: (0..width)
                    .map(|_| {
                        let mut t: Vec<i32> = (0..out.multi_threshold_count())
                            .map(|_| rng.gen_range(-50..50))
                            .collect();
                        t.sort_unstable();
                        t.into_iter().map(Fix::from_i32).collect()
                    })
                    .collect(),
            }
        };
        let use_bn = rng.gen_bool(0.5)
            || matches!(
                activation,
                LayerActivation::Relu { .. }
                    | LayerActivation::Sigmoid { .. }
                    | LayerActivation::Tanh { .. }
            );
        hidden.push(HiddenLayer {
            in_len: prev_width,
            neurons: width,
            weight_precision: wp,
            in_precision: prev_prec,
            out_precision: out,
            weights,
            bias: if use_bn {
                None
            } else {
                Some((0..width).map(|_| rng.gen_range(-10..10)).collect())
            },
            bn: if use_bn {
                Some(
                    (0..width)
                        .map(|_| BnParams {
                            scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.01..2.0)),
                            offset: Fix::from_f64(rng.gen_range(-4.0..4.0)),
                        })
                        .collect(),
                )
            } else {
                None
            },
            activation,
        });
        prev_width = width;
    }

    let wp = if prev_prec.is_binary() {
        Precision::W1
    } else {
        Precision::W2
    };
    let output = OutputLayer {
        in_len: prev_width,
        neurons: classes,
        weight_precision: wp,
        in_precision: prev_prec,
        weights: (0..classes * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect(),
        bias: None,
        bn: Some(
            (0..classes)
                .map(|_| BnParams {
                    scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.1..2.0)),
                    offset: Fix::from_f64(rng.gen_range(-2.0..2.0)),
                })
                .collect(),
        ),
    };

    QuantMlp {
        name: format!("random-{seed}"),
        input: InputLayer {
            len: input_len,
            out_precision: out_prec,
            activation: input_activation,
        },
        hidden,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_matches_paper_topologies() {
        assert_eq!(ZooModel::TfcW1A1.hidden_width(), 64);
        assert_eq!(ZooModel::SfcW2A2.hidden_width(), 256);
        assert_eq!(ZooModel::LfcW1A2.hidden_width(), 1024);
        assert_eq!(ZooModel::LfcW1A2.weight_bits(), 1);
        assert_eq!(ZooModel::LfcW1A2.act_bits(), 2);
        assert!(ZooModel::LfcW1A1.is_binary());
        assert!(!ZooModel::TfcW2A2.is_binary());
    }

    #[test]
    fn weight_counts_match_hand_computation() {
        // TFC: 784·64 + 2·64² + 64·10 = 59,008.
        assert_eq!(ZooModel::TfcW1A1.weight_count(), 59_008);
        // SFC: 784·256 + 2·256² + 256·10 = 334,336.
        assert_eq!(ZooModel::SfcW1A1.weight_count(), 334_336);
        // LFC: 784·1024 + 2·1024² + 1024·10 = 2,910,208.
        assert_eq!(ZooModel::LfcW1A1.weight_count(), 2_910_208);
    }

    #[test]
    fn untrained_models_validate_and_infer() {
        for m in [ZooModel::TfcW1A1, ZooModel::TfcW2A2] {
            let qm = m.build_untrained(1, BnMode::Folded).unwrap();
            qm.validate().unwrap();
            assert_eq!(qm.layer_count(), 5);
            let pixels = vec![100u8; ZOO_INPUT_LEN];
            let class = crate::reference::infer(&qm, &pixels);
            assert!(class < ZOO_CLASSES);
        }
    }

    #[test]
    fn untrained_build_is_deterministic() {
        let a = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        let b = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_models_use_sign_path() {
        let qm = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        assert!(qm.is_fully_binary());
        let qm2 = ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        assert!(!qm2.is_fully_binary());
    }

    #[test]
    fn random_models_validate_and_are_deterministic() {
        for seed in 0..40u64 {
            let m = random_model(seed);
            assert!(m.validate().is_ok(), "seed {seed}: {:?}", m.validate());
            assert_eq!(m, random_model(seed));
        }
        // The generator actually varies shape and activation paths.
        assert_ne!(random_model(0), random_model(1));
    }

    #[test]
    fn w1a2_mixes_binary_weights_with_two_bit_activations() {
        let qm = ZooModel::LfcW1A2
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        assert!(qm.hidden[0].weight_precision.is_binary());
        assert_eq!(qm.hidden[0].out_precision.bits(), 2);
    }
}
