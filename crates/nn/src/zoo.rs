//! The model zoo: the six pre-trained networks of the paper's evaluation.
//!
//! §IV evaluates six quantized MLPs from FINN/Brevitas on MNIST-shaped
//! data: TFC-w1a1, TFC-w2a2, SFC-w1a1, SFC-w2a2, LFC-w1a1, LFC-w1a2.
//! All share the topology 784 → H → H → H → 10 with H = 64 (TFC),
//! 256 (SFC), 1024 (LFC); `wNaM` quantizes weights to N bits and
//! activations to M bits.

use crate::export::{export, BnMode, ExportConfig, ExportError};
use crate::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
use crate::qmodel::QuantMlp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Input dimensionality of every zoo model (28×28 images).
pub const ZOO_INPUT_LEN: usize = crate::dataset::IMAGE_PIXELS;
/// Class count of every zoo model.
pub const ZOO_CLASSES: usize = crate::dataset::NUM_CLASSES;
/// Hidden-layer count of every zoo model.
pub const ZOO_HIDDEN_LAYERS: usize = 3;

/// The six evaluation models.
///
/// ```
/// use netpu_nn::{export::BnMode, reference, zoo::ZooModel};
/// let model = ZooModel::TfcW2A2.build_untrained(7, BnMode::Folded).unwrap();
/// assert_eq!(model.layer_count(), 5); // input + 3 hidden + output
/// let class = reference::infer(&model, &vec![128u8; 784]);
/// assert!(class < 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ZooModel {
    /// TFC (64-wide), 1-bit weights, 1-bit activations.
    TfcW1A1,
    /// TFC (64-wide), 2-bit weights, 2-bit activations.
    TfcW2A2,
    /// SFC (256-wide), 1-bit weights, 1-bit activations.
    SfcW1A1,
    /// SFC (256-wide), 2-bit weights, 2-bit activations.
    SfcW2A2,
    /// LFC (1024-wide), 1-bit weights, 1-bit activations.
    LfcW1A1,
    /// LFC (1024-wide), 1-bit weights, 2-bit activations.
    LfcW1A2,
}

impl ZooModel {
    /// All six models in the paper's order.
    pub const ALL: [ZooModel; 6] = [
        ZooModel::TfcW1A1,
        ZooModel::TfcW2A2,
        ZooModel::SfcW1A1,
        ZooModel::SfcW2A2,
        ZooModel::LfcW1A1,
        ZooModel::LfcW1A2,
    ];

    /// The paper's model name, e.g. `"SFC-w1a1"`.
    pub fn name(self) -> &'static str {
        match self {
            ZooModel::TfcW1A1 => "TFC-w1a1",
            ZooModel::TfcW2A2 => "TFC-w2a2",
            ZooModel::SfcW1A1 => "SFC-w1a1",
            ZooModel::SfcW2A2 => "SFC-w2a2",
            ZooModel::LfcW1A1 => "LFC-w1a1",
            ZooModel::LfcW1A2 => "LFC-w1a2",
        }
    }

    /// Hidden-layer width (64 / 256 / 1024).
    pub fn hidden_width(self) -> usize {
        match self {
            ZooModel::TfcW1A1 | ZooModel::TfcW2A2 => 64,
            ZooModel::SfcW1A1 | ZooModel::SfcW2A2 => 256,
            ZooModel::LfcW1A1 | ZooModel::LfcW1A2 => 1024,
        }
    }

    /// Weight precision in bits.
    pub fn weight_bits(self) -> u8 {
        match self {
            ZooModel::TfcW2A2 | ZooModel::SfcW2A2 => 2,
            _ => 1,
        }
    }

    /// Activation precision in bits.
    pub fn act_bits(self) -> u8 {
        match self {
            ZooModel::TfcW1A1 | ZooModel::SfcW1A1 | ZooModel::LfcW1A1 => 1,
            _ => 2,
        }
    }

    /// `true` for the fully binarized (Sign-activation) models.
    pub fn is_binary(self) -> bool {
        self.act_bits() == 1
    }

    /// The activation family used by the hidden layers (and input layer).
    pub fn activation(self) -> ActSpec {
        if self.is_binary() {
            ActSpec::Sign
        } else {
            ActSpec::Hwgq {
                bits: self.act_bits(),
            }
        }
    }

    /// The float-training specification for this model.
    pub fn spec(self) -> MlpSpec {
        let act = self.activation();
        let mut layers: Vec<LayerSpec> = (0..ZOO_HIDDEN_LAYERS)
            .map(|_| LayerSpec {
                neurons: self.hidden_width(),
                weight_bits: self.weight_bits(),
                act,
                batch_norm: true,
            })
            .collect();
        layers.push(LayerSpec {
            neurons: ZOO_CLASSES,
            weight_bits: self.weight_bits(),
            act: ActSpec::None,
            batch_norm: true,
        });
        MlpSpec {
            name: self.name().to_string(),
            input_len: ZOO_INPUT_LEN,
            input_act: act,
            layers,
        }
    }

    /// Total FC weight count (the quantity that dominates stream length
    /// and therefore latency).
    pub fn weight_count(self) -> usize {
        let h = self.hidden_width();
        ZOO_INPUT_LEN * h + (ZOO_HIDDEN_LAYERS - 1) * h * h + h * ZOO_CLASSES
    }

    /// Builds an untrained (randomly initialised, identity-BN) hardware
    /// model, deterministic in `seed`. Latency is data- and
    /// weight-value-independent, so benchmarks use this; accuracy
    /// experiments use [`ZooModel::train`].
    pub fn build_untrained(self, seed: u64, bn_mode: BnMode) -> Result<QuantMlp, ExportError> {
        let fm = FloatMlp::init(self.spec(), seed);
        export(&fm, &ExportConfig { bn_mode })
    }

    /// Trains the model on `data` and exports it under `bn_mode`.
    pub fn train(
        self,
        data: &crate::dataset::Dataset,
        cfg: &crate::train::TrainConfig,
        bn_mode: BnMode,
    ) -> Result<(FloatMlp, QuantMlp), ExportError> {
        let mut fm = FloatMlp::init(self.spec(), cfg.seed ^ 0xA5A5);
        crate::train::train(&mut fm, data, cfg);
        let qm = export(&fm, &ExportConfig { bn_mode })?;
        Ok((fm, qm))
    }
}

impl fmt::Display for ZooModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_matches_paper_topologies() {
        assert_eq!(ZooModel::TfcW1A1.hidden_width(), 64);
        assert_eq!(ZooModel::SfcW2A2.hidden_width(), 256);
        assert_eq!(ZooModel::LfcW1A2.hidden_width(), 1024);
        assert_eq!(ZooModel::LfcW1A2.weight_bits(), 1);
        assert_eq!(ZooModel::LfcW1A2.act_bits(), 2);
        assert!(ZooModel::LfcW1A1.is_binary());
        assert!(!ZooModel::TfcW2A2.is_binary());
    }

    #[test]
    fn weight_counts_match_hand_computation() {
        // TFC: 784·64 + 2·64² + 64·10 = 59,008.
        assert_eq!(ZooModel::TfcW1A1.weight_count(), 59_008);
        // SFC: 784·256 + 2·256² + 256·10 = 334,336.
        assert_eq!(ZooModel::SfcW1A1.weight_count(), 334_336);
        // LFC: 784·1024 + 2·1024² + 1024·10 = 2,910,208.
        assert_eq!(ZooModel::LfcW1A1.weight_count(), 2_910_208);
    }

    #[test]
    fn untrained_models_validate_and_infer() {
        for m in [ZooModel::TfcW1A1, ZooModel::TfcW2A2] {
            let qm = m.build_untrained(1, BnMode::Folded).unwrap();
            qm.validate().unwrap();
            assert_eq!(qm.layer_count(), 5);
            let pixels = vec![100u8; ZOO_INPUT_LEN];
            let class = crate::reference::infer(&qm, &pixels);
            assert!(class < ZOO_CLASSES);
        }
    }

    #[test]
    fn untrained_build_is_deterministic() {
        let a = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        let b = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_models_use_sign_path() {
        let qm = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        assert!(qm.is_fully_binary());
        let qm2 = ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        assert!(!qm2.is_fully_binary());
    }

    #[test]
    fn w1a2_mixes_binary_weights_with_two_bit_activations() {
        let qm = ZooModel::LfcW1A2
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        assert!(qm.hidden[0].weight_precision.is_binary());
        assert_eq!(qm.hidden[0].out_precision.bits(), 2);
    }
}
