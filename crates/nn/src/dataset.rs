//! Synthetic 28×28 digit-image dataset.
//!
//! The paper evaluates on MNIST (LeCun et al.). This environment has no
//! network access, so we substitute a deterministic generator that renders
//! the ten digit glyphs from a 5×7 stroke font onto a 28×28 canvas with
//! random translation, scaling, stroke intensity, and pixel noise. The
//! task has the same shape as MNIST — 784 8-bit inputs, 10 classes — and
//! is learnable by the quantized TFC/SFC/LFC topologies, which is all the
//! paper's accuracy-bearing claims require (latency is data-independent).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (matches MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Flattened pixel count per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of classes.
pub const NUM_CLASSES: usize = 10;

/// 5×7 bitmap font for the digits 0–9, one row per scanline, 5 LSBs used.
const DIGIT_FONT: [[u8; 7]; 10] = [
    [
        0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
    ], // 0
    [
        0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
    ], // 1
    [
        0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
    ], // 2
    [
        0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
    ], // 3
    [
        0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
    ], // 4
    [
        0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
    ], // 5
    [
        0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
    ], // 6
    [
        0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
    ], // 7
    [
        0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
    ], // 8
    [
        0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
    ], // 9
];

/// One labelled example: 784 8-bit pixels and a class in `0..10`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Example {
    /// Row-major 28×28 grayscale pixels.
    pub pixels: Vec<u8>,
    /// Ground-truth digit.
    pub label: u8,
}

/// A labelled dataset split.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// The examples in iteration order.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// `true` when the split holds no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// Deterministic generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Horizontal/vertical jitter range in pixels (± this value).
    pub max_shift: i32,
    /// Glyph scale range (integer upscaling of the 5×7 font).
    pub scale_range: (u32, u32),
    /// Additive uniform pixel noise amplitude (0–255 scale).
    pub noise_amplitude: u8,
    /// Minimum stroke intensity (0–255); actual intensity is sampled in
    /// `[min_intensity, 255]`.
    pub min_intensity: u8,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            max_shift: 3,
            scale_range: (2, 3),
            noise_amplitude: 24,
            min_intensity: 160,
        }
    }
}

/// Renders one digit image.
fn render_digit(rng: &mut StdRng, digit: u8, cfg: &GeneratorConfig) -> Vec<u8> {
    let mut img = vec![0u8; IMAGE_PIXELS];
    let scale = rng.gen_range(cfg.scale_range.0..=cfg.scale_range.1) as i32;
    let glyph_w = 5 * scale;
    let glyph_h = 7 * scale;
    let base_x = (IMAGE_SIDE as i32 - glyph_w) / 2 + rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let base_y = (IMAGE_SIDE as i32 - glyph_h) / 2 + rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let intensity = rng.gen_range(cfg.min_intensity..=255u8);
    let font = &DIGIT_FONT[digit as usize];
    for (row, &bits) in font.iter().enumerate() {
        for col in 0..5i32 {
            if bits >> (4 - col) & 1 == 0 {
                continue;
            }
            for dy in 0..scale {
                for dx in 0..scale {
                    let x = base_x + col * scale + dx;
                    let y = base_y + row as i32 * scale + dy;
                    if (0..IMAGE_SIDE as i32).contains(&x) && (0..IMAGE_SIDE as i32).contains(&y) {
                        img[y as usize * IMAGE_SIDE + x as usize] = intensity;
                    }
                }
            }
        }
    }
    if cfg.noise_amplitude > 0 {
        for px in img.iter_mut() {
            let noise = i32::from(rng.gen_range(0..=cfg.noise_amplitude));
            *px = (*px as i32 + noise).min(255) as u8;
        }
    }
    img
}

/// Generates a dataset of `n` examples with balanced labels, deterministic
/// in `seed`.
pub fn generate(n: usize, seed: u64, cfg: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let examples = (0..n)
        .map(|i| {
            let label = (i % NUM_CLASSES) as u8;
            Example {
                pixels: render_digit(&mut rng, label, cfg),
                label,
            }
        })
        .collect();
    Dataset { examples }
}

/// A low-noise, low-jitter configuration for fast-converging learning
/// smoke tests (unit tests that only assert "training learns").
pub fn easy_config() -> GeneratorConfig {
    GeneratorConfig {
        max_shift: 1,
        scale_range: (3, 3),
        noise_amplitude: 8,
        min_intensity: 220,
    }
}

/// Generates train/test splits with the easy configuration.
pub fn easy_splits(train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
    let cfg = easy_config();
    (
        generate(train_n, seed, &cfg),
        generate(test_n, seed.wrapping_add(0x9E37_79B9_7F4A_7C15), &cfg),
    )
}

/// Generates the standard train/test pair used across the repository:
/// disjoint seeds, default configuration.
pub fn standard_splits(train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
    let cfg = GeneratorConfig::default();
    (
        generate(train_n, seed, &cfg),
        generate(test_n, seed.wrapping_add(0x9E37_79B9_7F4A_7C15), &cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = GeneratorConfig::default();
        let a = generate(20, 7, &cfg);
        let b = generate(20, 7, &cfg);
        assert_eq!(a.examples, b.examples);
        let c = generate(20, 8, &cfg);
        assert_ne!(a.examples, c.examples);
    }

    #[test]
    fn labels_are_balanced() {
        let ds = generate(100, 1, &GeneratorConfig::default());
        let mut counts = [0usize; NUM_CLASSES];
        for e in &ds.examples {
            counts[e.label as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn images_have_visible_strokes() {
        let ds = generate(30, 2, &GeneratorConfig::default());
        for e in &ds.examples {
            assert_eq!(e.pixels.len(), IMAGE_PIXELS);
            let bright = e.pixels.iter().filter(|&&p| p >= 160).count();
            // A rendered glyph at scale ≥2 covers at least ~40 pixels.
            assert!(bright >= 40, "digit {} too faint: {bright}", e.label);
        }
    }

    #[test]
    fn noise_free_images_are_clean() {
        let cfg = GeneratorConfig {
            noise_amplitude: 0,
            ..GeneratorConfig::default()
        };
        let ds = generate(10, 3, &cfg);
        for e in &ds.examples {
            assert!(e.pixels.iter().all(|&p| p == 0 || p >= 160));
        }
    }

    #[test]
    fn different_digits_render_differently() {
        let cfg = GeneratorConfig {
            max_shift: 0,
            scale_range: (3, 3),
            noise_amplitude: 0,
            min_intensity: 255,
        };
        let ds = generate(10, 5, &cfg);
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(
                    ds.examples[i].pixels, ds.examples[j].pixels,
                    "digits {i} and {j} rendered identically"
                );
            }
        }
    }

    #[test]
    fn standard_splits_are_disjoint_streams() {
        let (train, test) = standard_splits(50, 50, 11);
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 50);
        assert_ne!(train.examples[0].pixels, test.examples[0].pixels);
    }
}
