//! Classification metrics over the bit-exact reference model.

use crate::dataset::{Dataset, NUM_CLASSES};
use crate::qmodel::QuantMlp;
use rayon::prelude::*;

/// Accuracy of a hardware model over a dataset (parallel over examples).
pub fn accuracy(mlp: &QuantMlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct: usize = data
        .examples
        .par_iter()
        .map(|e| usize::from(crate::reference::infer(mlp, &e.pixels) == e.label as usize))
        .sum();
    correct as f64 / data.len() as f64
}

/// A `NUM_CLASSES × NUM_CLASSES` confusion matrix; rows are true labels,
/// columns predictions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Evaluates the model over the dataset.
    pub fn evaluate(mlp: &QuantMlp, data: &Dataset) -> ConfusionMatrix {
        let rows: Vec<(usize, usize)> = data
            .examples
            .par_iter()
            .map(|e| (e.label as usize, crate::reference::infer(mlp, &e.pixels)))
            .collect();
        let mut counts = vec![0u32; NUM_CLASSES * NUM_CLASSES];
        for (t, p) in rows {
            counts[t * NUM_CLASSES + p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Count of examples with true label `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> u32 {
        self.counts[t * NUM_CLASSES + p]
    }

    /// Total examples counted.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Accuracy derived from the diagonal.
    pub fn accuracy(&self) -> f64 {
        let diag: u32 = (0..NUM_CLASSES).map(|i| self.get(i, i)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            diag as f64 / total as f64
        }
    }

    /// Per-class recall (`None` when the class has no examples).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u32 = (0..NUM_CLASSES).map(|p| self.get(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / row as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::export::BnMode;
    use crate::zoo::ZooModel;

    #[test]
    fn empty_dataset_scores_zero() {
        let qm = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        assert_eq!(accuracy(&qm, &Dataset::default()), 0.0);
    }

    #[test]
    fn confusion_matrix_totals_match_dataset() {
        let qm = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(40, 5, &dataset::GeneratorConfig::default());
        let cm = ConfusionMatrix::evaluate(&qm, &ds);
        assert_eq!(cm.total(), 40);
        assert!((cm.accuracy() - accuracy(&qm, &ds)).abs() < 1e-12);
    }

    #[test]
    fn recall_is_none_for_absent_classes() {
        let qm = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        // Only digits 0 and 1 present (first two of the cycling labels).
        let ds = Dataset {
            examples: dataset::generate(2, 5, &dataset::GeneratorConfig::default()).examples,
        };
        let cm = ConfusionMatrix::evaluate(&qm, &ds);
        assert!(cm.recall(0).is_some());
        assert!(cm.recall(9).is_none());
    }
}
