//! A minimal dense-matrix type for MLP training.
//!
//! The trainer only needs row-major `f32` matrices with matrix
//! multiplication, transposition, and elementwise helpers. Matmuls
//! parallelise over output rows with rayon, which is what makes training
//! the LFC (1024-wide) models practical.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A row-major `f32` matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice accessor.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice accessor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`, parallelised over rows of `self`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        out.data
            .par_chunks_mut(cols)
            .zip(self.data.par_chunks(self.cols))
            .for_each(|(orow, arow)| {
                for (k, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[k * cols..(k + 1) * cols];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// `selfᵀ × rhs` without materialising the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "outer dimensions must agree");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let cols = rhs.cols;
        // Accumulate per output row in parallel: out[i][j] = Σ_k a[k][i]·b[k][j].
        out.data
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, orow)| {
                for k in 0..self.rows {
                    let a = self.data[k * self.cols + i];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[k * cols..(k + 1) * cols];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// `self × rhsᵀ` without materialising the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let rcols = rhs.rows;
        out.data
            .par_chunks_mut(rcols)
            .zip(self.data.par_chunks(self.cols))
            .for_each(|(orow, arow)| {
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                    *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                }
            });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        self.data.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Elementwise product in place.
    pub fn hadamard_inplace(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .par_iter_mut()
            .zip(rhs.data.par_iter())
            .for_each(|(a, &b)| *a *= b);
    }

    /// `self += alpha · rhs`.
    pub fn axpy_inplace(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .par_iter_mut()
            .zip(rhs.data.par_iter())
            .for_each(|(a, &b)| *a += alpha * b);
    }

    /// Sum of each column (a length-`cols` vector).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.5);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.25);
        let b = Matrix::from_fn(4, 5, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn col_sums_sum_rows() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.data(), &[1.0, 0.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 2.0, 2.0]);
        a.hadamard_inplace(&b);
        assert_eq!(a.data(), &[2.0, 0.0, 6.0]);
        a.axpy_inplace(0.5, &b);
        assert_eq!(a.data(), &[3.0, 1.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
