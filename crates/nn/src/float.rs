//! The float-domain quantization-aware MLP (the Brevitas substitute).
//!
//! Training runs in `f32` with fake quantization: weights and activations
//! are quantized in the forward pass while gradients flow through
//! straight-through estimators (STE). BatchNorm keeps trainable `γ`/`β`
//! and EMA running statistics. The trained [`FloatMlp`] is then lowered by
//! [`mod@crate::export`] into a hardware-ready [`crate::qmodel::QuantMlp`].

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation-quantizer family for one layer.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum ActSpec {
    /// Binarizing sign activation (w?a1 models).
    Sign,
    /// Uniform HWGQ-style quantizer with `bits` output bits: levels
    /// `k·α` for `k ∈ 0..2^bits−1`.
    Hwgq {
        /// Output precision in bits (2–8).
        bits: u8,
    },
    /// ReLU followed by uniform quantization to `bits` (exported onto the
    /// hardware ReLU + QUAN path rather than Multi-Threshold).
    ReluQuant {
        /// Output precision in bits (2–8).
        bits: u8,
    },
    /// Piecewise-linear Sigmoid (the hardware's Eq. 4 approximation)
    /// followed by uniform quantization to `bits` (exported onto the
    /// hardware Sigmoid + QUAN path).
    SigmoidQuant {
        /// Output precision in bits (2–8).
        bits: u8,
    },
    /// No activation — the output layer.
    None,
}

impl ActSpec {
    /// Output bits of the activation (1 for Sign; 0 for None).
    pub fn bits(self) -> u8 {
        match self {
            ActSpec::Sign => 1,
            ActSpec::Hwgq { bits }
            | ActSpec::ReluQuant { bits }
            | ActSpec::SigmoidQuant { bits } => bits,
            ActSpec::None => 0,
        }
    }

    /// Quantizer step `α` in the float domain: Sign has unit levels ±1;
    /// uniform quantizers spread `2^bits − 1` levels over `[0, 2]`
    /// (post-BN pre-activations are ≈ unit-normal, so the positive half
    /// is well covered).
    pub fn alpha(self) -> f32 {
        match self {
            ActSpec::Sign => 1.0,
            ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } => {
                2.0 / ((1u32 << bits) - 1) as f32
            }
            // Sigmoid outputs lie in [0, 1]: one level step spans it.
            ActSpec::SigmoidQuant { bits } => 1.0 / ((1u32 << bits) - 1) as f32,
            ActSpec::None => 1.0,
        }
    }

    /// Maximum quantized level.
    pub fn max_level(self) -> i32 {
        match self {
            ActSpec::Sign => 1,
            ActSpec::Hwgq { bits }
            | ActSpec::ReluQuant { bits }
            | ActSpec::SigmoidQuant { bits } => (1i32 << bits) - 1,
            ActSpec::None => 0,
        }
    }
}

/// Specification of one trainable FC layer.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Number of neurons.
    pub neurons: usize,
    /// Weight precision in bits (1–8).
    pub weight_bits: u8,
    /// Activation (use [`ActSpec::None`] for the output layer).
    pub act: ActSpec,
    /// Whether the layer trains a BatchNorm stage.
    pub batch_norm: bool,
}

/// Specification of a whole QAT MLP.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Model name carried through to export.
    pub name: String,
    /// Input dimensionality (784 for the image datasets).
    pub input_len: usize,
    /// The input layer's quantizer (how 8-bit pixels reach the first FC
    /// layer's precision).
    pub input_act: ActSpec,
    /// FC layers; the last entry is the output layer and should use
    /// [`ActSpec::None`].
    pub layers: Vec<LayerSpec>,
}

/// Trainable BatchNorm state for one layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchNorm {
    /// Per-neuron scale γ (clamped positive so threshold folding keeps
    /// its comparison direction; see `export`).
    pub gamma: Vec<f32>,
    /// Per-neuron shift β.
    pub beta: Vec<f32>,
    /// EMA of the per-neuron mean.
    pub running_mean: Vec<f32>,
    /// EMA of the per-neuron variance.
    pub running_var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// EMA momentum.
    pub momentum: f32,
}

impl BatchNorm {
    /// Identity-initialised BN over `n` neurons.
    pub fn new(n: usize) -> BatchNorm {
        BatchNorm {
            gamma: vec![1.0; n],
            beta: vec![0.0; n],
            running_mean: vec![0.0; n],
            running_var: vec![1.0; n],
            eps: 1e-5,
            momentum: 0.1,
        }
    }
}

/// One trainable FC layer with master weights.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FloatLayer {
    /// `neurons × in_len` master weights.
    pub w: Matrix,
    /// Per-neuron bias (unused when `bn` is present — BN's β subsumes it).
    pub b: Vec<f32>,
    /// Optional BatchNorm stage.
    pub bn: Option<BatchNorm>,
    /// The layer specification.
    pub spec: LayerSpec,
}

/// The float QAT model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FloatMlp {
    /// The model specification.
    pub spec: MlpSpec,
    /// FC layers in order (hidden layers then the output layer).
    pub layers: Vec<FloatLayer>,
}

/// Quantizes a weight matrix, returning the quantized copy and the scale
/// `α_w` such that `W_q = α_w · W_int`.
///
/// 1-bit weights binarize to `±α_w` with `α_w = mean(|W|)` (the XNOR-Net
/// scaling); multi-bit weights use uniform quantization with an
/// RMS-derived step, `α_w = rms(W)·min(3/signed_max, 0.8)`, so the level
/// grid covers ≈±3σ of the weight distribution at every precision
/// (a max-based step leaves most low-bit weights rounding to zero).
pub fn quantize_weights(w: &Matrix, bits: u8) -> (Matrix, f32) {
    let data = w.data();
    if bits == 1 {
        let mean_abs = data.iter().map(|v| v.abs()).sum::<f32>() / data.len().max(1) as f32;
        let alpha = if mean_abs > 0.0 { mean_abs } else { 1.0 };
        let mut q = w.clone();
        q.map_inplace(move |v| if v >= 0.0 { alpha } else { -alpha });
        (q, alpha)
    } else {
        let rms = (data.iter().map(|v| v * v).sum::<f32>() / data.len().max(1) as f32).sqrt();
        let smax = ((1i32 << (bits - 1)) - 1) as f32;
        let alpha = if rms > 0.0 {
            rms * (3.0 / smax).min(0.8)
        } else {
            1.0
        };
        let mut q = w.clone();
        let smin = -(1i32 << (bits - 1)) as f32;
        q.map_inplace(move |v| (v / alpha).round().clamp(smin, smax) * alpha);
        (q, alpha)
    }
}

/// Integer weights corresponding to [`quantize_weights`]' output:
/// `round(W/α_w)` clamped to the signed range (`±1` for 1-bit).
pub fn integer_weights(w: &Matrix, bits: u8, alpha: f32) -> Vec<i32> {
    let smax = if bits == 1 {
        1
    } else {
        (1i32 << (bits - 1)) - 1
    };
    let smin = if bits == 1 { -1 } else { -(1i32 << (bits - 1)) };
    w.data()
        .iter()
        .map(|&v| {
            if bits == 1 {
                if v >= 0.0 {
                    1
                } else {
                    -1
                }
            } else {
                ((v / alpha).round() as i32).clamp(smin, smax)
            }
        })
        .collect()
}

/// Gradient passed outside the quantizer's active range. A hard zero
/// lets a neuron whose pre-activations all leave the clip range die
/// permanently (its mask, and through it the BN parameter gradients, go
/// to zero forever); a small leak lets it recover.
pub const STE_LEAK: f32 = 0.1;

/// Quantizes an activation batch in place with the layer's quantizer and
/// returns the STE gradient mask (1 inside the active range, [`STE_LEAK`]
/// outside).
pub fn quantize_activations(z: &mut Matrix, act: ActSpec) -> Matrix {
    let mut mask = Matrix::zeros(z.rows(), z.cols());
    match act {
        ActSpec::None => {
            mask.map_inplace(|_| 1.0);
        }
        ActSpec::Sign => {
            // Hard-tanh STE: full gradient where |z| ≤ 1.
            for (m, v) in mask.data_mut().iter_mut().zip(z.data().iter()) {
                *m = if v.abs() <= 1.0 { 1.0 } else { STE_LEAK };
            }
            z.map_inplace(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        }
        ActSpec::Hwgq { .. } | ActSpec::ReluQuant { .. } => {
            let alpha = act.alpha();
            let maxv = act.max_level() as f32 * alpha;
            for (m, v) in mask.data_mut().iter_mut().zip(z.data().iter()) {
                *m = if (0.0..=maxv).contains(v) {
                    1.0
                } else {
                    STE_LEAK
                };
            }
            z.map_inplace(move |v| (v / alpha).round().clamp(0.0, maxv / alpha) * alpha);
        }
        ActSpec::SigmoidQuant { .. } => {
            // Forward: quantized PWL sigmoid (the hardware's Eq. 4
            // shape). Backward: the PWL's own local slope, scaled so
            // the steepest segment passes unit gradient.
            let m = act.max_level() as f32;
            for (g, v) in mask.data_mut().iter_mut().zip(z.data().iter()) {
                let a = v.abs();
                *g = if a < 1.0 {
                    1.0
                } else if a < 2.375 {
                    0.5
                } else if a < 5.0 {
                    0.125
                } else {
                    STE_LEAK
                };
            }
            z.map_inplace(move |v| (crate::float::pwl_sigmoid_f32(v) * m).round() / m);
        }
    }
    mask
}

/// `f32` wrapper over the shared piecewise-linear sigmoid reference.
pub fn pwl_sigmoid_f32(x: f32) -> f32 {
    netpu_arith::activation::pwl_sigmoid_f64(f64::from(x)) as f32
}

/// Quantizes raw 8-bit inputs into the float domain the first FC layer
/// consumes (levels ·α, or ±1 for a binary input layer).
pub fn quantize_input(pixels: &[u8], act: ActSpec) -> Vec<f32> {
    match act {
        ActSpec::Sign => pixels
            .iter()
            .map(|&p| if p >= 128 { 1.0 } else { -1.0 })
            .collect(),
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } | ActSpec::SigmoidQuant { bits } => {
            let m = ((1u32 << bits) - 1) as f32;
            // Levels spread over [0,1]: x_q = round(p/255·m)/m.
            pixels
                .iter()
                .map(|&p| (p as f32 / 255.0 * m).round() / m)
                .collect()
        }
        ActSpec::None => pixels.iter().map(|&p| p as f32 / 255.0).collect(),
    }
}

/// The integer level corresponding to [`quantize_input`] for export
/// cross-checks: the hardware input layer must produce exactly this.
pub fn input_level(pixel: u8, act: ActSpec) -> i32 {
    match act {
        ActSpec::Sign => i32::from(pixel >= 128),
        ActSpec::Hwgq { bits } | ActSpec::ReluQuant { bits } | ActSpec::SigmoidQuant { bits } => {
            let m = ((1u32 << bits) - 1) as f32;
            (pixel as f32 / 255.0 * m).round() as i32
        }
        ActSpec::None => pixel as i32,
    }
}

impl FloatMlp {
    /// Random He-style initialisation, deterministic in `seed`.
    pub fn init(spec: MlpSpec, seed: u64) -> FloatMlp {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut in_len = spec.input_len;
        let mut layers = Vec::with_capacity(spec.layers.len());
        for ls in &spec.layers {
            let std = (2.0 / in_len as f32).sqrt();
            let w = Matrix::from_fn(ls.neurons, in_len, |_, _| {
                // Box-Muller normal from two uniforms.
                let u1: f32 = rng.gen_range(1e-6..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            });
            layers.push(FloatLayer {
                w,
                b: vec![0.0; ls.neurons],
                bn: if ls.batch_norm {
                    Some(BatchNorm::new(ls.neurons))
                } else {
                    None
                },
                spec: *ls,
            });
            in_len = ls.neurons;
        }
        FloatMlp { spec, layers }
    }

    /// Inference-mode forward pass over a batch (rows = examples),
    /// using running BN statistics and fake-quantized weights. Returns
    /// the logits.
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            let (wq, _) = quantize_weights(&layer.w, layer.spec.weight_bits);
            let mut z = a.matmul_t(&wq);
            if let Some(bn) = &layer.bn {
                for r in 0..z.rows() {
                    let row = z.row_mut(r);
                    for (j, v) in row.iter_mut().enumerate() {
                        let inv = (bn.running_var[j] + bn.eps).sqrt().recip();
                        *v = bn.gamma[j] * (*v - bn.running_mean[j]) * inv + bn.beta[j];
                    }
                }
            } else {
                for r in 0..z.rows() {
                    for (j, v) in z.row_mut(r).iter_mut().enumerate() {
                        *v += layer.b[j];
                    }
                }
            }
            quantize_activations(&mut z, layer.spec.act);
            a = z;
        }
        a
    }

    /// Predicted class per batch row from an inference-mode forward pass.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward_eval(x);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2() -> MlpSpec {
        MlpSpec {
            name: "t".into(),
            input_len: 6,
            input_act: ActSpec::Hwgq { bits: 2 },
            layers: vec![
                LayerSpec {
                    neurons: 5,
                    weight_bits: 2,
                    act: ActSpec::Hwgq { bits: 2 },
                    batch_norm: true,
                },
                LayerSpec {
                    neurons: 3,
                    weight_bits: 2,
                    act: ActSpec::None,
                    batch_norm: true,
                },
            ],
        }
    }

    #[test]
    fn init_is_deterministic_and_shaped() {
        let a = FloatMlp::init(spec2(), 3);
        let b = FloatMlp::init(spec2(), 3);
        assert_eq!(a.layers[0].w, b.layers[0].w);
        assert_eq!(a.layers[0].w.rows(), 5);
        assert_eq!(a.layers[0].w.cols(), 6);
        assert_eq!(a.layers[1].w.cols(), 5);
        let c = FloatMlp::init(spec2(), 4);
        assert_ne!(a.layers[0].w, c.layers[0].w);
    }

    #[test]
    fn binary_weight_quantization_uses_mean_abs() {
        let w = Matrix::from_vec(1, 4, vec![0.5, -1.5, 2.0, -0.0]);
        let (wq, alpha) = quantize_weights(&w, 1);
        assert_eq!(alpha, 1.0);
        assert_eq!(wq.data(), &[1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn multibit_weight_quantization_uses_rms_step() {
        let w = Matrix::from_vec(1, 3, vec![0.3, -0.9, 0.45]);
        let (wq, alpha) = quantize_weights(&w, 2);
        // rms = sqrt((0.09+0.81+0.2025)/3); alpha = rms·min(3/1, 0.8) = 0.8·rms.
        let rms = ((0.09f32 + 0.81 + 0.2025) / 3.0).sqrt();
        assert!((alpha - 0.8 * rms).abs() < 1e-6);
        let ints = integer_weights(&w, 2, alpha);
        assert_eq!(ints.len(), 3);
        // Quantized values are integer multiples of alpha within range.
        for (q, &i) in wq.data().iter().zip(&ints) {
            assert!((q - i as f32 * alpha).abs() < 1e-6);
            assert!((-2..=1).contains(&i));
        }
    }

    #[test]
    fn integer_weights_stay_in_range() {
        let w = Matrix::from_vec(1, 4, vec![10.0, -10.0, 0.1, -0.1]);
        for bits in [1u8, 2, 4, 8] {
            let (_, alpha) = quantize_weights(&w, bits);
            let ints = integer_weights(&w, bits, alpha);
            let smax = if bits == 1 {
                1
            } else {
                (1i32 << (bits - 1)) - 1
            };
            let smin = if bits == 1 { -1 } else { -(1i32 << (bits - 1)) };
            assert!(ints.iter().all(|&v| (smin..=smax).contains(&v)), "{bits}");
        }
    }

    #[test]
    fn sign_activation_binarizes_with_hardtanh_mask() {
        let mut z = Matrix::from_vec(1, 4, vec![0.5, -0.5, 3.0, -3.0]);
        let mask = quantize_activations(&mut z, ActSpec::Sign);
        assert_eq!(z.data(), &[1.0, -1.0, 1.0, -1.0]);
        assert_eq!(mask.data(), &[1.0, 1.0, STE_LEAK, STE_LEAK]);
    }

    #[test]
    fn hwgq_activation_clips_and_quantizes() {
        let act = ActSpec::Hwgq { bits: 2 };
        let alpha = act.alpha(); // 2/3
        let mut z = Matrix::from_vec(1, 4, vec![-1.0, 0.4, 1.1, 9.0]);
        let mask = quantize_activations(&mut z, act);
        assert_eq!(mask.data(), &[STE_LEAK, 1.0, 1.0, STE_LEAK]);
        assert!((z.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((z.get(0, 1) - alpha).abs() < 1e-6); // 0.4/0.667 → 1 level
        assert!((z.get(0, 2) - 2.0 * alpha).abs() < 1e-6);
        assert!((z.get(0, 3) - 3.0 * alpha).abs() < 1e-6); // clipped at max
    }

    #[test]
    fn input_quantization_levels_match_float_values() {
        for act in [
            ActSpec::Sign,
            ActSpec::Hwgq { bits: 2 },
            ActSpec::Hwgq { bits: 4 },
        ] {
            for p in [0u8, 1, 127, 128, 200, 255] {
                let f = quantize_input(&[p], act)[0];
                let level = input_level(p, act);
                let expect = match act {
                    ActSpec::Sign => {
                        if level == 1 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    _ => level as f32 / act.max_level() as f32,
                };
                assert!((f - expect).abs() < 1e-6, "{act:?} pixel {p}");
            }
        }
    }

    #[test]
    fn forward_eval_shapes_and_determinism() {
        let m = FloatMlp::init(spec2(), 1);
        let x = Matrix::from_fn(4, 6, |r, c| ((r + c) % 3) as f32 / 3.0);
        let y1 = m.forward_eval(&x);
        let y2 = m.forward_eval(&x);
        assert_eq!(y1, y2);
        assert_eq!(y1.rows(), 4);
        assert_eq!(y1.cols(), 3);
        assert_eq!(m.predict(&x).len(), 4);
    }
}
