//! Bit-exact software reference inference for a [`QuantMlp`].
//!
//! This walks the exact arithmetic the TNPU datapath performs — integer
//! MAC into a saturating 32-bit accumulator, optional fixed-point BN,
//! fixed-point activation, quantization — without modelling any timing.
//! `netpu-core`'s cycle-level model is tested for *bit-exact agreement*
//! with this module on every layer output, which is what ties the
//! latency model to a functionally correct datapath.

use crate::qmodel::{HiddenLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_arith::Fix;

/// Saturating 32-bit accumulation, as the ACCU submodule's 32-bit output
/// register behaves (§III.B.1: 32-bit output supports ≥ 2^16 inputs).
#[inline]
fn accumulate(acc: i32, term: i64) -> i32 {
    (acc as i64 + term).clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Computes one FC neuron's accumulator value: `Σ wᵢ·aᵢ (+ bias)`.
///
/// Activation inputs are unsigned levels for multi-bit precision and
/// bipolar ±1 for binary; weights are signed integers (bipolar ±1 for
/// binary). The XNOR path and the integer path produce identical sums by
/// construction (Table I), so one MAC loop serves both.
#[inline]
pub fn neuron_accumulate(weights: &[i32], inputs: &[i32], bias: Option<i32>) -> i32 {
    debug_assert_eq!(weights.len(), inputs.len());
    let mut acc: i32 = 0;
    for (&w, &a) in weights.iter().zip(inputs) {
        acc = accumulate(acc, w as i64 * a as i64);
    }
    if let Some(b) = bias {
        acc = accumulate(acc, b as i64);
    }
    acc
}

/// Applies the post-accumulator stages of one neuron: optional hardware
/// BN, then activation (+ quantization). Returns the next-layer level —
/// unsigned for multi-bit outputs, 0/1 for Sign (decode with
/// [`netpu_arith::binary::decode_bipolar`] before feeding a binary MAC).
pub fn neuron_post(
    layer_act: &LayerActivation,
    bn: Option<crate::qmodel::BnParams>,
    neuron: usize,
    acc: i32,
    out: netpu_arith::Precision,
) -> i32 {
    let mut x = Fix::from_i32(acc);
    if let Some(p) = bn {
        x = p.apply(x);
    }
    layer_act.apply(neuron, x, out)
}

/// Converts a layer's output levels into the value domain the next MAC
/// consumes: bipolar ±1 when the producing precision is binary, the
/// unsigned level otherwise.
pub fn to_mac_domain(levels: &[i32], precision: netpu_arith::Precision) -> Vec<i32> {
    if precision.is_binary() {
        levels
            .iter()
            .map(|&b| netpu_arith::binary::decode_bipolar(b as u8))
            .collect()
    } else {
        levels.to_vec()
    }
}

/// Runs the input layer over the raw 8-bit dataset inputs, producing
/// quantized levels at the first hidden precision.
pub fn run_input_layer(mlp: &QuantMlp, pixels: &[u8]) -> Vec<i32> {
    assert_eq!(pixels.len(), mlp.input.len, "input length mismatch");
    pixels
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let x = Fix::from_i32(p as i32);
            mlp.input.activation.apply(i, x, mlp.input.out_precision)
        })
        .collect()
}

/// Runs one hidden layer over the previous layer's output levels.
pub fn run_hidden_layer(layer: &HiddenLayer, prev_levels: &[i32]) -> Vec<i32> {
    let inputs = to_mac_domain(prev_levels, layer.in_precision);
    (0..layer.neurons)
        .map(|n| {
            let w = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let acc = neuron_accumulate(w, &inputs, bias);
            let bn = layer.bn.as_ref().map(|p| p[n]);
            neuron_post(&layer.activation, bn, n, acc, layer.out_precision)
        })
        .collect()
}

/// Runs the output layer, producing the raw per-class scores the MaxOut
/// stage compares. Scores are in the fixed-point domain when hardware BN
/// is configured; we return the raw fixed-point words so MaxOut
/// comparisons are exact.
pub fn run_output_layer(layer: &OutputLayer, prev_levels: &[i32]) -> Vec<Fix> {
    let inputs = to_mac_domain(prev_levels, layer.in_precision);
    (0..layer.neurons)
        .map(|n| {
            let w = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let acc = neuron_accumulate(w, &inputs, bias);
            let mut x = Fix::from_i32(acc);
            if let Some(p) = layer.bn.as_ref() {
                x = p[n].apply(x);
            }
            x
        })
        .collect()
}

/// The MaxOut classifier: index of the maximum score, lowest index on
/// ties (the hardware scans output neurons in order and only replaces the
/// running maximum on a strictly greater score).
pub fn maxout(scores: &[Fix]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Full inference result with per-layer observability for cross-checks.
#[derive(Clone, Debug, PartialEq)]
pub struct InferenceTrace {
    /// Quantized input-layer output levels.
    pub input_levels: Vec<i32>,
    /// Each hidden layer's output levels.
    pub hidden_levels: Vec<Vec<i32>>,
    /// Output-layer scores.
    pub scores: Vec<Fix>,
    /// Predicted class.
    pub class: usize,
}

/// Runs the full model on one example, keeping every intermediate.
pub fn infer_traced(mlp: &QuantMlp, pixels: &[u8]) -> InferenceTrace {
    let input_levels = run_input_layer(mlp, pixels);
    let mut hidden_levels = Vec::with_capacity(mlp.hidden.len());
    let mut cur = input_levels.clone();
    for layer in &mlp.hidden {
        cur = run_hidden_layer(layer, &cur);
        hidden_levels.push(cur.clone());
    }
    let scores = run_output_layer(&mlp.output, &cur);
    let class = maxout(&scores);
    InferenceTrace {
        input_levels,
        hidden_levels,
        scores,
        class,
    }
}

/// Runs the full model on one example, returning only the predicted class.
pub fn infer(mlp: &QuantMlp, pixels: &[u8]) -> usize {
    infer_traced(mlp, pixels).class
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmodel::{BnParams, InputLayer, QuantMlp};
    use netpu_arith::{Precision, QuantParams};

    fn tiny() -> QuantMlp {
        crate::qmodel::tests::tiny_model()
    }

    #[test]
    fn accumulate_saturates_at_i32() {
        assert_eq!(accumulate(i32::MAX, 10), i32::MAX);
        assert_eq!(accumulate(i32::MIN, -10), i32::MIN);
        assert_eq!(accumulate(5, -3), 2);
    }

    #[test]
    fn neuron_accumulate_dot_product() {
        assert_eq!(neuron_accumulate(&[1, -2, 3], &[4, 5, 6], None), 12);
        assert_eq!(neuron_accumulate(&[1, -2, 3], &[4, 5, 6], Some(-12)), 0);
    }

    #[test]
    fn binary_mac_matches_xnor_popcount() {
        // Weights/inputs ±1: the plain MAC must equal XNOR+popcount.
        let w = [1, -1, 1, 1, -1, -1, 1, -1];
        let a = [-1, -1, 1, -1, 1, -1, 1, 1];
        let wa_bits: u8 = w
            .iter()
            .enumerate()
            .map(|(i, &v)| netpu_arith::binary::encode_bipolar(v) << i)
            .sum();
        let aa_bits: u8 = a
            .iter()
            .enumerate()
            .map(|(i, &v)| netpu_arith::binary::encode_bipolar(v) << i)
            .sum();
        assert_eq!(
            neuron_accumulate(&w, &a, None),
            netpu_arith::binary::binary_dot8(wa_bits, aa_bits, 8)
        );
    }

    #[test]
    fn to_mac_domain_decodes_binary() {
        assert_eq!(to_mac_domain(&[1, 0, 1], Precision::W1), vec![1, -1, 1]);
        assert_eq!(to_mac_domain(&[1, 0, 3], Precision::W2), vec![1, 0, 3]);
    }

    #[test]
    fn maxout_prefers_first_on_tie() {
        let s = vec![Fix::from_i32(3), Fix::from_i32(5), Fix::from_i32(5)];
        assert_eq!(maxout(&s), 1);
        assert_eq!(maxout(&[Fix::ZERO]), 0);
    }

    #[test]
    fn tiny_model_end_to_end_is_deterministic() {
        let m = tiny();
        let trace = infer_traced(&m, &[10, 200, 30, 250]);
        assert_eq!(trace.input_levels.len(), 4);
        assert_eq!(trace.hidden_levels[0].len(), 3);
        assert_eq!(trace.scores.len(), 2);
        assert_eq!(infer(&m, &[10, 200, 30, 250]), trace.class);
        // Levels respect the layer's 2-bit output precision.
        assert!(trace.input_levels.iter().all(|&v| (0..=3).contains(&v)));
        assert!(trace.hidden_levels[0].iter().all(|&v| (0..=3).contains(&v)));
    }

    #[test]
    fn input_layer_thresholds_quantize_pixels() {
        let m = tiny();
        // Thresholds at 32/96/160 integer units → pixel 10 → level 0,
        // pixel 100 → level 2, pixel 250 → level 3.
        let levels = run_input_layer(&m, &[10, 100, 250, 0]);
        assert_eq!(levels, vec![0, 2, 3, 0]);
    }

    #[test]
    fn hardware_bn_changes_scores() {
        let mut m = tiny();
        m.output.bias = None;
        m.output.bn = Some(vec![
            BnParams {
                scale_q16: Fix::q16_scale_from_f64(1.0),
                offset: Fix::from_f64(100.0),
            },
            BnParams::IDENTITY,
        ]);
        m.validate().unwrap();
        let t = infer_traced(&m, &[0, 0, 0, 0]);
        // Class 0 got +100 offset: must win.
        assert_eq!(t.class, 0);
    }

    #[test]
    fn relu_quan_path_produces_unsigned_levels() {
        let mut m = tiny();
        m.hidden[0].activation = LayerActivation::Relu {
            quant: QuantParams::from_f64(0.5, 0.0),
        };
        m.validate().unwrap();
        let t = infer_traced(&m, &[255, 255, 255, 255]);
        assert!(t.hidden_levels[0].iter().all(|&v| (0..=3).contains(&v)));
    }

    #[test]
    fn fully_binary_model_runs() {
        // Build a 4-input, 2-hidden-neuron, 2-class BNN.
        let m = QuantMlp {
            name: "bnn".into(),
            input: InputLayer {
                len: 4,
                out_precision: Precision::W1,
                activation: LayerActivation::Sign {
                    thresholds: vec![Fix::from_i32(128); 4],
                },
            },
            hidden: vec![crate::qmodel::HiddenLayer {
                in_len: 4,
                neurons: 2,
                weight_precision: Precision::W1,
                in_precision: Precision::W1,
                out_precision: Precision::W1,
                weights: vec![1, -1, 1, -1, -1, 1, -1, 1],
                bias: Some(vec![0, 0]),
                bn: None,
                activation: LayerActivation::Sign {
                    thresholds: vec![Fix::ZERO; 2],
                },
            }],
            output: OutputLayer {
                in_len: 2,
                neurons: 2,
                weight_precision: Precision::W1,
                in_precision: Precision::W1,
                weights: vec![1, -1, -1, 1],
                bias: Some(vec![0, 0]),
                bn: None,
            },
        };
        m.validate().unwrap();
        assert!(m.is_fully_binary());
        // Pixels ≥128 → +1; pattern (+1,−1,+1,−1) matches neuron 0 → class 0.
        assert_eq!(infer(&m, &[200, 10, 200, 10]), 0);
        // Inverted pattern → class 1.
        assert_eq!(infer(&m, &[10, 200, 10, 200]), 1);
    }
}
