//! Bit-exact software reference inference for a [`QuantMlp`].
//!
//! This walks the exact arithmetic the TNPU datapath performs — integer
//! MAC into a saturating 32-bit accumulator, optional fixed-point BN,
//! fixed-point activation, quantization — without modelling any timing.
//! `netpu-core`'s cycle-level model is tested for *bit-exact agreement*
//! with this module on every layer output, which is what ties the
//! latency model to a functionally correct datapath.

use crate::qmodel::{HiddenLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_arith::{bitslice, Fix};

/// Saturating 32-bit accumulation, as the ACCU submodule's 32-bit output
/// register behaves (§III.B.1: 32-bit output supports ≥ 2^16 inputs).
/// Public so the translation validator (`netpu-check::symex`) can reuse
/// the exact ACCU semantics when probing output-score affines.
#[inline]
pub fn accumulate(acc: i32, term: i64) -> i32 {
    (acc as i64 + term).clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Computes one FC neuron's accumulator value: `Σ wᵢ·aᵢ (+ bias)`.
///
/// Activation inputs are unsigned levels for multi-bit precision and
/// bipolar ±1 for binary; weights are signed integers (bipolar ±1 for
/// binary). The XNOR path and the integer path produce identical sums by
/// construction (Table I), so one MAC loop serves both.
#[inline]
pub fn neuron_accumulate(weights: &[i32], inputs: &[i32], bias: Option<i32>) -> i32 {
    debug_assert_eq!(weights.len(), inputs.len());
    let mut acc: i32 = 0;
    for (&w, &a) in weights.iter().zip(inputs) {
        acc = accumulate(acc, w as i64 * a as i64);
    }
    if let Some(b) = bias {
        acc = accumulate(acc, b as i64);
    }
    acc
}

/// Applies the post-accumulator stages of one neuron: optional hardware
/// BN, then activation (+ quantization). Returns the next-layer level —
/// unsigned for multi-bit outputs, 0/1 for Sign (decode with
/// [`netpu_arith::binary::decode_bipolar`] before feeding a binary MAC).
pub fn neuron_post(
    layer_act: &LayerActivation,
    bn: Option<crate::qmodel::BnParams>,
    neuron: usize,
    acc: i32,
    out: netpu_arith::Precision,
) -> i32 {
    let mut x = Fix::from_i32(acc);
    if let Some(p) = bn {
        x = p.apply(x);
    }
    layer_act.apply(neuron, x, out)
}

/// Converts a layer's output levels into the value domain the next MAC
/// consumes: bipolar ±1 when the producing precision is binary, the
/// unsigned level otherwise.
pub fn to_mac_domain(levels: &[i32], precision: netpu_arith::Precision) -> Vec<i32> {
    if precision.is_binary() {
        levels
            .iter()
            .map(|&b| netpu_arith::binary::decode_bipolar(b as u8))
            .collect()
    } else {
        levels.to_vec()
    }
}

/// Runs the input layer over the raw 8-bit dataset inputs, producing
/// quantized levels at the first hidden precision.
pub fn run_input_layer(mlp: &QuantMlp, pixels: &[u8]) -> Vec<i32> {
    assert_eq!(pixels.len(), mlp.input.len, "input length mismatch");
    pixels
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let x = Fix::from_i32(p as i32);
            mlp.input.activation.apply(i, x, mlp.input.out_precision)
        })
        .collect()
}

/// Runs one hidden layer over the previous layer's output levels.
pub fn run_hidden_layer(layer: &HiddenLayer, prev_levels: &[i32]) -> Vec<i32> {
    let inputs = to_mac_domain(prev_levels, layer.in_precision);
    (0..layer.neurons)
        .map(|n| {
            let w = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let acc = neuron_accumulate(w, &inputs, bias);
            let bn = layer.bn.as_ref().map(|p| p[n]);
            neuron_post(&layer.activation, bn, n, acc, layer.out_precision)
        })
        .collect()
}

/// Runs the output layer, producing the raw per-class scores the MaxOut
/// stage compares. Scores are in the fixed-point domain when hardware BN
/// is configured; we return the raw fixed-point words so MaxOut
/// comparisons are exact.
pub fn run_output_layer(layer: &OutputLayer, prev_levels: &[i32]) -> Vec<Fix> {
    let inputs = to_mac_domain(prev_levels, layer.in_precision);
    (0..layer.neurons)
        .map(|n| {
            let w = &layer.weights[n * layer.in_len..(n + 1) * layer.in_len];
            let bias = layer.bias.as_ref().map(|b| b[n]);
            let acc = neuron_accumulate(w, &inputs, bias);
            let mut x = Fix::from_i32(acc);
            if let Some(p) = layer.bn.as_ref() {
                x = p[n].apply(x);
            }
            x
        })
        .collect()
}

/// The MaxOut classifier: index of the maximum score, lowest index on
/// ties (the hardware scans output neurons in order and only replaces the
/// running maximum on a strictly greater score).
pub fn maxout(scores: &[Fix]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Full inference result with per-layer observability for cross-checks.
#[derive(Clone, Debug, PartialEq)]
pub struct InferenceTrace {
    /// Quantized input-layer output levels.
    pub input_levels: Vec<i32>,
    /// Each hidden layer's output levels.
    pub hidden_levels: Vec<Vec<i32>>,
    /// Output-layer scores.
    pub scores: Vec<Fix>,
    /// Predicted class.
    pub class: usize,
}

/// Runs the full model on one example, keeping every intermediate.
pub fn infer_traced(mlp: &QuantMlp, pixels: &[u8]) -> InferenceTrace {
    let input_levels = run_input_layer(mlp, pixels);
    let mut hidden_levels = Vec::with_capacity(mlp.hidden.len());
    let mut cur = input_levels.clone();
    for layer in &mlp.hidden {
        cur = run_hidden_layer(layer, &cur);
        hidden_levels.push(cur.clone());
    }
    let scores = run_output_layer(&mlp.output, &cur);
    let class = maxout(&scores);
    InferenceTrace {
        input_levels,
        hidden_levels,
        scores,
        class,
    }
}

/// Runs the full model on one example, returning only the predicted class.
pub fn infer(mlp: &QuantMlp, pixels: &[u8]) -> usize {
    infer_traced(mlp, pixels).class
}

/// One layer's ±1 weight matrix packed as bipolar bit rows, 64 weights
/// per word, plus the tail masks the XNOR+popcount dot product needs.
struct PackedRows {
    words_per_row: usize,
    in_len: usize,
    /// `neurons × words_per_row` weight words, row-major.
    bits: Vec<u64>,
    /// Valid-lane mask per word of a row (all-ones except the tail).
    masks: Vec<u64>,
}

impl PackedRows {
    /// Packs a row-major ±1 weight matrix; `None` when any weight is not
    /// strictly bipolar (the popcount identity only holds for ±1).
    fn pack(weights: &[i32], neurons: usize, in_len: usize) -> Option<PackedRows> {
        if in_len == 0 {
            return None;
        }
        let words_per_row = in_len.div_ceil(64);
        let mut bits = Vec::with_capacity(neurons * words_per_row);
        let mut bipolar = true;
        for n in 0..neurons {
            for chunk in weights[n * in_len..(n + 1) * in_len].chunks(64) {
                let mut word = 0u64;
                for (i, &v) in chunk.iter().enumerate() {
                    bipolar &= v == 1 || v == -1;
                    word |= u64::from(v > 0) << i;
                }
                bits.push(word);
            }
        }
        if !bipolar {
            return None;
        }
        let masks = (0..words_per_row)
            .map(|j| {
                let lanes = (in_len - j * 64).min(64);
                if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                }
            })
            .collect();
        Some(PackedRows {
            words_per_row,
            in_len,
            bits,
            masks,
        })
    }

    /// `Σ wᵢ·aᵢ` for neuron `n` against the packed input bits, via the
    /// XNOR+popcount identity `2·popcount(XNOR) − n`. Exactly equal to
    /// [`neuron_accumulate`] without bias: every prefix of a ±1 dot
    /// product is bounded by `in_len`, so the saturating accumulator
    /// never clamps and plain summation is bit-exact.
    fn dot(&self, n: usize, input_bits: &[u64]) -> i32 {
        let row = &self.bits[n * self.words_per_row..(n + 1) * self.words_per_row];
        let mut ones: i64 = 0;
        for (j, &w) in row.iter().enumerate() {
            ones += i64::from((!(w ^ input_bits[j]) & self.masks[j]).count_ones());
        }
        (2 * ones - self.in_len as i64) as i32
    }
}

/// `true` when a layer's MAC is fully binary: bipolar inputs × bipolar
/// weights, the combination the XNOR path accelerates.
fn binary_mac(
    weight_precision: netpu_arith::Precision,
    in_precision: netpu_arith::Precision,
) -> bool {
    weight_precision.is_binary() && in_precision.is_binary()
}

/// A [`QuantMlp`] prepared for repeated inference: fully binary layers
/// carry their weights pre-packed for XNOR+popcount dot products, so the
/// per-frame cost of e.g. the W1A1 zoo models drops by over an order of
/// magnitude. Layers that are not fully binary (multi-bit weights or
/// activations) fall back to the general reference path unchanged.
///
/// Results are **bit-identical** to [`infer_traced`] — this is the same
/// arithmetic, not an approximation — which the module tests pin down
/// against the unpacked walk for both packed and fallback layers.
pub struct PackedMlp<'a> {
    mlp: &'a QuantMlp,
    hidden: Vec<Option<PackedRows>>,
    output: Option<PackedRows>,
}

impl<'a> PackedMlp<'a> {
    /// Packs every fully binary layer of `mlp` once.
    pub fn new(mlp: &'a QuantMlp) -> PackedMlp<'a> {
        let hidden = mlp
            .hidden
            .iter()
            .map(|l| {
                binary_mac(l.weight_precision, l.in_precision)
                    .then(|| PackedRows::pack(&l.weights, l.neurons, l.in_len))
                    .flatten()
            })
            .collect();
        let o = &mlp.output;
        let output = binary_mac(o.weight_precision, o.in_precision)
            .then(|| PackedRows::pack(&o.weights, o.neurons, o.in_len))
            .flatten();
        PackedMlp {
            mlp,
            hidden,
            output,
        }
    }

    /// [`infer_traced`] on the prepared model.
    pub fn infer_traced(&self, pixels: &[u8]) -> InferenceTrace {
        let input_levels = run_input_layer(self.mlp, pixels);
        let mut hidden_levels = Vec::with_capacity(self.mlp.hidden.len());
        let mut cur = input_levels.clone();
        for (layer, packed) in self.mlp.hidden.iter().zip(&self.hidden) {
            cur = match packed {
                Some(rows) => {
                    let inputs = to_mac_domain(&cur, layer.in_precision);
                    let x = netpu_arith::quant::pack_binary_channels(&inputs);
                    (0..layer.neurons)
                        .map(|n| {
                            let mut acc = rows.dot(n, &x);
                            if let Some(b) = layer.bias.as_ref() {
                                acc = accumulate(acc, b[n] as i64);
                            }
                            let bn = layer.bn.as_ref().map(|p| p[n]);
                            neuron_post(&layer.activation, bn, n, acc, layer.out_precision)
                        })
                        .collect()
                }
                None => run_hidden_layer(layer, &cur),
            };
            hidden_levels.push(cur.clone());
        }
        let o = &self.mlp.output;
        let scores = match &self.output {
            Some(rows) => {
                let inputs = to_mac_domain(&cur, o.in_precision);
                let x = netpu_arith::quant::pack_binary_channels(&inputs);
                (0..o.neurons)
                    .map(|n| {
                        let mut acc = rows.dot(n, &x);
                        if let Some(b) = o.bias.as_ref() {
                            acc = accumulate(acc, b[n] as i64);
                        }
                        let mut v = Fix::from_i32(acc);
                        if let Some(p) = o.bn.as_ref() {
                            v = p[n].apply(v);
                        }
                        v
                    })
                    .collect()
            }
            None => run_output_layer(o, &cur),
        };
        let class = maxout(&scores);
        InferenceTrace {
            input_levels,
            hidden_levels,
            scores,
            class,
        }
    }
}

/// One image's outputs from a bitsliced slab inference: exactly the
/// observable results of [`infer_traced`] (per-class scores and the
/// MaxOut class), without the per-layer intermediates.
#[derive(Clone, Debug, PartialEq)]
pub struct SlabOutput {
    /// Predicted class.
    pub class: usize,
    /// Output-layer scores, in the same fixed-point domain as
    /// [`InferenceTrace::scores`].
    pub scores: Vec<Fix>,
}

/// Accumulates neuron `n`'s bitsliced dot product into `counter`: one
/// XNOR of the channel's 64-image lane against the broadcast weight
/// bit per channel, weights drawn bit-serially from the packed rows.
#[inline]
fn slab_dot(rows: &PackedRows, n: usize, lanes: &[u64], counter: &mut bitslice::LaneCounter) {
    let row = &rows.bits[n * rows.words_per_row..(n + 1) * rows.words_per_row];
    counter.accumulate_xnor_row(lanes, row, rows.in_len);
}

/// A [`QuantMlp`] prepared for **batch-major bitsliced** inference:
/// the same input bit of up to 64 images shares one `u64` lane
/// ([`netpu_arith::bitslice`]), so a whole slab advances through each
/// layer with one XNOR + vertical popcount per weight bit instead of
/// 64 separate dot products.
///
/// Only *fully binary* models qualify ([`QuantMlp::is_fully_binary`]):
/// every MAC must be the ±1 XNOR pairing for the lane products to be
/// single bits. [`BitslicedMlp::new`] returns `None` otherwise and the
/// caller falls back to [`PackedMlp`].
///
/// Layout choices worth noting:
///
/// * The transpose-in shim runs **once**, on the input-layer levels.
///   Between binary layers no transpose is needed at all — neuron
///   `n`'s 64 per-image output bits *are* lane `n` of the next layer.
/// * Slabs shorter than 64 images need no masking: image slots
///   `>= batch` hold junk bits that are simply never read (per-image
///   results are independent by construction).
/// * Cycle *counts* are not modelled here — values only. Callers pair
///   the slab values with one phase-skipping cycle-model run (latency
///   is input-independent per model), the counts-vs-values split of
///   `netpu_core::batch`.
///
/// Results are **bit-identical** to [`infer_traced`]: the dot product
/// is the same Table I identity (a ±1 dot product is bounded by the
/// fan-in, so the saturating accumulator never clamps), and the
/// post-accumulator stages reuse [`neuron_post`] per image.
pub struct BitslicedMlp<'a> {
    mlp: &'a QuantMlp,
    hidden: Vec<PackedRows>,
    output: PackedRows,
}

impl<'a> BitslicedMlp<'a> {
    /// Packs every layer of a fully binary `mlp` once; `None` when any
    /// MAC is not the ±1 XNOR pairing.
    pub fn new(mlp: &'a QuantMlp) -> Option<BitslicedMlp<'a>> {
        if !mlp.is_fully_binary() {
            return None;
        }
        let hidden = mlp
            .hidden
            .iter()
            .map(|l| PackedRows::pack(&l.weights, l.neurons, l.in_len))
            .collect::<Option<Vec<_>>>()?;
        let output = PackedRows::pack(&mlp.output.weights, mlp.output.neurons, mlp.output.in_len)?;
        Some(BitslicedMlp {
            mlp,
            hidden,
            output,
        })
    }

    /// Runs one slab of 1..=64 frames through the whole model,
    /// returning per-image outputs in frame order.
    pub fn infer_slab(&self, frames: &[Vec<u8>]) -> Vec<SlabOutput> {
        let n = frames.len();
        assert!(
            (1..=bitslice::LANE_WIDTH).contains(&n),
            "a slab holds 1..=64 frames"
        );
        // Input layer per image (8-bit pixels cannot be bitsliced),
        // then one transpose-in: channel lanes of the first MAC.
        let rows: Vec<Vec<u64>> = frames
            .iter()
            .map(|px| netpu_arith::quant::pack_binary_channels(&run_input_layer(self.mlp, px)))
            .collect();
        let mut lanes = bitslice::transpose_in(&rows, self.mlp.input.len);

        for (layer, rows) in self.mlp.hidden.iter().zip(&self.hidden) {
            let mut out_lanes = vec![0u64; layer.neurons];
            for (ni, out) in out_lanes.iter_mut().enumerate() {
                let mut counter = bitslice::LaneCounter::new();
                slab_dot(rows, ni, &lanes, &mut counter);
                let bias = layer.bias.as_ref().map(|b| b[ni]);
                let bn = layer.bn.as_ref().map(|p| p[ni]);
                let sums = counter.signed_sums();
                for (i, &sum) in sums.iter().enumerate().take(n) {
                    let mut acc = sum;
                    if let Some(b) = bias {
                        acc = accumulate(acc, b as i64);
                    }
                    let level = neuron_post(&layer.activation, bn, ni, acc, layer.out_precision);
                    // The per-image Sign bit goes straight into lane
                    // `ni` of the next layer: no transpose needed.
                    *out |= u64::from(netpu_arith::binary::encode_bipolar(level)) << i;
                }
            }
            lanes = out_lanes;
        }

        let o = &self.mlp.output;
        let mut scores = vec![Vec::with_capacity(o.neurons); n];
        for ni in 0..o.neurons {
            let mut counter = bitslice::LaneCounter::new();
            slab_dot(&self.output, ni, &lanes, &mut counter);
            let bias = o.bias.as_ref().map(|b| b[ni]);
            let bn = o.bn.as_ref().map(|p| p[ni]);
            let sums = counter.signed_sums();
            for (i, s) in scores.iter_mut().enumerate() {
                let mut acc = sums[i];
                if let Some(b) = bias {
                    acc = accumulate(acc, b as i64);
                }
                let mut v = Fix::from_i32(acc);
                if let Some(p) = bn {
                    v = p.apply(v);
                }
                s.push(v);
            }
        }
        scores
            .into_iter()
            .map(|scores| SlabOutput {
                class: maxout(&scores),
                scores,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmodel::{BnParams, InputLayer, QuantMlp};
    use netpu_arith::{Precision, QuantParams};

    fn tiny() -> QuantMlp {
        crate::qmodel::tests::tiny_model()
    }

    #[test]
    fn accumulate_saturates_at_i32() {
        assert_eq!(accumulate(i32::MAX, 10), i32::MAX);
        assert_eq!(accumulate(i32::MIN, -10), i32::MIN);
        assert_eq!(accumulate(5, -3), 2);
    }

    #[test]
    fn neuron_accumulate_dot_product() {
        assert_eq!(neuron_accumulate(&[1, -2, 3], &[4, 5, 6], None), 12);
        assert_eq!(neuron_accumulate(&[1, -2, 3], &[4, 5, 6], Some(-12)), 0);
    }

    #[test]
    fn binary_mac_matches_xnor_popcount() {
        // Weights/inputs ±1: the plain MAC must equal XNOR+popcount.
        let w = [1, -1, 1, 1, -1, -1, 1, -1];
        let a = [-1, -1, 1, -1, 1, -1, 1, 1];
        let wa_bits: u8 = w
            .iter()
            .enumerate()
            .map(|(i, &v)| netpu_arith::binary::encode_bipolar(v) << i)
            .sum();
        let aa_bits: u8 = a
            .iter()
            .enumerate()
            .map(|(i, &v)| netpu_arith::binary::encode_bipolar(v) << i)
            .sum();
        assert_eq!(
            neuron_accumulate(&w, &a, None),
            netpu_arith::binary::binary_dot8(wa_bits, aa_bits, 8)
        );
    }

    #[test]
    fn to_mac_domain_decodes_binary() {
        assert_eq!(to_mac_domain(&[1, 0, 1], Precision::W1), vec![1, -1, 1]);
        assert_eq!(to_mac_domain(&[1, 0, 3], Precision::W2), vec![1, 0, 3]);
    }

    #[test]
    fn maxout_prefers_first_on_tie() {
        let s = vec![Fix::from_i32(3), Fix::from_i32(5), Fix::from_i32(5)];
        assert_eq!(maxout(&s), 1);
        assert_eq!(maxout(&[Fix::ZERO]), 0);
    }

    #[test]
    fn tiny_model_end_to_end_is_deterministic() {
        let m = tiny();
        let trace = infer_traced(&m, &[10, 200, 30, 250]);
        assert_eq!(trace.input_levels.len(), 4);
        assert_eq!(trace.hidden_levels[0].len(), 3);
        assert_eq!(trace.scores.len(), 2);
        assert_eq!(infer(&m, &[10, 200, 30, 250]), trace.class);
        // Levels respect the layer's 2-bit output precision.
        assert!(trace.input_levels.iter().all(|&v| (0..=3).contains(&v)));
        assert!(trace.hidden_levels[0].iter().all(|&v| (0..=3).contains(&v)));
    }

    #[test]
    fn input_layer_thresholds_quantize_pixels() {
        let m = tiny();
        // Thresholds at 32/96/160 integer units → pixel 10 → level 0,
        // pixel 100 → level 2, pixel 250 → level 3.
        let levels = run_input_layer(&m, &[10, 100, 250, 0]);
        assert_eq!(levels, vec![0, 2, 3, 0]);
    }

    #[test]
    fn hardware_bn_changes_scores() {
        let mut m = tiny();
        m.output.bias = None;
        m.output.bn = Some(vec![
            BnParams {
                scale_q16: Fix::q16_scale_from_f64(1.0),
                offset: Fix::from_f64(100.0),
            },
            BnParams::IDENTITY,
        ]);
        m.validate().unwrap();
        let t = infer_traced(&m, &[0, 0, 0, 0]);
        // Class 0 got +100 offset: must win.
        assert_eq!(t.class, 0);
    }

    #[test]
    fn relu_quan_path_produces_unsigned_levels() {
        let mut m = tiny();
        m.hidden[0].activation = LayerActivation::Relu {
            quant: QuantParams::from_f64(0.5, 0.0),
        };
        m.validate().unwrap();
        let t = infer_traced(&m, &[255, 255, 255, 255]);
        assert!(t.hidden_levels[0].iter().all(|&v| (0..=3).contains(&v)));
    }

    #[test]
    fn packed_mlp_is_bit_exact_on_binary_models() {
        // Every fully binary zoo model: the packed XNOR+popcount walk
        // must reproduce the unpacked reference trace exactly.
        for kind in [crate::zoo::ZooModel::SfcW1A1, crate::zoo::ZooModel::TfcW1A1] {
            let m = kind
                .build_untrained(17, crate::export::BnMode::Folded)
                .unwrap();
            let packed = PackedMlp::new(&m);
            for seed in 0u8..4 {
                let pixels: Vec<u8> = (0..m.input.len)
                    .map(|i| ((i as u32 * 31 + seed as u32 * 7) % 256) as u8)
                    .collect();
                assert_eq!(packed.infer_traced(&pixels), infer_traced(&m, &pixels));
            }
        }
    }

    #[test]
    fn packed_mlp_falls_back_on_multibit_layers() {
        // TfcW2A2 is not binary: no layer packs, results still agree.
        let m = crate::zoo::ZooModel::TfcW2A2
            .build_untrained(9, crate::export::BnMode::Hardware)
            .unwrap();
        let packed = PackedMlp::new(&m);
        assert!(packed.hidden.iter().all(Option::is_none));
        assert!(packed.output.is_none());
        let pixels: Vec<u8> = (0..784).map(|i| (i % 253) as u8).collect();
        assert_eq!(packed.infer_traced(&pixels), infer_traced(&m, &pixels));
    }

    #[test]
    fn packed_rows_reject_non_bipolar_weights() {
        assert!(PackedRows::pack(&[1, -1, 0, 1], 1, 4).is_none());
        assert!(PackedRows::pack(&[1, -1, 1, -1], 2, 2).is_some());
    }

    #[test]
    fn packed_dot_matches_neuron_accumulate_across_tail_widths() {
        // Row lengths straddling the 64-lane word boundary exercise the
        // tail masks.
        for in_len in [1usize, 63, 64, 65, 128, 130] {
            let weights: Vec<i32> = (0..in_len)
                .map(|i| if i % 3 == 0 { 1 } else { -1 })
                .collect();
            let inputs: Vec<i32> = (0..in_len)
                .map(|i| if i % 5 < 2 { 1 } else { -1 })
                .collect();
            let rows = PackedRows::pack(&weights, 1, in_len).unwrap();
            let x = netpu_arith::quant::pack_binary_channels(&inputs);
            assert_eq!(
                rows.dot(0, &x),
                neuron_accumulate(&weights, &inputs, None),
                "in_len={in_len}"
            );
        }
    }

    #[test]
    fn bitsliced_mlp_is_bit_exact_across_slab_widths() {
        // Batch sizes straddling the transpose/tail boundaries: every
        // image's class and scores must equal the per-frame reference.
        let m = crate::zoo::ZooModel::TfcW1A1
            .build_untrained(23, crate::export::BnMode::Folded)
            .unwrap();
        let sliced = BitslicedMlp::new(&m).expect("TfcW1A1 is fully binary");
        for batch in [1usize, 2, 17, 63, 64] {
            let frames: Vec<Vec<u8>> = (0..batch)
                .map(|f| {
                    (0..m.input.len)
                        .map(|i| ((i * 37 + f * 11 + 5) % 256) as u8)
                        .collect()
                })
                .collect();
            let outs = sliced.infer_slab(&frames);
            assert_eq!(outs.len(), batch);
            for (out, px) in outs.iter().zip(&frames) {
                let trace = infer_traced(&m, px);
                assert_eq!(out.class, trace.class, "batch {batch}");
                assert_eq!(out.scores, trace.scores, "batch {batch}");
            }
        }
    }

    #[test]
    fn bitsliced_mlp_rejects_multibit_models() {
        let m = crate::zoo::ZooModel::TfcW2A2
            .build_untrained(9, crate::export::BnMode::Hardware)
            .unwrap();
        assert!(BitslicedMlp::new(&m).is_none());
        // And the tiny mixed-precision model.
        assert!(BitslicedMlp::new(&tiny()).is_none());
    }

    #[test]
    fn fully_binary_model_runs() {
        // Build a 4-input, 2-hidden-neuron, 2-class BNN.
        let m = QuantMlp {
            name: "bnn".into(),
            input: InputLayer {
                len: 4,
                out_precision: Precision::W1,
                activation: LayerActivation::Sign {
                    thresholds: vec![Fix::from_i32(128); 4],
                },
            },
            hidden: vec![crate::qmodel::HiddenLayer {
                in_len: 4,
                neurons: 2,
                weight_precision: Precision::W1,
                in_precision: Precision::W1,
                out_precision: Precision::W1,
                weights: vec![1, -1, 1, -1, -1, 1, -1, 1],
                bias: Some(vec![0, 0]),
                bn: None,
                activation: LayerActivation::Sign {
                    thresholds: vec![Fix::ZERO; 2],
                },
            }],
            output: OutputLayer {
                in_len: 2,
                neurons: 2,
                weight_precision: Precision::W1,
                in_precision: Precision::W1,
                weights: vec![1, -1, -1, 1],
                bias: Some(vec![0, 0]),
                bn: None,
            },
        };
        m.validate().unwrap();
        assert!(m.is_fully_binary());
        // Pixels ≥128 → +1; pattern (+1,−1,+1,−1) matches neuron 0 → class 0.
        assert_eq!(infer(&m, &[200, 10, 200, 10]), 0);
        // Inverted pattern → class 1.
        assert_eq!(infer(&m, &[10, 200, 10, 200]), 1);
    }
}
