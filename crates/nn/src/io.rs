//! Model persistence: trained float checkpoints and hardware-ready
//! quantized models as JSON documents.
//!
//! JSON (rather than a bespoke binary format) because models are
//! edited, diffed, and inspected during development; the *deployment*
//! artifact is the compiled `.npu` loadable (`netpu-compiler::file`),
//! not the model file.

use crate::float::FloatMlp;
use crate::qmodel::QuantMlp;
use std::path::Path;

/// Persistence errors.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// The decoded model failed validation.
    Invalid(crate::qmodel::ModelError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Format(e) => write!(f, "format: {e}"),
            IoError::Invalid(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> IoError {
        IoError::Format(e)
    }
}

/// Saves a hardware-ready model as JSON.
pub fn save_quant(model: &QuantMlp, path: impl AsRef<Path>) -> Result<(), IoError> {
    std::fs::write(path, serde_json::to_vec_pretty(model)?)?;
    Ok(())
}

/// Loads and validates a hardware-ready model.
pub fn load_quant(path: impl AsRef<Path>) -> Result<QuantMlp, IoError> {
    let model: QuantMlp = serde_json::from_slice(&std::fs::read(path)?)?;
    model.validate().map_err(IoError::Invalid)?;
    Ok(model)
}

/// Saves a float training checkpoint as JSON.
pub fn save_float(model: &FloatMlp, path: impl AsRef<Path>) -> Result<(), IoError> {
    std::fs::write(path, serde_json::to_vec(model)?)?;
    Ok(())
}

/// Loads a float training checkpoint.
pub fn load_float(path: impl AsRef<Path>) -> Result<FloatMlp, IoError> {
    Ok(serde_json::from_slice(&std::fs::read(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::BnMode;
    use crate::zoo::ZooModel;

    #[test]
    fn quant_model_roundtrips() {
        let model = ZooModel::TfcW2A2
            .build_untrained(1, BnMode::Hardware)
            .unwrap();
        let path = std::env::temp_dir().join("netpu-io-test-quant.json");
        save_quant(&model, &path).unwrap();
        let restored = load_quant(&path).unwrap();
        assert_eq!(restored, model);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn float_checkpoint_roundtrips() {
        let fm = crate::float::FloatMlp::init(ZooModel::TfcW1A1.spec(), 2);
        let path = std::env::temp_dir().join("netpu-io-test-float.json");
        save_float(&fm, &path).unwrap();
        let restored = load_float(&path).unwrap();
        assert_eq!(restored.spec, fm.spec);
        assert_eq!(restored.layers[0].w, fm.layers[0].w);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn invalid_models_are_rejected_on_load() {
        let mut model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        // Corrupt: wrong weight count.
        model.hidden[0].weights.pop();
        let path = std::env::temp_dir().join("netpu-io-test-bad.json");
        std::fs::write(&path, serde_json::to_vec(&model).unwrap()).unwrap();
        assert!(matches!(load_quant(&path), Err(IoError::Invalid(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn garbage_files_are_rejected() {
        let path = std::env::temp_dir().join("netpu-io-test-garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(matches!(load_quant(&path), Err(IoError::Format(_))));
        assert!(matches!(
            load_quant("/nonexistent/x.json"),
            Err(IoError::Io(_))
        ));
        let _ = std::fs::remove_file(path);
    }
}
