//! The hardware-ready quantized MLP description.
//!
//! A [`QuantMlp`] is the contract between the training toolkit, the model
//! compiler (`netpu-compiler`), and the accelerator model (`netpu-core`):
//! integer weights, per-neuron threshold/BN/quantizer parameters in the
//! 32-bit fixed-point stream format, and per-layer precision settings. It
//! mirrors the paper's three layer kinds — Input Layer (quantizes the
//! high-precision dataset inputs), Hidden/FC Layers, and Output Layer
//! (MaxOut classification) — exactly as the LPU layer settings encode
//! them (§III.B.2 Layer Initialization).

use netpu_arith::activation::{ActivationKind, SignActivation};
use netpu_arith::{Fix, Precision, QuantParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-neuron batch-normalization parameters in hardware form
/// (`y = x·scale + offset`; two 32-bit parameter words).
///
/// The scale word uses the Q16.16 interpretation ([`Fix::mul_q16`])
/// because folded BN scales are typically ~10⁻³, far below the Q32.5
/// datapath's resolution; the offset is an ordinary Q32.5 word.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BnParams {
    /// Multiplicative term `γ·s/√(σ²+ε)` as a Q16.16 word (`s` being the
    /// product of the layer's weight and activation scales).
    pub scale_q16: i32,
    /// Additive term `β − γ(x̄−b)/√(σ²+ε)` as a Q32.5 word.
    pub offset: Fix,
}

impl BnParams {
    /// The identity transform.
    pub const IDENTITY: BnParams = BnParams {
        scale_q16: 1 << 16,
        offset: Fix::ZERO,
    };

    /// Applies the BN transform to a fixed-point value.
    #[inline]
    pub fn apply(&self, x: Fix) -> Fix {
        x.mul_q16(self.scale_q16).sat_add(self.offset)
    }
}

/// A layer's activation stage with its trained per-neuron parameters.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum LayerActivation {
    /// ReLU followed by the QUAN submodule.
    Relu {
        /// Re-quantization applied after the activation.
        quant: QuantParams,
    },
    /// Piecewise-linear Sigmoid followed by the QUAN submodule.
    Sigmoid {
        /// Re-quantization applied after the activation.
        quant: QuantParams,
    },
    /// Tanh (via the shared sigmoid block) followed by the QUAN submodule.
    Tanh {
        /// Re-quantization applied after the activation.
        quant: QuantParams,
    },
    /// BNN Sign with one folded-BN threshold per neuron; bypasses QUAN.
    Sign {
        /// One threshold per neuron.
        thresholds: Vec<Fix>,
    },
    /// HWGQ Multi-Threshold with `2^out − 1` thresholds per neuron;
    /// bypasses QUAN.
    MultiThreshold {
        /// `neurons × (2^out − 1)` thresholds, row-major per neuron, each
        /// row sorted non-decreasing.
        thresholds: Vec<Vec<Fix>>,
    },
}

impl LayerActivation {
    /// The activation selector this stage drives into the ACTIV submodule.
    pub fn kind(&self) -> ActivationKind {
        match self {
            LayerActivation::Relu { .. } => ActivationKind::Relu,
            LayerActivation::Sigmoid { .. } => ActivationKind::Sigmoid,
            LayerActivation::Tanh { .. } => ActivationKind::Tanh,
            LayerActivation::Sign { .. } => ActivationKind::Sign,
            LayerActivation::MultiThreshold { .. } => ActivationKind::MultiThreshold,
        }
    }

    /// Applies the activation (and re-quantization, if any) for `neuron`,
    /// producing the unsigned output level — or the bipolar bit for Sign,
    /// reported as 0/1.
    pub fn apply(&self, neuron: usize, x: Fix, out: Precision) -> i32 {
        match self {
            LayerActivation::Relu { quant } => quant.apply(netpu_arith::activation::relu(x), out),
            LayerActivation::Sigmoid { quant } => {
                quant.apply(netpu_arith::activation::sigmoid(x), out)
            }
            LayerActivation::Tanh { quant } => quant.apply(netpu_arith::activation::tanh(x), out),
            LayerActivation::Sign { thresholds } => {
                i32::from(SignActivation::new(thresholds[neuron]).apply(x))
            }
            LayerActivation::MultiThreshold { thresholds } => {
                // Constructed rows are validated at model validation time;
                // count check here is a debug aid only.
                debug_assert_eq!(thresholds[neuron].len(), out.multi_threshold_count());
                thresholds[neuron].partition_point(|&t| t <= x) as i32
            }
        }
    }
}

/// The Input Layer: quantizes each high-precision dataset input down to
/// the first hidden layer's precision. One "neuron" per input element;
/// no weights (Fig. 3 yellow path bypasses MUL/ACCU/BN).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct InputLayer {
    /// Number of dataset inputs (e.g. 784 pixels).
    pub len: usize,
    /// Precision the inputs are quantized to (the first hidden layer's
    /// activation input precision).
    pub out_precision: Precision,
    /// Quantizing activation (Sign / Multi-Threshold / QUAN path).
    pub activation: LayerActivation,
}

/// A Hidden (fully connected) layer.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct HiddenLayer {
    /// Fan-in of every neuron.
    pub in_len: usize,
    /// Number of neurons.
    pub neurons: usize,
    /// Weight quantization precision.
    pub weight_precision: Precision,
    /// Incoming-activation precision.
    pub in_precision: Precision,
    /// Outgoing-activation precision.
    pub out_precision: Precision,
    /// Row-major `neurons × in_len` integer weights in the signed range
    /// of `weight_precision` (bipolar ±1 for 1-bit).
    pub weights: Vec<i32>,
    /// Per-neuron integer bias (the ACCU's 8-bit Bias Input), present
    /// exactly when BN is folded into weight/bias (Eq. 2).
    pub bias: Option<Vec<i32>>,
    /// Per-neuron hardware BN parameters, present exactly when BN is NOT
    /// folded.
    pub bn: Option<Vec<BnParams>>,
    /// Activation stage.
    pub activation: LayerActivation,
}

/// The Output Layer: a fully connected layer whose raw (post-BN) scores
/// feed the MaxOut classifier (Fig. 3 pink path bypasses ACTIV/QUAN).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct OutputLayer {
    /// Fan-in of every output neuron.
    pub in_len: usize,
    /// Number of classes.
    pub neurons: usize,
    /// Weight quantization precision.
    pub weight_precision: Precision,
    /// Incoming-activation precision.
    pub in_precision: Precision,
    /// Row-major `neurons × in_len` integer weights.
    pub weights: Vec<i32>,
    /// Per-neuron integer bias when BN is folded.
    pub bias: Option<Vec<i32>>,
    /// Per-neuron hardware BN parameters when BN is not folded.
    pub bn: Option<Vec<BnParams>>,
}

/// A complete hardware-ready quantized MLP.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct QuantMlp {
    /// Human-readable model name (e.g. `"SFC-w1a1"`).
    pub name: String,
    /// The input (quantization) layer.
    pub input: InputLayer,
    /// Hidden FC layers in order.
    pub hidden: Vec<HiddenLayer>,
    /// The output layer.
    pub output: OutputLayer,
}

/// Model-structure validation failures.
#[derive(Clone, PartialEq, Debug)]
pub enum ModelError {
    /// A layer's fan-in does not match the previous layer's width.
    DimensionMismatch {
        /// Index in the hidden-layer list (`hidden.len()` = output layer).
        layer: usize,
        /// Expected fan-in.
        expected: usize,
        /// Declared fan-in.
        got: usize,
    },
    /// The weight array length does not equal `neurons × in_len`.
    WeightShape {
        /// Offending layer index.
        layer: usize,
    },
    /// A weight value lies outside the signed range of its precision.
    WeightRange {
        /// Offending layer index.
        layer: usize,
        /// The offending value.
        value: i32,
    },
    /// Precision pairing violates the XNOR rule: when one of input and
    /// weight precision is 1-bit the other must be too (§III.B.1) —
    /// unless the layer runs on the integer path with 1-bit weights
    /// promoted into 8-bit lanes (the LFC-w1a2 case), which is expressed
    /// by a non-binary `in_precision`; a binary input with multi-bit
    /// weights has no hardware datapath.
    BinaryPairing {
        /// Offending layer index.
        layer: usize,
    },
    /// Both or neither of `bias` (folded BN) and `bn` (hardware BN) set.
    BnConfig {
        /// Offending layer index.
        layer: usize,
    },
    /// A folded bias exceeds the ACCU's 8-bit bias port.
    BiasRange {
        /// Offending layer index.
        layer: usize,
        /// The offending value.
        value: i32,
    },
    /// Threshold row count or length does not match the layer geometry.
    ThresholdShape {
        /// Offending layer index.
        layer: usize,
    },
    /// A multi-threshold row is not sorted.
    ThresholdOrder {
        /// Offending layer index.
        layer: usize,
        /// Offending neuron.
        neuron: usize,
    },
    /// Layer width exceeds the architecture's 8192 input-length /
    /// neuron-count ceiling (§III.B.2).
    TooWide {
        /// Offending layer index.
        layer: usize,
        /// The offending width.
        width: usize,
    },
    /// Sign output must be 1-bit; Multi-Threshold must be ≥1-bit and the
    /// declared output precision must match the threshold count.
    ActivationPrecision {
        /// Offending layer index.
        layer: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DimensionMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer {layer}: fan-in {got} does not match previous width {expected}"
            ),
            ModelError::WeightShape { layer } => {
                write!(f, "layer {layer}: weight array shape mismatch")
            }
            ModelError::WeightRange { layer, value } => {
                write!(f, "layer {layer}: weight {value} out of precision range")
            }
            ModelError::BinaryPairing { layer } => {
                write!(f, "layer {layer}: binary inputs require binary weights")
            }
            ModelError::BnConfig { layer } => write!(
                f,
                "layer {layer}: exactly one of folded bias and hardware BN must be configured"
            ),
            ModelError::BiasRange { layer, value } => {
                write!(f, "layer {layer}: bias {value} exceeds the 8-bit bias port")
            }
            ModelError::ThresholdShape { layer } => {
                write!(f, "layer {layer}: threshold geometry mismatch")
            }
            ModelError::ThresholdOrder { layer, neuron } => {
                write!(f, "layer {layer} neuron {neuron}: thresholds not sorted")
            }
            ModelError::TooWide { layer, width } => {
                write!(f, "layer {layer}: width {width} exceeds the 8192 ceiling")
            }
            ModelError::ActivationPrecision { layer } => {
                write!(f, "layer {layer}: activation/out-precision mismatch")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Maximum input length and neuron count per layer (§III.B.2: buffer
/// geometry supports 8192 at 8-bit precision).
pub const MAX_LAYER_WIDTH: usize = 8192;

fn check_activation(
    layer: usize,
    act: &LayerActivation,
    neurons: usize,
    out: Precision,
) -> Result<(), ModelError> {
    match act {
        LayerActivation::Sign { thresholds } => {
            if out != Precision::W1 {
                return Err(ModelError::ActivationPrecision { layer });
            }
            if thresholds.len() != neurons {
                return Err(ModelError::ThresholdShape { layer });
            }
        }
        LayerActivation::MultiThreshold { thresholds } => {
            if thresholds.len() != neurons {
                return Err(ModelError::ThresholdShape { layer });
            }
            let want = out.multi_threshold_count();
            for (n, row) in thresholds.iter().enumerate() {
                if row.len() != want {
                    return Err(ModelError::ThresholdShape { layer });
                }
                if row.windows(2).any(|w| w[0] > w[1]) {
                    return Err(ModelError::ThresholdOrder { layer, neuron: n });
                }
            }
        }
        LayerActivation::Relu { .. }
        | LayerActivation::Sigmoid { .. }
        | LayerActivation::Tanh { .. } => {
            if out == Precision::W1 {
                // The QUAN path produces unsigned levels; 1-bit outputs
                // must come from Sign so downstream layers get ±1.
                return Err(ModelError::ActivationPrecision { layer });
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // mirrors the FC layer's field set
fn check_fc(
    layer: usize,
    in_len: usize,
    neurons: usize,
    weights: &[i32],
    wp: Precision,
    ip: Precision,
    bias: &Option<Vec<i32>>,
    bn: &Option<Vec<BnParams>>,
) -> Result<(), ModelError> {
    if in_len > MAX_LAYER_WIDTH {
        return Err(ModelError::TooWide {
            layer,
            width: in_len,
        });
    }
    if neurons > MAX_LAYER_WIDTH {
        return Err(ModelError::TooWide {
            layer,
            width: neurons,
        });
    }
    if weights.len() != neurons * in_len {
        return Err(ModelError::WeightShape { layer });
    }
    // Branchless validity fold so the scan vectorises (models carry
    // millions of weights); the offending value is recovered in a second
    // pass only on the failure path.
    let in_range = |w: i32| {
        if wp.is_binary() {
            w == 1 || w == -1
        } else {
            (wp.signed_min()..=wp.signed_max()).contains(&w)
        }
    };
    if !weights.iter().fold(true, |ok, &w| ok & in_range(w)) {
        let value = *weights
            .iter()
            .find(|&&w| !in_range(w))
            .expect("fold failed");
        return Err(ModelError::WeightRange { layer, value });
    }
    // XNOR pairing: binary activations require binary weights (a binary
    // activation lane carries 8 channels the integer path cannot read).
    // Binary weights with multi-bit activations are legal: the compiler
    // promotes them onto the integer path (LFC-w1a2).
    if ip.is_binary() && !wp.is_binary() {
        return Err(ModelError::BinaryPairing { layer });
    }
    match (bias, bn) {
        (Some(_), Some(_)) | (None, None) => return Err(ModelError::BnConfig { layer }),
        (Some(b), None) => {
            if b.len() != neurons {
                return Err(ModelError::ThresholdShape { layer });
            }
            for &v in b {
                if !(-128..=127).contains(&v) {
                    return Err(ModelError::BiasRange { layer, value: v });
                }
            }
        }
        (None, Some(p)) => {
            if p.len() != neurons {
                return Err(ModelError::ThresholdShape { layer });
            }
        }
    }
    Ok(())
}

impl QuantMlp {
    /// Validates the whole model: dimensions, precision pairing, weight
    /// and bias ranges, threshold geometry, and architecture ceilings.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.input.len > MAX_LAYER_WIDTH {
            return Err(ModelError::TooWide {
                layer: 0,
                width: self.input.len,
            });
        }
        check_activation(
            0,
            &self.input.activation,
            self.input.len,
            self.input.out_precision,
        )?;

        let mut prev_width = self.input.len;
        let mut prev_prec = self.input.out_precision;
        for (i, h) in self.hidden.iter().enumerate() {
            let layer = i + 1;
            if h.in_len != prev_width {
                return Err(ModelError::DimensionMismatch {
                    layer,
                    expected: prev_width,
                    got: h.in_len,
                });
            }
            if h.in_precision != prev_prec {
                return Err(ModelError::ActivationPrecision { layer });
            }
            check_fc(
                layer,
                h.in_len,
                h.neurons,
                &h.weights,
                h.weight_precision,
                h.in_precision,
                &h.bias,
                &h.bn,
            )?;
            check_activation(layer, &h.activation, h.neurons, h.out_precision)?;
            prev_width = h.neurons;
            prev_prec = h.out_precision;
        }

        let layer = self.hidden.len() + 1;
        if self.output.in_len != prev_width {
            return Err(ModelError::DimensionMismatch {
                layer,
                expected: prev_width,
                got: self.output.in_len,
            });
        }
        if self.output.in_precision != prev_prec {
            return Err(ModelError::ActivationPrecision { layer });
        }
        check_fc(
            layer,
            self.output.in_len,
            self.output.neurons,
            &self.output.weights,
            self.output.weight_precision,
            self.output.in_precision,
            &self.output.bias,
            &self.output.bn,
        )
    }

    /// Total number of layers as the hardware counts them (input + hidden
    /// + output).
    pub fn layer_count(&self) -> usize {
        self.hidden.len() + 2
    }

    /// Total weight count across FC layers.
    pub fn weight_count(&self) -> usize {
        self.hidden.iter().map(|h| h.weights.len()).sum::<usize>() + self.output.weights.len()
    }

    /// `true` when every FC layer uses the XNOR (both-1-bit) datapath.
    pub fn is_fully_binary(&self) -> bool {
        self.hidden
            .iter()
            .map(|h| (h.in_precision, h.weight_precision))
            .chain(std::iter::once((
                self.output.in_precision,
                self.output.weight_precision,
            )))
            .all(|(i, w)| i.is_binary() && w.is_binary())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A tiny but fully valid 2-class model used across the crate's tests.
    pub(crate) fn tiny_model() -> QuantMlp {
        let mt_row = vec![Fix::from_i32(-1), Fix::from_i32(0), Fix::from_i32(1)];
        QuantMlp {
            name: "tiny".into(),
            input: InputLayer {
                len: 4,
                out_precision: Precision::W2,
                activation: LayerActivation::MultiThreshold {
                    thresholds: vec![
                        vec![Fix::from_i32(32), Fix::from_i32(96), Fix::from_i32(160)];
                        4
                    ],
                },
            },
            hidden: vec![HiddenLayer {
                in_len: 4,
                neurons: 3,
                weight_precision: Precision::W2,
                in_precision: Precision::W2,
                out_precision: Precision::W2,
                weights: vec![1, -1, 0, 1, -2, 1, 1, 0, 0, 1, -1, -1],
                bias: Some(vec![0, 1, -1]),
                bn: None,
                activation: LayerActivation::MultiThreshold {
                    thresholds: vec![mt_row.clone(), mt_row.clone(), mt_row],
                },
            }],
            output: OutputLayer {
                in_len: 3,
                neurons: 2,
                weight_precision: Precision::W2,
                in_precision: Precision::W2,
                weights: vec![1, -1, 1, -1, 1, 0],
                bias: Some(vec![0, 0]),
                bn: None,
            },
        }
    }

    #[test]
    fn tiny_model_validates() {
        tiny_model().validate().unwrap();
        assert_eq!(tiny_model().layer_count(), 3);
        assert_eq!(tiny_model().weight_count(), 18);
        assert!(!tiny_model().is_fully_binary());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let mut m = tiny_model();
        m.output.in_len = 5;
        m.output.weights = vec![0; 10];
        assert!(matches!(
            m.validate(),
            Err(ModelError::DimensionMismatch {
                layer: 2,
                expected: 3,
                got: 5
            })
        ));
    }

    #[test]
    fn weight_range_checked_per_precision() {
        let mut m = tiny_model();
        m.hidden[0].weights[0] = 2; // W2 signed max is 1
        assert!(matches!(
            m.validate(),
            Err(ModelError::WeightRange { layer: 1, value: 2 })
        ));
    }

    #[test]
    fn binary_weights_must_be_bipolar() {
        let mut m = tiny_model();
        m.hidden[0].weight_precision = Precision::W1;
        m.hidden[0].weights = vec![1, -1, 0, 1, -1, 1, 1, -1, 1, 1, -1, -1];
        assert!(matches!(
            m.validate(),
            Err(ModelError::WeightRange { layer: 1, value: 0 })
        ));
    }

    #[test]
    fn binary_inputs_require_binary_weights() {
        let mut m = tiny_model();
        // Make the input layer emit 1-bit, keep hidden weights at 2-bit.
        m.input.out_precision = Precision::W1;
        m.input.activation = LayerActivation::Sign {
            thresholds: vec![Fix::from_i32(128); 4],
        };
        m.hidden[0].in_precision = Precision::W1;
        assert!(matches!(
            m.validate(),
            Err(ModelError::BinaryPairing { layer: 1 })
        ));
    }

    #[test]
    fn binary_weights_with_multibit_inputs_are_legal() {
        // The LFC-w1a2 configuration: 1-bit weights on the integer path.
        let mut m = tiny_model();
        m.hidden[0].weight_precision = Precision::W1;
        m.hidden[0].weights = vec![1, -1, 1, 1, -1, 1, 1, -1, 1, 1, -1, -1];
        m.validate().unwrap();
    }

    #[test]
    fn bn_and_bias_are_mutually_exclusive() {
        let mut m = tiny_model();
        m.hidden[0].bn = Some(vec![BnParams::IDENTITY; 3]);
        assert!(matches!(
            m.validate(),
            Err(ModelError::BnConfig { layer: 1 })
        ));
        m.hidden[0].bias = None;
        m.validate().unwrap();
        m.hidden[0].bn = None;
        assert!(matches!(
            m.validate(),
            Err(ModelError::BnConfig { layer: 1 })
        ));
    }

    #[test]
    fn bias_limited_to_accu_port_width() {
        let mut m = tiny_model();
        m.hidden[0].bias = Some(vec![0, 200, 0]);
        assert!(matches!(
            m.validate(),
            Err(ModelError::BiasRange {
                layer: 1,
                value: 200
            })
        ));
    }

    #[test]
    fn threshold_geometry_checked() {
        let mut m = tiny_model();
        if let LayerActivation::MultiThreshold { thresholds } = &mut m.hidden[0].activation {
            thresholds[1].pop();
        }
        assert!(matches!(
            m.validate(),
            Err(ModelError::ThresholdShape { layer: 1 })
        ));
    }

    #[test]
    fn unsorted_thresholds_rejected() {
        let mut m = tiny_model();
        if let LayerActivation::MultiThreshold { thresholds } = &mut m.hidden[0].activation {
            thresholds[2] = vec![Fix::from_i32(5), Fix::from_i32(1), Fix::from_i32(9)];
        }
        assert!(matches!(
            m.validate(),
            Err(ModelError::ThresholdOrder {
                layer: 1,
                neuron: 2
            })
        ));
    }

    #[test]
    fn width_ceiling_enforced() {
        let mut m = tiny_model();
        m.hidden[0].neurons = 9000;
        m.hidden[0].weights = vec![0; 9000 * 4];
        assert!(matches!(
            m.validate(),
            Err(ModelError::TooWide {
                layer: 1,
                width: 9000
            })
        ));
    }

    #[test]
    fn sign_output_must_be_one_bit() {
        let mut m = tiny_model();
        m.hidden[0].activation = LayerActivation::Sign {
            thresholds: vec![Fix::ZERO; 3],
        };
        // out_precision still W2 → invalid.
        assert!(matches!(
            m.validate(),
            Err(ModelError::ActivationPrecision { layer: 1 })
        ));
    }

    #[test]
    fn in_precision_must_chain() {
        let mut m = tiny_model();
        m.hidden[0].in_precision = Precision::W4;
        assert!(matches!(
            m.validate(),
            Err(ModelError::ActivationPrecision { layer: 1 })
        ));
    }
}
