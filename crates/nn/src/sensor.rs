//! Synthetic smart-sensor waveform dataset.
//!
//! The paper's motivating deployments are *IoT systems, wearable
//! devices, or smart sensors* (§I) — workloads that are windows of
//! sensor samples, not images. This module provides such a task: a
//! 64-sample single-channel window containing one of four waveform
//! signatures (sine, square, transient spike, or noise), quantized to
//! the accelerator's 8-bit input range. It exercises small MLPs of the
//! shape an always-on sensor front-end would run.

use crate::dataset::{Dataset, Example};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples per window.
pub const WINDOW: usize = 64;
/// Number of waveform classes.
pub const SENSOR_CLASSES: usize = 4;

/// Waveform classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Waveform {
    /// A sine of random frequency/phase.
    Sine,
    /// A square wave of random frequency/phase.
    Square,
    /// A baseline with one sharp transient.
    Spike,
    /// Band-limited noise.
    Noise,
}

impl Waveform {
    /// Class label (0–3).
    pub fn label(self) -> u8 {
        match self {
            Waveform::Sine => 0,
            Waveform::Square => 1,
            Waveform::Spike => 2,
            Waveform::Noise => 3,
        }
    }

    fn from_label(label: usize) -> Waveform {
        match label % SENSOR_CLASSES {
            0 => Waveform::Sine,
            1 => Waveform::Square,
            2 => Waveform::Spike,
            _ => Waveform::Noise,
        }
    }
}

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SensorConfig {
    /// Additive measurement-noise amplitude (fraction of full scale).
    pub noise: f64,
    /// Frequency range in cycles per window for periodic classes.
    pub cycles: (f64, f64),
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig {
            noise: 0.06,
            cycles: (2.0, 6.0),
        }
    }
}

fn quantize(v: f64) -> u8 {
    // Map [-1, 1] full scale onto the 8-bit ADC range.
    (((v.clamp(-1.0, 1.0) + 1.0) / 2.0) * 255.0).round() as u8
}

fn render(rng: &mut StdRng, wf: Waveform, cfg: &SensorConfig) -> Vec<u8> {
    let freq = rng.gen_range(cfg.cycles.0..cfg.cycles.1);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let amp = rng.gen_range(0.6..1.0);
    let spike_at = rng.gen_range(4..WINDOW - 4);
    (0..WINDOW)
        .map(|i| {
            let t = i as f64 / WINDOW as f64;
            let clean = match wf {
                Waveform::Sine => amp * (std::f64::consts::TAU * freq * t + phase).sin(),
                Waveform::Square => amp * (std::f64::consts::TAU * freq * t + phase).sin().signum(),
                Waveform::Spike => {
                    let d = i as f64 - spike_at as f64;
                    0.1 + amp * (-d * d / 2.0).exp()
                }
                Waveform::Noise => rng.gen_range(-0.5..0.5),
            };
            let noise = if cfg.noise > 0.0 {
                rng.gen_range(-cfg.noise..cfg.noise)
            } else {
                0.0
            };
            quantize(clean + noise)
        })
        .collect()
}

/// Generates `n` windows with balanced classes, deterministic in `seed`.
pub fn generate(n: usize, seed: u64, cfg: &SensorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E45_0001);
    let examples = (0..n)
        .map(|i| {
            let wf = Waveform::from_label(i);
            Example {
                pixels: render(&mut rng, wf, cfg),
                label: wf.label(),
            }
        })
        .collect();
    Dataset { examples }
}

/// Standard train/test split with disjoint seeds.
pub fn splits(train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
    let cfg = SensorConfig::default();
    (
        generate(train_n, seed, &cfg),
        generate(test_n, seed.wrapping_add(0x0BAD_CAFE), &cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let cfg = SensorConfig::default();
        let a = generate(40, 9, &cfg);
        let b = generate(40, 9, &cfg);
        assert_eq!(a.examples, b.examples);
        let mut counts = [0usize; SENSOR_CLASSES];
        for e in &a.examples {
            assert_eq!(e.pixels.len(), WINDOW);
            counts[e.label as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn classes_have_distinct_signatures() {
        let cfg = SensorConfig {
            noise: 0.0,
            ..SensorConfig::default()
        };
        let ds = generate(4, 3, &cfg);
        // Sines pass through mid-range gradually; squares jump across it.
        let sine = &ds.examples[0].pixels;
        let square = &ds.examples[1].pixels;
        let mid = |w: &[u8]| w.iter().filter(|&&v| (96..=160).contains(&v)).count();
        assert!(
            mid(sine) > mid(square) + 8,
            "sine mid {} vs square mid {}",
            mid(sine),
            mid(square)
        );
        // Spikes are mostly flat with a narrow peak.
        let spike = &ds.examples[2].pixels;
        let peak = spike.iter().copied().max().unwrap();
        let above_half = spike.iter().filter(|&&v| v > peak / 2 + 64).count();
        assert!(above_half < 12, "spike too wide: {above_half}");
    }

    #[test]
    fn sensor_task_is_learnable_by_a_tiny_quantized_mlp() {
        use crate::float::{ActSpec, FloatMlp, LayerSpec, MlpSpec};
        use crate::train::{accuracy, train, TrainConfig};
        let (train_ds, test_ds) = splits(600, 200, 4);
        let spec = MlpSpec {
            name: "sensor".into(),
            input_len: WINDOW,
            input_act: ActSpec::Hwgq { bits: 2 },
            layers: vec![
                LayerSpec {
                    neurons: 24,
                    weight_bits: 2,
                    act: ActSpec::Hwgq { bits: 2 },
                    batch_norm: true,
                },
                LayerSpec {
                    neurons: SENSOR_CLASSES,
                    weight_bits: 2,
                    act: ActSpec::None,
                    batch_norm: true,
                },
            ],
        };
        let mut m = FloatMlp::init(spec, 8);
        train(
            &mut m,
            &train_ds,
            &TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
        );
        let acc = accuracy(&m, &test_ds);
        assert!(acc > 0.7, "sensor accuracy {acc}");
    }
}
