//! JSON codecs for the persisted model types.
//!
//! The vendored `serde_json` stand-in serialises through explicit
//! [`ToJson`] / [`FromJson`] impls instead of derived serde traits.
//! This module is the schema for the two on-disk artifacts `io`
//! produces: hardware-ready [`QuantMlp`] models and [`FloatMlp`]
//! training checkpoints. Enums carry a `"kind"` tag; everything else
//! is a plain field-per-field object.

use crate::float::{ActSpec, BatchNorm, FloatLayer, FloatMlp, LayerSpec, MlpSpec};
use crate::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use crate::tensor::Matrix;
use netpu_arith::Fix;
use serde_json::{Error, FromJson, Map, ToJson, Value};

fn obj(fields: Vec<(&'static str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn kind_of(v: &Value) -> Result<&str, Error> {
    v["kind"]
        .as_str()
        .ok_or_else(|| Error::msg("expected tagged object with \"kind\""))
}

impl ToJson for BnParams {
    fn to_json(&self) -> Value {
        obj(vec![
            ("scale_q16", self.scale_q16.to_json()),
            ("offset", self.offset.to_json()),
        ])
    }
}

impl FromJson for BnParams {
    fn from_json(v: &Value) -> Result<BnParams, Error> {
        Ok(BnParams {
            scale_q16: i32::from_json(&v["scale_q16"])?,
            offset: Fix::from_json(&v["offset"])?,
        })
    }
}

impl ToJson for LayerActivation {
    fn to_json(&self) -> Value {
        match self {
            LayerActivation::Relu { quant } => {
                obj(vec![("kind", "relu".into()), ("quant", quant.to_json())])
            }
            LayerActivation::Sigmoid { quant } => {
                obj(vec![("kind", "sigmoid".into()), ("quant", quant.to_json())])
            }
            LayerActivation::Tanh { quant } => {
                obj(vec![("kind", "tanh".into()), ("quant", quant.to_json())])
            }
            LayerActivation::Sign { thresholds } => obj(vec![
                ("kind", "sign".into()),
                ("thresholds", thresholds.to_json()),
            ]),
            LayerActivation::MultiThreshold { thresholds } => obj(vec![
                ("kind", "multi_threshold".into()),
                ("thresholds", thresholds.to_json()),
            ]),
        }
    }
}

impl FromJson for LayerActivation {
    fn from_json(v: &Value) -> Result<LayerActivation, Error> {
        Ok(match kind_of(v)? {
            "relu" => LayerActivation::Relu {
                quant: FromJson::from_json(&v["quant"])?,
            },
            "sigmoid" => LayerActivation::Sigmoid {
                quant: FromJson::from_json(&v["quant"])?,
            },
            "tanh" => LayerActivation::Tanh {
                quant: FromJson::from_json(&v["quant"])?,
            },
            "sign" => LayerActivation::Sign {
                thresholds: FromJson::from_json(&v["thresholds"])?,
            },
            "multi_threshold" => LayerActivation::MultiThreshold {
                thresholds: FromJson::from_json(&v["thresholds"])?,
            },
            other => return Err(Error::msg(format!("unknown activation kind {other:?}"))),
        })
    }
}

impl ToJson for InputLayer {
    fn to_json(&self) -> Value {
        obj(vec![
            ("len", self.len.to_json()),
            ("out_precision", self.out_precision.to_json()),
            ("activation", self.activation.to_json()),
        ])
    }
}

impl FromJson for InputLayer {
    fn from_json(v: &Value) -> Result<InputLayer, Error> {
        Ok(InputLayer {
            len: usize::from_json(&v["len"])?,
            out_precision: FromJson::from_json(&v["out_precision"])?,
            activation: FromJson::from_json(&v["activation"])?,
        })
    }
}

impl ToJson for HiddenLayer {
    fn to_json(&self) -> Value {
        obj(vec![
            ("in_len", self.in_len.to_json()),
            ("neurons", self.neurons.to_json()),
            ("weight_precision", self.weight_precision.to_json()),
            ("in_precision", self.in_precision.to_json()),
            ("out_precision", self.out_precision.to_json()),
            ("weights", self.weights.to_json()),
            ("bias", self.bias.to_json()),
            ("bn", self.bn.to_json()),
            ("activation", self.activation.to_json()),
        ])
    }
}

impl FromJson for HiddenLayer {
    fn from_json(v: &Value) -> Result<HiddenLayer, Error> {
        Ok(HiddenLayer {
            in_len: usize::from_json(&v["in_len"])?,
            neurons: usize::from_json(&v["neurons"])?,
            weight_precision: FromJson::from_json(&v["weight_precision"])?,
            in_precision: FromJson::from_json(&v["in_precision"])?,
            out_precision: FromJson::from_json(&v["out_precision"])?,
            weights: FromJson::from_json(&v["weights"])?,
            bias: FromJson::from_json(&v["bias"])?,
            bn: FromJson::from_json(&v["bn"])?,
            activation: FromJson::from_json(&v["activation"])?,
        })
    }
}

impl ToJson for OutputLayer {
    fn to_json(&self) -> Value {
        obj(vec![
            ("in_len", self.in_len.to_json()),
            ("neurons", self.neurons.to_json()),
            ("weight_precision", self.weight_precision.to_json()),
            ("in_precision", self.in_precision.to_json()),
            ("weights", self.weights.to_json()),
            ("bias", self.bias.to_json()),
            ("bn", self.bn.to_json()),
        ])
    }
}

impl FromJson for OutputLayer {
    fn from_json(v: &Value) -> Result<OutputLayer, Error> {
        Ok(OutputLayer {
            in_len: usize::from_json(&v["in_len"])?,
            neurons: usize::from_json(&v["neurons"])?,
            weight_precision: FromJson::from_json(&v["weight_precision"])?,
            in_precision: FromJson::from_json(&v["in_precision"])?,
            weights: FromJson::from_json(&v["weights"])?,
            bias: FromJson::from_json(&v["bias"])?,
            bn: FromJson::from_json(&v["bn"])?,
        })
    }
}

impl ToJson for QuantMlp {
    fn to_json(&self) -> Value {
        obj(vec![
            ("name", self.name.to_json()),
            ("input", self.input.to_json()),
            ("hidden", self.hidden.to_json()),
            ("output", self.output.to_json()),
        ])
    }
}

impl FromJson for QuantMlp {
    fn from_json(v: &Value) -> Result<QuantMlp, Error> {
        Ok(QuantMlp {
            name: String::from_json(&v["name"])?,
            input: FromJson::from_json(&v["input"])?,
            hidden: FromJson::from_json(&v["hidden"])?,
            output: FromJson::from_json(&v["output"])?,
        })
    }
}

impl ToJson for ActSpec {
    fn to_json(&self) -> Value {
        match *self {
            ActSpec::Sign => obj(vec![("kind", "sign".into())]),
            ActSpec::Hwgq { bits } => obj(vec![("kind", "hwgq".into()), ("bits", bits.to_json())]),
            ActSpec::ReluQuant { bits } => obj(vec![
                ("kind", "relu_quant".into()),
                ("bits", bits.to_json()),
            ]),
            ActSpec::SigmoidQuant { bits } => obj(vec![
                ("kind", "sigmoid_quant".into()),
                ("bits", bits.to_json()),
            ]),
            ActSpec::None => obj(vec![("kind", "none".into())]),
        }
    }
}

impl FromJson for ActSpec {
    fn from_json(v: &Value) -> Result<ActSpec, Error> {
        Ok(match kind_of(v)? {
            "sign" => ActSpec::Sign,
            "hwgq" => ActSpec::Hwgq {
                bits: u8::from_json(&v["bits"])?,
            },
            "relu_quant" => ActSpec::ReluQuant {
                bits: u8::from_json(&v["bits"])?,
            },
            "sigmoid_quant" => ActSpec::SigmoidQuant {
                bits: u8::from_json(&v["bits"])?,
            },
            "none" => ActSpec::None,
            other => return Err(Error::msg(format!("unknown act spec kind {other:?}"))),
        })
    }
}

impl ToJson for LayerSpec {
    fn to_json(&self) -> Value {
        obj(vec![
            ("neurons", self.neurons.to_json()),
            ("weight_bits", self.weight_bits.to_json()),
            ("act", self.act.to_json()),
            ("batch_norm", self.batch_norm.to_json()),
        ])
    }
}

impl FromJson for LayerSpec {
    fn from_json(v: &Value) -> Result<LayerSpec, Error> {
        Ok(LayerSpec {
            neurons: usize::from_json(&v["neurons"])?,
            weight_bits: u8::from_json(&v["weight_bits"])?,
            act: FromJson::from_json(&v["act"])?,
            batch_norm: bool::from_json(&v["batch_norm"])?,
        })
    }
}

impl ToJson for MlpSpec {
    fn to_json(&self) -> Value {
        obj(vec![
            ("name", self.name.to_json()),
            ("input_len", self.input_len.to_json()),
            ("input_act", self.input_act.to_json()),
            ("layers", self.layers.to_json()),
        ])
    }
}

impl FromJson for MlpSpec {
    fn from_json(v: &Value) -> Result<MlpSpec, Error> {
        Ok(MlpSpec {
            name: String::from_json(&v["name"])?,
            input_len: usize::from_json(&v["input_len"])?,
            input_act: FromJson::from_json(&v["input_act"])?,
            layers: FromJson::from_json(&v["layers"])?,
        })
    }
}

impl ToJson for BatchNorm {
    fn to_json(&self) -> Value {
        obj(vec![
            ("gamma", self.gamma.to_json()),
            ("beta", self.beta.to_json()),
            ("running_mean", self.running_mean.to_json()),
            ("running_var", self.running_var.to_json()),
            ("eps", self.eps.to_json()),
            ("momentum", self.momentum.to_json()),
        ])
    }
}

impl FromJson for BatchNorm {
    fn from_json(v: &Value) -> Result<BatchNorm, Error> {
        Ok(BatchNorm {
            gamma: FromJson::from_json(&v["gamma"])?,
            beta: FromJson::from_json(&v["beta"])?,
            running_mean: FromJson::from_json(&v["running_mean"])?,
            running_var: FromJson::from_json(&v["running_var"])?,
            eps: f32::from_json(&v["eps"])?,
            momentum: f32::from_json(&v["momentum"])?,
        })
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Value {
        obj(vec![
            ("rows", self.rows().to_json()),
            ("cols", self.cols().to_json()),
            ("data", self.data().to_vec().to_json()),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(v: &Value) -> Result<Matrix, Error> {
        let rows = usize::from_json(&v["rows"])?;
        let cols = usize::from_json(&v["cols"])?;
        let data: Vec<f32> = FromJson::from_json(&v["data"])?;
        if data.len() != rows * cols {
            return Err(Error::msg("Matrix: data length does not match shape"));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

impl ToJson for FloatLayer {
    fn to_json(&self) -> Value {
        obj(vec![
            ("w", self.w.to_json()),
            ("b", self.b.to_json()),
            ("bn", self.bn.to_json()),
            ("spec", self.spec.to_json()),
        ])
    }
}

impl FromJson for FloatLayer {
    fn from_json(v: &Value) -> Result<FloatLayer, Error> {
        Ok(FloatLayer {
            w: FromJson::from_json(&v["w"])?,
            b: FromJson::from_json(&v["b"])?,
            bn: FromJson::from_json(&v["bn"])?,
            spec: FromJson::from_json(&v["spec"])?,
        })
    }
}

impl ToJson for FloatMlp {
    fn to_json(&self) -> Value {
        obj(vec![
            ("spec", self.spec.to_json()),
            ("layers", self.layers.to_json()),
        ])
    }
}

impl FromJson for FloatMlp {
    fn from_json(v: &Value) -> Result<FloatMlp, Error> {
        Ok(FloatMlp {
            spec: FromJson::from_json(&v["spec"])?,
            layers: FromJson::from_json(&v["layers"])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmodel::tests::tiny_model;

    #[test]
    fn quant_mlp_value_roundtrips() {
        let m = tiny_model();
        let v = m.to_json();
        assert_eq!(QuantMlp::from_json(&v).unwrap(), m);
    }

    #[test]
    fn activation_kind_tag_rejects_unknown() {
        let v = obj(vec![("kind", "warp_drive".into())]);
        assert!(LayerActivation::from_json(&v).is_err());
        assert!(ActSpec::from_json(&v).is_err());
    }

    #[test]
    fn matrix_shape_is_checked() {
        let v = obj(vec![
            ("rows", 2.to_json()),
            ("cols", 3.to_json()),
            ("data", vec![0.0f32; 5].to_json()),
        ]);
        assert!(Matrix::from_json(&v).is_err());
    }
}
