//! Round-trip and robustness tests for the loadable format.

use netpu_compiler::stream::{
    self, compile, decode, input_words, model_settings, param_words, weight_words, StreamError,
};
use netpu_compiler::{LayerType, SectionKind};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_nn::QuantMlp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_pixels(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn models_under_test() -> Vec<QuantMlp> {
    vec![
        ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap(),
        ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Hardware)
            .unwrap(),
        ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Folded)
            .unwrap(),
        ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Hardware)
            .unwrap(),
    ]
}

#[test]
fn compile_decode_roundtrips_all_model_shapes() {
    for mut model in models_under_test() {
        let pixels = sample_pixels(7, model.input.len);
        let loadable = compile(&model, &pixels).unwrap();
        let decoded = decode(&loadable.words).unwrap();
        // Names are not transmitted.
        model.name = String::new();
        assert_eq!(decoded.model, model);
        assert_eq!(decoded.pixels, pixels);
    }
}

#[test]
fn section_order_matches_paper_interleave() {
    let model = ZooModel::TfcW1A1
        .build_untrained(3, BnMode::Folded)
        .unwrap();
    let pixels = sample_pixels(3, model.input.len);
    let loadable = compile(&model, &pixels).unwrap();
    let kinds: Vec<(SectionKind, usize)> = loadable
        .layout
        .sections
        .iter()
        .map(|(k, l, _)| (*k, *l))
        .collect();
    // TFC has 5 layers: P0, P1, W0, P2, W1, P3, W2, P4, W3, W4.
    assert_eq!(
        kinds,
        vec![
            (SectionKind::Params, 0),
            (SectionKind::Params, 1),
            (SectionKind::Weights, 0),
            (SectionKind::Params, 2),
            (SectionKind::Weights, 1),
            (SectionKind::Params, 3),
            (SectionKind::Weights, 2),
            (SectionKind::Params, 4),
            (SectionKind::Weights, 3),
            (SectionKind::Weights, 4),
        ]
    );
    // The input layer carries no weights.
    let w0 = &loadable.layout.sections[2].2;
    assert_eq!(w0.len(), 0);
}

#[test]
fn binary_weights_stream_eight_times_denser() {
    let w1a1 = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let w2a2 = ZooModel::TfcW2A2
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let s1 = model_settings(&w1a1);
    let s2 = model_settings(&w2a2);
    // First hidden layer: 784 inputs → 13 words binary vs 98 words 8-bit.
    assert_eq!(stream::neuron_weight_words(&s1[1]), 13);
    assert_eq!(stream::neuron_weight_words(&s2[1]), 98);
}

#[test]
fn stream_length_is_dominated_by_weights_for_large_models() {
    let model = ZooModel::SfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let pixels = sample_pixels(1, model.input.len);
    let loadable = compile(&model, &pixels).unwrap();
    let settings = model_settings(&model);
    let total_weights: usize = settings.iter().map(weight_words).sum();
    assert!(
        total_weights * 10 > loadable.len() * 8,
        "weights should dominate"
    );
}

#[test]
fn word_counts_match_emitted_sections() {
    for model in models_under_test() {
        let pixels = sample_pixels(5, model.input.len);
        let loadable = compile(&model, &pixels).unwrap();
        let settings = model_settings(&model);
        for (kind, layer, range) in &loadable.layout.sections {
            let expect = match kind {
                SectionKind::Params => param_words(&settings[*layer]),
                SectionKind::Weights => weight_words(&settings[*layer]),
            };
            assert_eq!(
                range.len(),
                expect,
                "{kind:?} layer {layer} in {}",
                model.name
            );
        }
        assert_eq!(loadable.layout.input.len(), input_words(model.input.len));
    }
}

#[test]
fn replace_input_changes_only_input_section() {
    let model = ZooModel::TfcW1A1
        .build_untrained(2, BnMode::Folded)
        .unwrap();
    let a = sample_pixels(10, model.input.len);
    let b = sample_pixels(11, model.input.len);
    let mut loadable = compile(&model, &a).unwrap();
    let reference = compile(&model, &b).unwrap();
    loadable.replace_input(&b).unwrap();
    assert_eq!(loadable.words, reference.words);
    // Wrong length is rejected.
    assert!(matches!(
        loadable.replace_input(&[0u8; 3]),
        Err(StreamError::InputLength {
            expected: 784,
            got: 3
        })
    ));
}

#[test]
fn decode_rejects_corrupt_streams() {
    let model = ZooModel::TfcW1A1
        .build_untrained(4, BnMode::Folded)
        .unwrap();
    let pixels = sample_pixels(4, model.input.len);
    let loadable = compile(&model, &pixels).unwrap();

    // Bad magic.
    let mut bad = loadable.words.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(decode(&bad), Err(StreamError::BadHeader(_))));

    // Truncations at every section boundary must be detected.
    for (_, _, range) in &loadable.layout.sections {
        if range.start > 0 {
            let truncated = &loadable.words[..range.start.min(loadable.len() - 1)];
            assert!(
                matches!(decode(truncated), Err(StreamError::Truncated { .. })),
                "truncation at {} not detected",
                range.start
            );
        }
    }

    // Empty stream.
    assert!(matches!(decode(&[]), Err(StreamError::Truncated { .. })));
}

#[test]
fn decode_rejects_bad_layer_sequences() {
    let model = ZooModel::TfcW1A1
        .build_untrained(6, BnMode::Folded)
        .unwrap();
    let pixels = sample_pixels(6, model.input.len);
    let loadable = compile(&model, &pixels).unwrap();
    // Flip the first layer's type from Input to Hidden.
    let mut bad = loadable.words.clone();
    let idx = loadable.layout.settings.start;
    bad[idx] = (bad[idx] & !0b11) | 1;
    assert!(matches!(
        decode(&bad),
        Err(StreamError::BadLayerSequence) | Err(StreamError::Truncated { .. })
    ));
}

#[test]
fn compile_rejects_wrong_input_length() {
    let model = ZooModel::TfcW1A1
        .build_untrained(8, BnMode::Folded)
        .unwrap();
    assert!(matches!(
        compile(&model, &[0u8; 10]),
        Err(StreamError::InputLength {
            expected: 784,
            got: 10
        })
    ));
}

#[test]
fn settings_reflect_model_configuration() {
    let model = ZooModel::TfcW2A2
        .build_untrained(9, BnMode::Hardware)
        .unwrap();
    let settings = model_settings(&model);
    assert_eq!(settings.len(), 5);
    assert_eq!(settings[0].layer_type, LayerType::Input);
    assert_eq!(settings[0].neurons, 784);
    assert_eq!(settings[1].layer_type, LayerType::Hidden);
    assert!(!settings[1].bn_folded);
    assert_eq!(settings[1].neurons, 64);
    assert_eq!(settings[1].input_len, 784);
    assert_eq!(settings[4].layer_type, LayerType::Output);
    assert_eq!(settings[4].neurons, 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Round-trip holds for arbitrary inputs on a fixed model.
    #[test]
    fn roundtrip_arbitrary_pixels(seed in 0u64..1000) {
        let mut model = ZooModel::TfcW1A1.build_untrained(42, BnMode::Folded).unwrap();
        let pixels = sample_pixels(seed, model.input.len);
        let loadable = compile(&model, &pixels).unwrap();
        let decoded = decode(&loadable.words).unwrap();
        model.name = String::new();
        prop_assert_eq!(decoded.pixels, pixels);
        prop_assert_eq!(decoded.model, model);
    }

    /// pack/unpack of 32-bit parameter pairs round-trips.
    #[test]
    fn u32_pair_packing_roundtrips(vals in proptest::collection::vec(any::<u32>(), 0..50)) {
        let words = stream::pack_u32_pairs(&vals);
        prop_assert_eq!(words.len(), vals.len().div_ceil(2));
        prop_assert_eq!(stream::unpack_u32_pairs(&words, vals.len()), vals);
    }
}

proptest! {
    /// Layer-setting decode terminates with Ok or a typed error on any
    /// 64-bit word — never a panic.
    #[test]
    fn setting_decode_never_panics(word in any::<u64>()) {
        let _ = netpu_compiler::LayerSetting::decode(word);
    }

    /// The `.npu` container parser terminates on arbitrary bytes.
    #[test]
    fn container_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = netpu_compiler::Loadable::from_bytes(&bytes);
    }
}
