#![deny(missing_docs)]
//! The NetPU-M model compiler.
//!
//! PEM-style accelerators need a model compiler that converts a trained
//! network into an executable data stream — the paper cites the *NVDLA
//! Loadable* as the archetype. NetPU-M's equivalent is simpler because
//! §III.B.3 fixes the load order completely; this crate implements:
//!
//! * [`settings`] — the per-layer 64-bit configuration words.
//! * [`stream`] — the [`stream::compile`] encoder producing a
//!   [`stream::Loadable`] (model + one inference input) and the
//!   [`stream::decode`] validator that reconstructs the model from the
//!   wire format.
//!
//! The word-count functions ([`stream::param_words`],
//! [`stream::weight_words`], [`stream::neuron_weight_words`]) are shared
//! with the accelerator model in `netpu-core`, which consumes the stream
//! word-by-word exactly as the hardware would.

//! With the test-only `inject` cargo feature, [`inject`] adds a seeded
//! miscompile harness: semantic mutations compiled into structurally
//! clean streams, used to demonstrate that the `netpu-check::symex`
//! translation validator catches what NPC001–NPC020 cannot.

pub mod file;
#[cfg(feature = "inject")]
pub mod inject;
pub mod settings;
pub mod stream;

pub use file::FileError;
pub use settings::{LayerSetting, LayerType, SettingError};
pub use stream::{
    batch_stream, compile, compile_packed, declared_input_range, decode, Decoded, Loadable,
    PackingMode, SectionKind, StreamError, StreamLayout,
};
