//! The NetPU-M loadable: a pre-packaged 64-bit word stream.
//!
//! §III.B.3 fixes the data loading order so that runtime control reduces
//! to pure data streaming:
//!
//! 1. layer count, 2. all layer settings, 3. dataset inputs,
//!    4. parameters of layer 0, 5. parameters of layer 1, 6. weights of
//!    layer 0, 7. parameters of layer 2, 8. weights of layer 1, …,
//!    parameters of layer N−1, weights of layer N−2, weights of layer N−1.
//!
//! The interleave (parameters of layer k+1 before weights of layer k)
//! lets the next LPU initialise while the current one is still
//! processing. This module encodes a [`QuantMlp`] plus one inference
//! input into that stream and decodes it back for validation.

use crate::settings::{LayerSetting, LayerType, SettingError};
use netpu_arith::quant::{self, LANES_PER_WORD};
use netpu_arith::{cast, ActivationKind, Fix, Precision, QuantParams};
use netpu_nn::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Stream magic in the header word ("NP").
pub const MAGIC: u16 = 0x4E50;
/// Loadable format version.
pub const VERSION: u8 = 1;

/// Header bit 41: set when bits 42..58 carry a declared input range.
/// Decoders (hardware and checker alike) built before the flag existed
/// ignore bits 41 and up, so the metadata is backward compatible.
const RANGE_FLAG: u64 = 1 << 41;
/// Header bits 42..50: declared minimum input pixel value.
const RANGE_MIN_SHIFT: u32 = 42;
/// Header bits 50..58: declared maximum input pixel value.
const RANGE_MAX_SHIFT: u32 = 50;

/// The declared input range carried in a header word, when the encoder
/// recorded one (streams from compilers predating the bit 41 flag carry
/// none; analyses fall back to the full `0..=255` pixel range).
///
/// The range is a *host claim* about every input this loadable will ever
/// be run with; `netpu-check`'s NPC020 verifies the claim against the
/// stream's own input section before any bound derived from it is
/// trusted.
pub fn declared_input_range(header: u64) -> Option<(u8, u8)> {
    if header & RANGE_FLAG == 0 {
        return None;
    }
    Some((
        cast::lo8(header >> RANGE_MIN_SHIFT),
        cast::lo8(header >> RANGE_MAX_SHIFT),
    ))
}

/// What a stream section carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SectionKind {
    /// Per-layer parameters (bias/BN/threshold/QUAN words).
    Params,
    /// Per-layer weights.
    Weights,
}

/// Section map of an encoded loadable (word offsets into the stream).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamLayout {
    /// The header word.
    pub header: Range<usize>,
    /// Layer-setting words.
    pub settings: Range<usize>,
    /// Dataset-input words.
    pub input: Range<usize>,
    /// `(kind, layer index, word range)` in emitted order.
    pub sections: Vec<(SectionKind, usize, Range<usize>)>,
}

/// An encoded loadable: the word stream plus its section map.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loadable {
    /// The 64-bit stream words, in transmission order.
    pub words: Vec<u64>,
    /// Section map (host-side metadata; not transmitted).
    pub layout: StreamLayout,
}

/// Compile / decode errors.
#[derive(Clone, PartialEq, Debug)]
pub enum StreamError {
    /// The model failed validation.
    InvalidModel(netpu_nn::qmodel::ModelError),
    /// The inference input length does not match the model.
    InputLength {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The stream is shorter than its sections require.
    Truncated {
        /// Word offset at which data ran out.
        at: usize,
    },
    /// Bad header magic or version.
    BadHeader(u64),
    /// A malformed layer-setting word.
    BadSetting(SettingError),
    /// The decoded layer sequence is not Input, Hidden*, Output.
    BadLayerSequence,
    /// Per-neuron QUAN parameters disagree within one layer.
    InconsistentQuanParams {
        /// Offending layer index.
        layer: usize,
    },
    /// The stream uses a weight packing mode this accelerator instance
    /// was not generated with.
    PackingUnsupported,
    /// A layer's payload slice was absent when the interleave replay
    /// went to reconstruct the model (an internal decode inconsistency,
    /// surfaced as an error instead of a panic).
    MissingSection {
        /// Layer whose payload was missing.
        layer: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidModel(e) => write!(f, "invalid model: {e}"),
            StreamError::InputLength { expected, got } => {
                write!(f, "input length {got}, model expects {expected}")
            }
            StreamError::Truncated { at } => write!(f, "stream truncated at word {at}"),
            StreamError::BadHeader(w) => write!(f, "bad header word {w:#018x}"),
            StreamError::BadSetting(e) => write!(f, "bad layer setting: {e}"),
            StreamError::BadLayerSequence => {
                f.write_str("layer sequence must be Input, Hidden*, Output")
            }
            StreamError::InconsistentQuanParams { layer } => {
                write!(f, "layer {layer}: inconsistent per-neuron QUAN parameters")
            }
            StreamError::MissingSection { layer } => {
                write!(f, "layer {layer}: payload slice missing during decode")
            }
            StreamError::PackingUnsupported => {
                f.write_str("stream packing mode unsupported by this instance")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::InvalidModel(e) => Some(e),
            StreamError::BadSetting(e) => Some(e),
            _ => None,
        }
    }
}

/// Packs 32-bit parameter words two per stream word (low half first),
/// padding the final word with zeros.
pub fn pack_u32_pairs(vals: &[u32]) -> Vec<u64> {
    vals.chunks(2)
        .map(|c| u64::from(c[0]) | (c.get(1).map_or(0, |&v| u64::from(v)) << 32))
        .collect()
}

/// Unpacks `n` 32-bit parameter words from pair-packed stream words.
pub fn unpack_u32_pairs(words: &[u64], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let w = words[i / 2];
        out.push(if i % 2 == 0 {
            cast::lo32(w)
        } else {
            cast::lo32(w >> 32)
        });
    }
    out
}

/// How multi-bit weights occupy the 64-bit stream words.
///
/// The paper streams every 2–8-bit weight in a full 8-bit lane, wasting
/// the upper bits as placeholders (§V calls this out as a known
/// inefficiency). [`PackingMode::Dense`] implements the §V future work:
/// pack weights at their native width when it divides the lane (1, 2,
/// 4, or 8 bits), shrinking the weight stream up to 8×. Both endpoints
/// — the compiler and the accelerator instance — must agree on the
/// mode; the loadable header carries it so a mismatch is detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PackingMode {
    /// One 8-bit lane per weight (the paper's implementation).
    #[default]
    Lanes8,
    /// Native-width packing for 1/2/4/8-bit weights (§V future work);
    /// other precisions fall back to 8-bit lanes.
    Dense,
}

/// `true` when a layer runs on the XNOR datapath (both operands 1-bit).
pub fn uses_xnor_path(setting: &LayerSetting) -> bool {
    setting.in_precision.is_binary() && setting.weight_precision.is_binary()
}

/// Weight field width in bits under a packing mode (the XNOR path is
/// always 1-bit-dense and is handled separately).
pub fn weight_field_bits(setting: &LayerSetting, mode: PackingMode) -> u32 {
    let bits = u32::from(setting.weight_precision.bits());
    match mode {
        PackingMode::Lanes8 => 8,
        PackingMode::Dense if 8 % bits == 0 => bits,
        PackingMode::Dense => 8,
    }
}

/// Weights carried per 64-bit stream word on the integer path.
pub fn weights_per_word(setting: &LayerSetting, mode: PackingMode) -> usize {
    64 / cast::usize_from_u32(weight_field_bits(setting, mode))
}

/// Stream words carrying one neuron's weights under a packing mode
/// (each neuron is padded to a word boundary so the LPU's per-neuron
/// dispatch stays aligned).
pub fn neuron_weight_words_mode(setting: &LayerSetting, mode: PackingMode) -> usize {
    let n = cast::usize_from_u32(setting.input_len);
    if uses_xnor_path(setting) {
        n.div_ceil(64)
    } else {
        n.div_ceil(weights_per_word(setting, mode))
    }
}

/// Stream words carrying one neuron's weights under the paper's 8-bit
/// lane packing.
pub fn neuron_weight_words(setting: &LayerSetting) -> usize {
    neuron_weight_words_mode(setting, PackingMode::Lanes8)
}

/// Total weight-section words of a layer under a packing mode (zero for
/// the Input layer).
pub fn weight_words_mode(setting: &LayerSetting, mode: PackingMode) -> usize {
    if setting.layer_type == LayerType::Input {
        0
    } else {
        cast::usize_from_u32(setting.neurons) * neuron_weight_words_mode(setting, mode)
    }
}

/// Total weight-section words under the paper's 8-bit lane packing.
pub fn weight_words(setting: &LayerSetting) -> usize {
    weight_words_mode(setting, PackingMode::Lanes8)
}

/// Extracts integer-path weight `idx` from a stream word under a
/// packing mode: mask the field, then sign-extend (1-bit fields decode
/// bipolar ±1).
pub fn extract_weight(word: u64, idx: usize, setting: &LayerSetting, mode: PackingMode) -> i32 {
    let bits = weight_field_bits(setting, mode);
    debug_assert!(idx < 64 / cast::usize_from_u32(bits));
    let field = cast::lo32((word >> (cast::usize_from_u32(bits) * idx)) & ((1u64 << bits) - 1));
    if setting.weight_precision.is_binary() {
        if bits == 8 {
            // Promoted ±1 weights travel sign-extended in full lanes.
            cast::sign_extend(field, 8)
        } else {
            netpu_arith::binary::decode_bipolar(cast::lo8(field))
        }
    } else {
        cast::sign_extend(field, u32::from(setting.weight_precision.bits()))
    }
}

/// 32-bit activation-parameter words per neuron (thresholds or QUAN
/// scale+offset), before pair packing.
fn act_param_u32s(setting: &LayerSetting) -> usize {
    match setting.activation {
        ActivationKind::Sign => 1,
        ActivationKind::MultiThreshold => setting.out_precision.multi_threshold_count(),
        ActivationKind::Relu | ActivationKind::Sigmoid | ActivationKind::Tanh => 2,
    }
}

/// Total parameter-section words of a layer.
pub fn param_words(setting: &LayerSetting) -> usize {
    let neurons = cast::usize_from_u32(setting.neurons);
    let mut words = 0usize;
    // Bias / BN block (FC layers only).
    if setting.layer_type != LayerType::Input {
        words += if setting.bn_folded {
            neurons.div_ceil(LANES_PER_WORD) // 8-bit biases, 8 per word
        } else {
            neurons // one (scale, offset) pair-word per neuron
        };
    }
    // Activation parameter block (Input and Hidden layers).
    if setting.layer_type != LayerType::Output {
        words += (neurons * act_param_u32s(setting)).div_ceil(2);
    }
    words
}

/// Words carrying the dataset input (8-bit pixel lanes).
pub fn input_words(input_len: usize) -> usize {
    input_len.div_ceil(LANES_PER_WORD)
}

/// Builds the layer-setting list for a model.
pub fn model_settings(mlp: &QuantMlp) -> Vec<LayerSetting> {
    let mut settings = Vec::with_capacity(mlp.layer_count());
    settings.push(LayerSetting {
        layer_type: LayerType::Input,
        activation: mlp.input.activation.kind(),
        bn_folded: true,
        in_precision: Precision::W8,
        weight_precision: Precision::W1,
        out_precision: mlp.input.out_precision,
        neurons: cast::u32_sat_usize(mlp.input.len),
        input_len: 1,
    });
    for h in &mlp.hidden {
        settings.push(LayerSetting {
            layer_type: LayerType::Hidden,
            activation: h.activation.kind(),
            bn_folded: h.bias.is_some(),
            in_precision: h.in_precision,
            weight_precision: h.weight_precision,
            out_precision: h.out_precision,
            neurons: cast::u32_sat_usize(h.neurons),
            input_len: cast::u32_sat_usize(h.in_len),
        });
    }
    settings.push(LayerSetting {
        layer_type: LayerType::Output,
        // Activation selector is unused on the pink path; encode ReLU.
        activation: ActivationKind::Relu,
        bn_folded: mlp.output.bias.is_some(),
        in_precision: mlp.output.in_precision,
        weight_precision: mlp.output.weight_precision,
        // Output precision is unused; scores leave at full width.
        out_precision: Precision::W8,
        neurons: cast::u32_sat_usize(mlp.output.neurons),
        input_len: cast::u32_sat_usize(mlp.output.in_len),
    });
    settings
}

fn activation_param_u32s_of(act: &LayerActivation, neurons: usize) -> Vec<u32> {
    match act {
        LayerActivation::Sign { thresholds } => {
            thresholds.iter().map(|t| t.to_stream_word()).collect()
        }
        LayerActivation::MultiThreshold { thresholds } => thresholds
            .iter()
            .flat_map(|row| row.iter().map(|t| t.to_stream_word()))
            .collect(),
        LayerActivation::Relu { quant }
        | LayerActivation::Sigmoid { quant }
        | LayerActivation::Tanh { quant } => (0..neurons)
            .flat_map(|_| [quant.scale.to_stream_word(), quant.offset.to_stream_word()])
            .collect(),
    }
}

fn bias_words(bias: &[i32]) -> Vec<u64> {
    bias.chunks(LANES_PER_WORD)
        .map(|chunk| {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= u64::from(cast::lane_of_i32(b)) << (8 * i);
            }
            w
        })
        .collect()
}

fn bn_words(bn: &[BnParams]) -> Vec<u64> {
    bn.iter()
        .map(|p| {
            u64::from(cast::bits_of_i32(p.scale_q16)) | (u64::from(p.offset.to_stream_word()) << 32)
        })
        .collect()
}

fn fc_param_section(
    bias: &Option<Vec<i32>>,
    bn: &Option<Vec<BnParams>>,
    act: Option<(&LayerActivation, usize)>,
) -> Vec<u64> {
    let mut words = match (bias, bn) {
        (Some(b), None) => bias_words(b),
        (None, Some(p)) => bn_words(p),
        _ => unreachable!("validated models carry exactly one of bias/bn"),
    };
    if let Some((a, neurons)) = act {
        words.extend(pack_u32_pairs(&activation_param_u32s_of(a, neurons)));
    }
    words
}

fn weight_section(
    weights: &[i32],
    neurons: usize,
    in_len: usize,
    setting: &LayerSetting,
    mode: PackingMode,
) -> Vec<u64> {
    let mut words = Vec::with_capacity(weight_words_mode(setting, mode));
    let bits = cast::usize_from_u32(weight_field_bits(setting, mode));
    let per_word = 64 / bits;
    for n in 0..neurons {
        let row = &weights[n * in_len..(n + 1) * in_len];
        if uses_xnor_path(setting) {
            // Inline [`quant::pack_binary_channels`] to extend `words`
            // directly — one allocation for the whole section instead of
            // one per neuron row.
            words.extend(row.chunks(64).map(|chunk| {
                let mut w = 0u64;
                for (i, &v) in chunk.iter().enumerate() {
                    w |= u64::from(netpu_arith::binary::encode_bipolar(v)) << i;
                }
                w
            }));
        } else {
            // Under Lanes8, 1-bit weights on the integer path occupy
            // full 8-bit lanes (the §V "placeholder bits" inefficiency);
            // Dense packs every field at its native width.
            words.extend(row.chunks(per_word).map(|chunk| {
                let mut w = 0u64;
                for (i, &v) in chunk.iter().enumerate() {
                    let field = if setting.weight_precision.is_binary() && bits < 8 {
                        u64::from(netpu_arith::binary::encode_bipolar(v))
                    } else {
                        u64::from(cast::lane_of_i32(v)) & ((1u64 << bits) - 1)
                    };
                    w |= field << (bits * i);
                }
                w
            }));
        }
    }
    words
}

/// Encodes `mlp` plus one inference input into the transmission stream
/// with the paper's 8-bit lane weight packing.
///
/// ```
/// use netpu_nn::{export::BnMode, zoo::ZooModel};
/// let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
/// let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
/// // The stream decodes back to the identical model.
/// let decoded = netpu_compiler::decode(&loadable.words).unwrap();
/// assert_eq!(decoded.model.weight_count(), model.weight_count());
/// ```
pub fn compile(mlp: &QuantMlp, pixels: &[u8]) -> Result<Loadable, StreamError> {
    compile_packed(mlp, pixels, PackingMode::Lanes8)
}

/// Encodes `mlp` plus one inference input under an explicit weight
/// [`PackingMode`]. The mode is recorded in the stream header (bit 40)
/// so an instance without dense-unpacking hardware rejects the stream.
pub fn compile_packed(
    mlp: &QuantMlp,
    pixels: &[u8],
    mode: PackingMode,
) -> Result<Loadable, StreamError> {
    mlp.validate().map_err(StreamError::InvalidModel)?;
    if pixels.len() != mlp.input.len {
        return Err(StreamError::InputLength {
            expected: mlp.input.len,
            got: pixels.len(),
        });
    }
    let settings = model_settings(mlp);
    let n = settings.len();
    let mut words = Vec::new();
    let mut layout = StreamLayout::default();

    // (1) Header: magic | version | layer count | packing flag (bit 40)
    // | declared input range (bit 41 flag, bits 42..50 min, 50..58 max).
    // The compiler cannot prove anything about the host's future inputs,
    // so it declares the full pixel range; hosts with tighter sensors
    // narrow it via [`Loadable::set_declared_input_range`].
    let packing_flag = u64::from(mode == PackingMode::Dense) << 40;
    let range_meta = RANGE_FLAG | (u64::from(u8::MAX) << RANGE_MAX_SHIFT);
    words.push(
        u64::from(MAGIC)
            | (u64::from(VERSION) << 16)
            | (cast::u64_from_usize(n) << 24)
            | packing_flag
            | range_meta,
    );
    layout.header = 0..1;

    // (2) All layer settings.
    let start = words.len();
    words.extend(settings.iter().map(LayerSetting::encode));
    layout.settings = start..words.len();

    // (3) Dataset inputs as 8-bit lanes.
    let start = words.len();
    words.extend(pixels.chunks(LANES_PER_WORD).map(|chunk| {
        let mut w = 0u64;
        for (i, &p) in chunk.iter().enumerate() {
            w |= u64::from(p) << (8 * i);
        }
        w
    }));
    layout.input = start..words.len();

    // Per-layer parameter and weight payloads, indexed by layer.
    let mut params: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut weights: Vec<Vec<u64>> = Vec::with_capacity(n);
    params.push(pack_u32_pairs(&activation_param_u32s_of(
        &mlp.input.activation,
        mlp.input.len,
    )));
    weights.push(Vec::new());
    for (h, setting) in mlp.hidden.iter().zip(&settings[1..]) {
        params.push(fc_param_section(
            &h.bias,
            &h.bn,
            Some((&h.activation, h.neurons)),
        ));
        weights.push(weight_section(
            &h.weights, h.neurons, h.in_len, setting, mode,
        ));
    }
    params.push(fc_param_section(&mlp.output.bias, &mlp.output.bn, None));
    weights.push(weight_section(
        &mlp.output.weights,
        mlp.output.neurons,
        mlp.output.in_len,
        &settings[n - 1],
        mode,
    ));

    // (4…) The §III.B.3 interleave: P0, then Pk+1 before Wk, then W(N−1).
    let emit = |kind: SectionKind,
                layer: usize,
                payload: Vec<u64>,
                words: &mut Vec<u64>,
                layout: &mut StreamLayout| {
        let start = words.len();
        words.extend(payload);
        layout.sections.push((kind, layer, start..words.len()));
    };
    emit(
        SectionKind::Params,
        0,
        std::mem::take(&mut params[0]),
        &mut words,
        &mut layout,
    );
    for k in 1..n {
        emit(
            SectionKind::Params,
            k,
            std::mem::take(&mut params[k]),
            &mut words,
            &mut layout,
        );
        emit(
            SectionKind::Weights,
            k - 1,
            std::mem::take(&mut weights[k - 1]),
            &mut words,
            &mut layout,
        );
    }
    emit(
        SectionKind::Weights,
        n - 1,
        std::mem::take(&mut weights[n - 1]),
        &mut words,
        &mut layout,
    );

    // Cross-check section sizes against the analytic word counts the
    // hardware model derives from the settings alone.
    for (kind, layer, range) in &layout.sections {
        let expect = match kind {
            SectionKind::Params => param_words(&settings[*layer]),
            SectionKind::Weights => weight_words_mode(&settings[*layer], mode),
        };
        debug_assert_eq!(range.len(), expect, "{kind:?} section of layer {layer}");
    }

    Ok(Loadable { words, layout })
}

impl Loadable {
    /// Total stream length in 64-bit words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the stream is empty (never for a valid loadable).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Replaces the dataset-input section in place for a new inference
    /// without re-encoding the model sections.
    pub fn replace_input(&mut self, pixels: &[u8]) -> Result<(), StreamError> {
        let range = self.layout.input.clone();
        let expected = range.len() * LANES_PER_WORD;
        // The final word may be partially used; recover the true length
        // from the first layer setting.
        let setting = LayerSetting::decode(self.words[self.layout.settings.start])
            .map_err(StreamError::BadSetting)?;
        let len = cast::usize_from_u32(setting.neurons);
        if pixels.len() != len {
            return Err(StreamError::InputLength {
                expected: len,
                got: pixels.len(),
            });
        }
        debug_assert!(len <= expected);
        for (w, chunk) in self.words[range]
            .iter_mut()
            .zip(pixels.chunks(LANES_PER_WORD))
        {
            let mut word = 0u64;
            for (i, &p) in chunk.iter().enumerate() {
                word |= u64::from(p) << (8 * i);
            }
            *w = word;
        }
        Ok(())
    }

    /// Overwrites the header's declared input range: the host's claim
    /// that every input this loadable will run with lies in `lo..=hi`.
    /// A tighter claim lets the range analyzer prove tighter accumulator
    /// bounds; an untrue one is caught by NPC020 against the stream's
    /// own input section.
    pub fn set_declared_input_range(&mut self, lo: u8, hi: u8) {
        let header = &mut self.words[self.layout.header.start];
        *header &= !(RANGE_FLAG | (0xFF << RANGE_MIN_SHIFT) | (0xFF << RANGE_MAX_SHIFT));
        *header |=
            RANGE_FLAG | (u64::from(lo) << RANGE_MIN_SHIFT) | (u64::from(hi) << RANGE_MAX_SHIFT);
    }
}

/// Builds a multi-inference stream: `inputs.len()` complete loadables
/// back to back, as a host would pre-package a burst of requests
/// (§III.B.3). The accelerator runs them consecutively, re-initialising
/// itself from each header.
pub fn batch_stream(
    mlp: &QuantMlp,
    inputs: &[Vec<u8>],
    mode: PackingMode,
) -> Result<Vec<u64>, StreamError> {
    let first = match inputs.first() {
        Some(f) => f,
        None => return Ok(Vec::new()),
    };
    let mut loadable = compile_packed(mlp, first, mode)?;
    let mut words = Vec::with_capacity(loadable.len() * inputs.len());
    words.extend_from_slice(&loadable.words);
    for pixels in &inputs[1..] {
        loadable.replace_input(pixels)?;
        words.extend_from_slice(&loadable.words);
    }
    Ok(words)
}

/// A decoded loadable: the reconstructed model and inference input.
#[derive(Clone, Debug, PartialEq)]
pub struct Decoded {
    /// The reconstructed hardware model (name is not transmitted and is
    /// left empty).
    pub model: QuantMlp,
    /// The inference input pixels.
    pub pixels: Vec<u8>,
    /// The decoded layer settings.
    pub settings: Vec<LayerSetting>,
    /// The weight packing mode the stream was encoded with.
    pub packing: PackingMode,
    /// The header's declared input range, when present (`None` for
    /// streams predating the range metadata).
    pub input_range: Option<(u8, u8)>,
}

struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u64], StreamError> {
        if self.pos + n > self.words.len() {
            return Err(StreamError::Truncated {
                at: self.words.len(),
            });
        }
        let s = &self.words[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn decode_activation(
    setting: &LayerSetting,
    words: &[u64],
    layer: usize,
) -> Result<LayerActivation, StreamError> {
    let neurons = cast::usize_from_u32(setting.neurons);
    match setting.activation {
        ActivationKind::Sign => {
            let vals = unpack_u32_pairs(words, neurons);
            Ok(LayerActivation::Sign {
                thresholds: vals.into_iter().map(Fix::from_stream_word).collect(),
            })
        }
        ActivationKind::MultiThreshold => {
            let per = setting.out_precision.multi_threshold_count();
            let vals = unpack_u32_pairs(words, neurons * per);
            Ok(LayerActivation::MultiThreshold {
                thresholds: vals
                    .chunks(per)
                    .map(|row| row.iter().map(|&v| Fix::from_stream_word(v)).collect())
                    .collect(),
            })
        }
        kind => {
            let vals = unpack_u32_pairs(words, neurons * 2);
            let first = QuantParams {
                scale: Fix::from_stream_word(vals[0]),
                offset: Fix::from_stream_word(vals[1]),
            };
            for pair in vals.chunks(2) {
                if pair[0] != vals[0] || pair[1] != vals[1] {
                    return Err(StreamError::InconsistentQuanParams { layer });
                }
            }
            Ok(match kind {
                ActivationKind::Relu => LayerActivation::Relu { quant: first },
                ActivationKind::Sigmoid => LayerActivation::Sigmoid { quant: first },
                ActivationKind::Tanh => LayerActivation::Tanh { quant: first },
                _ => unreachable!(),
            })
        }
    }
}

/// Decoded bias-or-BN block of one FC layer.
type BiasOrBn = (Option<Vec<i32>>, Option<Vec<BnParams>>);

fn decode_bias_bn(
    setting: &LayerSetting,
    reader: &mut Reader<'_>,
) -> Result<BiasOrBn, StreamError> {
    let neurons = cast::usize_from_u32(setting.neurons);
    if setting.bn_folded {
        let words = reader.take(neurons.div_ceil(LANES_PER_WORD))?;
        let mut bias = Vec::with_capacity(neurons);
        for i in 0..neurons {
            let lane = cast::lo8(words[i / LANES_PER_WORD] >> (8 * (i % LANES_PER_WORD)));
            bias.push(cast::sign_extend(u32::from(lane), 8));
        }
        Ok((Some(bias), None))
    } else {
        let words = reader.take(neurons)?;
        let bn = words
            .iter()
            .map(|&w| BnParams {
                scale_q16: cast::i32_from_bits(cast::lo32(w)),
                offset: Fix::from_stream_word(cast::lo32(w >> 32)),
            })
            .collect();
        Ok((None, Some(bn)))
    }
}

fn decode_weights(setting: &LayerSetting, words: &[u64], mode: PackingMode) -> Vec<i32> {
    let neurons = cast::usize_from_u32(setting.neurons);
    let in_len = cast::usize_from_u32(setting.input_len);
    let per = neuron_weight_words_mode(setting, mode);
    let wpw = weights_per_word(setting, mode);
    let mut out = Vec::with_capacity(neurons * in_len);
    for n in 0..neurons {
        let row = &words[n * per..(n + 1) * per];
        if uses_xnor_path(setting) {
            for i in 0..in_len {
                out.push(quant::extract_binary_channel(row[i / 64], i % 64));
            }
        } else {
            for i in 0..in_len {
                out.push(extract_weight(row[i / wpw], i % wpw, setting, mode));
            }
        }
    }
    out
}

/// Unwraps a layer's payload slice collected by the interleave replay,
/// reporting [`StreamError::MissingSection`] instead of panicking if the
/// replay left a hole.
fn section<'a>(slot: &Option<&'a [u64]>, layer: usize) -> Result<&'a [u64], StreamError> {
    slot.ok_or(StreamError::MissingSection { layer })
}

/// Decodes a transmission stream back into a model + input. The inverse
/// of [`compile`] up to the untransmitted model name.
pub fn decode(words: &[u64]) -> Result<Decoded, StreamError> {
    let mut r = Reader { words, pos: 0 };
    let header = r.take(1)?[0];
    if cast::lo16(header) != MAGIC || cast::lo8(header >> 16) != VERSION {
        return Err(StreamError::BadHeader(header));
    }
    let mode = if header >> 40 & 1 == 1 {
        PackingMode::Dense
    } else {
        PackingMode::Lanes8
    };
    let n = cast::usize_sat((header >> 24) & 0xFFFF);
    if n < 2 {
        return Err(StreamError::BadLayerSequence);
    }
    let mut settings = Vec::with_capacity(n);
    for &w in r.take(n)? {
        settings.push(LayerSetting::decode(w).map_err(StreamError::BadSetting)?);
    }
    if settings[0].layer_type != LayerType::Input
        || settings[n - 1].layer_type != LayerType::Output
        || settings[1..n - 1]
            .iter()
            .any(|s| s.layer_type != LayerType::Hidden)
    {
        return Err(StreamError::BadLayerSequence);
    }

    let input_len = cast::usize_from_u32(settings[0].neurons);
    let in_words = r.take(input_words(input_len))?;
    let mut pixels = Vec::with_capacity(input_len);
    for i in 0..input_len {
        pixels.push(cast::lo8(
            in_words[i / LANES_PER_WORD] >> (8 * (i % LANES_PER_WORD)),
        ));
    }

    // Replay the interleave, collecting per-layer payload slices.
    let mut params: Vec<Option<&[u64]>> = vec![None; n];
    let mut weight_payloads: Vec<Option<&[u64]>> = vec![None; n];
    params[0] = Some(r.take(param_words(&settings[0]))?);
    for k in 1..n {
        params[k] = Some(r.take(param_words(&settings[k]))?);
        weight_payloads[k - 1] = Some(r.take(weight_words_mode(&settings[k - 1], mode))?);
    }
    weight_payloads[n - 1] = Some(r.take(weight_words_mode(&settings[n - 1], mode))?);

    // Reconstruct the model.
    let input = InputLayer {
        len: input_len,
        out_precision: settings[0].out_precision,
        activation: decode_activation(&settings[0], section(&params[0], 0)?, 0)?,
    };
    let mut hidden = Vec::with_capacity(n - 2);
    for k in 1..n - 1 {
        let s = &settings[k];
        let layer_params = section(&params[k], k)?;
        let mut reader = Reader {
            words: layer_params,
            pos: 0,
        };
        let (bias, bn) = decode_bias_bn(s, &mut reader)?;
        let act_words = reader.take(layer_params.len() - reader.pos)?;
        hidden.push(HiddenLayer {
            in_len: cast::usize_from_u32(s.input_len),
            neurons: cast::usize_from_u32(s.neurons),
            weight_precision: s.weight_precision,
            in_precision: s.in_precision,
            out_precision: s.out_precision,
            weights: decode_weights(s, section(&weight_payloads[k], k)?, mode),
            bias,
            bn,
            activation: decode_activation(s, act_words, k)?,
        });
    }
    let s = &settings[n - 1];
    let mut reader = Reader {
        words: section(&params[n - 1], n - 1)?,
        pos: 0,
    };
    let (bias, bn) = decode_bias_bn(s, &mut reader)?;
    let output = OutputLayer {
        in_len: cast::usize_from_u32(s.input_len),
        neurons: cast::usize_from_u32(s.neurons),
        weight_precision: s.weight_precision,
        in_precision: s.in_precision,
        weights: decode_weights(s, section(&weight_payloads[n - 1], n - 1)?, mode),
        bias,
        bn,
    };

    let model = QuantMlp {
        name: String::new(),
        input,
        hidden,
        output,
    };
    model.validate().map_err(StreamError::InvalidModel)?;
    Ok(Decoded {
        model,
        pixels,
        settings,
        packing: mode,
        input_range: declared_input_range(header),
    })
}
