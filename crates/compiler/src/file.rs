//! The `.npu` on-disk loadable container.
//!
//! A deployed NetPU-M system pre-packages loadables offline and streams
//! them at runtime (§III.B.3: "if we pre-package all inputs and network
//! models…"). This module defines the container: a 16-byte header
//! (magic, version, word count, CRC) followed by the little-endian
//! stream words. The section layout is not stored — it is recomputed
//! from the stream itself, which keeps the file format free of
//! redundant (and desynchronisable) metadata.

use crate::settings::LayerSetting;
use crate::stream::{
    input_words, param_words, weight_words_mode, Loadable, PackingMode, SectionKind, StreamError,
    StreamLayout, MAGIC, VERSION,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use netpu_arith::cast;

/// File magic: `"NPUL"`.
pub const FILE_MAGIC: [u8; 4] = *b"NPUL";
/// Container format version.
pub const FILE_VERSION: u32 = 1;

/// Container errors.
#[derive(Clone, PartialEq, Debug)]
pub enum FileError {
    /// Missing or wrong file magic / version.
    BadContainer,
    /// The byte payload is shorter than the header promises.
    Truncated,
    /// CRC mismatch: the payload was corrupted.
    Corrupt {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The contained stream is not a valid loadable.
    Stream(StreamError),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::BadContainer => f.write_str("not a .npu container"),
            FileError::Truncated => f.write_str("container truncated"),
            FileError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FileError::Stream(e) => write!(f, "contained stream invalid: {e}"),
        }
    }
}

impl std::error::Error for FileError {}

/// CRC-32 (IEEE 802.3 polynomial, bitwise implementation — the payload
/// is hashed once per save/load, so table-free is fine).
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Recomputes a stream's section layout from its own headers — the
/// inverse of what `compile` records. Fails on malformed streams.
pub fn layout_of(words: &[u64]) -> Result<StreamLayout, StreamError> {
    if words.is_empty() {
        return Err(StreamError::Truncated { at: 0 });
    }
    let header = words[0];
    if cast::lo16(header) != MAGIC || cast::lo8(header >> 16) != VERSION {
        return Err(StreamError::BadHeader(header));
    }
    let mode = if header >> 40 & 1 == 1 {
        PackingMode::Dense
    } else {
        PackingMode::Lanes8
    };
    let n = cast::usize_sat((header >> 24) & 0xFFFF);
    if n < 2 || words.len() < 1 + n {
        return Err(StreamError::Truncated { at: words.len() });
    }
    let mut settings = Vec::with_capacity(n);
    for &w in &words[1..1 + n] {
        settings.push(LayerSetting::decode(w).map_err(StreamError::BadSetting)?);
    }
    let mut layout = StreamLayout {
        header: 0..1,
        settings: 1..1 + n,
        ..StreamLayout::default()
    };
    let mut pos = 1 + n;
    let in_words = input_words(cast::usize_from_u32(settings[0].neurons));
    layout.input = pos..pos + in_words;
    pos += in_words;
    let mut push = |kind: SectionKind, layer: usize, len: usize, pos: &mut usize| {
        layout.sections.push((kind, layer, *pos..*pos + len));
        *pos += len;
    };
    push(SectionKind::Params, 0, param_words(&settings[0]), &mut pos);
    for k in 1..n {
        push(SectionKind::Params, k, param_words(&settings[k]), &mut pos);
        push(
            SectionKind::Weights,
            k - 1,
            weight_words_mode(&settings[k - 1], mode),
            &mut pos,
        );
    }
    push(
        SectionKind::Weights,
        n - 1,
        weight_words_mode(&settings[n - 1], mode),
        &mut pos,
    );
    if pos > words.len() {
        return Err(StreamError::Truncated { at: words.len() });
    }
    Ok(layout)
}

impl Loadable {
    /// Serialises the loadable into the `.npu` container format.
    pub fn to_bytes(&self) -> Bytes {
        let mut payload = BytesMut::with_capacity(self.words.len() * 8);
        for &w in &self.words {
            payload.put_u64_le(w);
        }
        let crc = crc32(&payload);
        let mut out = BytesMut::with_capacity(16 + payload.len());
        out.put_slice(&FILE_MAGIC);
        out.put_u32_le(FILE_VERSION);
        out.put_u32_le(cast::u32_sat_usize(self.words.len()));
        out.put_u32_le(crc);
        out.extend_from_slice(&payload);
        out.freeze()
    }

    /// Parses a `.npu` container, verifying the CRC and re-deriving the
    /// section layout from the stream itself.
    pub fn from_bytes(mut data: &[u8]) -> Result<Loadable, FileError> {
        if data.len() < 16 {
            return Err(FileError::BadContainer);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != FILE_MAGIC {
            return Err(FileError::BadContainer);
        }
        if data.get_u32_le() != FILE_VERSION {
            return Err(FileError::BadContainer);
        }
        let count = cast::usize_from_u32(data.get_u32_le());
        let stored = data.get_u32_le();
        if data.len() < count * 8 {
            return Err(FileError::Truncated);
        }
        let payload = &data[..count * 8];
        let computed = crc32(payload);
        if computed != stored {
            return Err(FileError::Corrupt { stored, computed });
        }
        let mut words = Vec::with_capacity(count);
        let mut rest = payload;
        for _ in 0..count {
            words.push(rest.get_u64_le());
        }
        let layout = layout_of(&words).map_err(FileError::Stream)?;
        Ok(Loadable { words, layout })
    }

    /// Writes the container to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a container from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Loadable, FileError> {
        let data = std::fs::read(path).map_err(|_| FileError::BadContainer)?;
        Loadable::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{compile, compile_packed};
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    fn sample() -> Loadable {
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        compile(&model, &vec![100u8; 784]).unwrap()
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let l = sample();
        let restored = Loadable::from_bytes(&l.to_bytes()).unwrap();
        assert_eq!(restored, l);
    }

    #[test]
    fn dense_streams_roundtrip_with_layout() {
        let model = ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        let l = compile_packed(&model, &vec![0u8; 784], PackingMode::Dense).unwrap();
        let restored = Loadable::from_bytes(&l.to_bytes()).unwrap();
        assert_eq!(restored, l);
    }

    #[test]
    fn corruption_is_detected() {
        let l = sample();
        let mut bytes = l.to_bytes().to_vec();
        // Flip a payload bit.
        let idx = bytes.len() - 5;
        bytes[idx] ^= 1;
        assert!(matches!(
            Loadable::from_bytes(&bytes),
            Err(FileError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_containers_are_rejected() {
        assert_eq!(Loadable::from_bytes(b"nope"), Err(FileError::BadContainer));
        let l = sample();
        let mut bytes = l.to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(Loadable::from_bytes(&bytes), Err(FileError::BadContainer));
        // Truncated payload.
        let full = l.to_bytes().to_vec();
        assert_eq!(
            Loadable::from_bytes(&full[..full.len() / 2]),
            Err(FileError::Truncated)
        );
    }

    #[test]
    fn layout_recomputation_matches_compile() {
        let l = sample();
        assert_eq!(layout_of(&l.words).unwrap(), l.layout);
    }

    #[test]
    fn save_load_via_disk() {
        let l = sample();
        let path = std::env::temp_dir().join("netpu-test.npu");
        l.save(&path).unwrap();
        let restored = Loadable::load(&path).unwrap();
        assert_eq!(restored, l);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
