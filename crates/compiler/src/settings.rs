//! Layer-setting words: the per-layer configuration the NetPU loads
//! during *NetPU Initialization* and hands to LPUs during *Layer
//! Initialization* (§III.B.2).
//!
//! One 64-bit stream word encodes a layer's type, activation selector,
//! BN-folding option, the three precision fields, the neuron count, and
//! the input length — everything Figure 4's Layer Initialization step
//! consumes.

use netpu_arith::{cast, ActivationKind, Precision};
use serde::{Deserialize, Serialize};

/// The three layer kinds the NetPU schedules (§III.B.1 Crossbar paths).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LayerType {
    /// Dataset-input quantization layer (yellow path).
    Input,
    /// Fully connected hidden layer (red path).
    Hidden,
    /// Output layer feeding MaxOut (pink path).
    Output,
}

impl LayerType {
    fn encode(self) -> u64 {
        match self {
            LayerType::Input => 0,
            LayerType::Hidden => 1,
            LayerType::Output => 2,
        }
    }

    fn decode(v: u64) -> Option<LayerType> {
        match v {
            0 => Some(LayerType::Input),
            1 => Some(LayerType::Hidden),
            2 => Some(LayerType::Output),
            _ => None,
        }
    }
}

/// A decoded layer-setting word.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LayerSetting {
    /// Layer kind.
    pub layer_type: LayerType,
    /// Activation selector (meaningful for Input/Hidden layers).
    pub activation: ActivationKind,
    /// `true` when BN is folded (bias path); `false` keeps BN in hardware.
    pub bn_folded: bool,
    /// Activation-input precision.
    pub in_precision: Precision,
    /// Weight precision (meaningful for Hidden/Output layers).
    pub weight_precision: Precision,
    /// Activation-output precision.
    pub out_precision: Precision,
    /// Neuron count (= input length for the Input layer).
    pub neurons: u32,
    /// Per-neuron input length (fan-in; = 1 for the Input layer).
    pub input_len: u32,
}

/// Errors decoding a layer-setting word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SettingError {
    /// Unknown layer-type field.
    BadLayerType(u8),
    /// Unknown activation selector.
    BadActivation(u8),
    /// A width field exceeds the architecture's 8192 ceiling.
    BadWidth(u32),
}

impl std::fmt::Display for SettingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SettingError::BadLayerType(v) => write!(f, "unknown layer type {v}"),
            SettingError::BadActivation(v) => write!(f, "unknown activation selector {v}"),
            SettingError::BadWidth(v) => write!(f, "layer width {v} exceeds 8192"),
        }
    }
}

impl std::error::Error for SettingError {}

/// Maximum width encodable in the 14-bit neuron/input-length fields.
pub const MAX_FIELD_WIDTH: u32 = 8192;

impl LayerSetting {
    /// Packs the setting into its 64-bit stream word.
    ///
    /// Bit layout (LSB first): `[0:2]` layer type, `[2:5]` activation,
    /// `[5]` BN folded, `[6:9]` input precision, `[9:12]` weight
    /// precision, `[12:15]` output precision, `[16:30]` neuron count,
    /// `[32:46]` input length. Remaining bits are reserved zero.
    pub fn encode(&self) -> u64 {
        debug_assert!(self.neurons <= MAX_FIELD_WIDTH && self.input_len <= MAX_FIELD_WIDTH);
        self.layer_type.encode()
            | (u64::from(self.activation.encode()) << 2)
            | (u64::from(self.bn_folded) << 5)
            | (u64::from(self.in_precision.encode()) << 6)
            | (u64::from(self.weight_precision.encode()) << 9)
            | (u64::from(self.out_precision.encode()) << 12)
            | (u64::from(self.neurons) << 16)
            | (u64::from(self.input_len) << 32)
    }

    /// Decodes a 64-bit layer-setting stream word.
    pub fn decode(word: u64) -> Result<LayerSetting, SettingError> {
        let lt = cast::lo8(word & 0b11);
        let layer_type = LayerType::decode(u64::from(lt)).ok_or(SettingError::BadLayerType(lt))?;
        let act = cast::lo8((word >> 2) & 0b111);
        let activation = ActivationKind::decode(act).ok_or(SettingError::BadActivation(act))?;
        let neurons = cast::lo32((word >> 16) & 0x3FFF);
        let input_len = cast::lo32((word >> 32) & 0x3FFF);
        if neurons > MAX_FIELD_WIDTH {
            return Err(SettingError::BadWidth(neurons));
        }
        if input_len > MAX_FIELD_WIDTH {
            return Err(SettingError::BadWidth(input_len));
        }
        let precision = |shift: u32| {
            let Ok(p) = Precision::decode(cast::lo8((word >> shift) & 0b111)) else {
                unreachable!("masked 3-bit precision fields always decode");
            };
            p
        };
        Ok(LayerSetting {
            layer_type,
            activation,
            bn_folded: (word >> 5) & 1 == 1,
            in_precision: precision(6),
            weight_precision: precision(9),
            out_precision: precision(12),
            neurons,
            input_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerSetting {
        LayerSetting {
            layer_type: LayerType::Hidden,
            activation: ActivationKind::MultiThreshold,
            bn_folded: true,
            in_precision: Precision::W2,
            weight_precision: Precision::W2,
            out_precision: Precision::W2,
            neurons: 256,
            input_len: 784,
        }
    }

    #[test]
    fn roundtrip_all_layer_types_and_activations() {
        for lt in [LayerType::Input, LayerType::Hidden, LayerType::Output] {
            for act in ActivationKind::ALL {
                for folded in [true, false] {
                    let s = LayerSetting {
                        layer_type: lt,
                        activation: act,
                        bn_folded: folded,
                        ..sample()
                    };
                    assert_eq!(LayerSetting::decode(s.encode()).unwrap(), s);
                }
            }
        }
    }

    #[test]
    fn roundtrip_extreme_widths() {
        for (n, l) in [(1u32, 1u32), (8192, 8192), (10, 8192), (8192, 1)] {
            let s = LayerSetting {
                neurons: n,
                input_len: l,
                ..sample()
            };
            assert_eq!(LayerSetting::decode(s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn roundtrip_all_precisions() {
        for p in Precision::all() {
            let s = LayerSetting {
                in_precision: p,
                weight_precision: p,
                out_precision: p,
                ..sample()
            };
            assert_eq!(LayerSetting::decode(s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn decode_rejects_bad_fields() {
        // Layer type 3 is unused.
        assert_eq!(LayerSetting::decode(3), Err(SettingError::BadLayerType(3)));
        // Activation selectors 5-7 are unused.
        let word = LayerType::Hidden.encode() | (0b111 << 2);
        assert_eq!(
            LayerSetting::decode(word),
            Err(SettingError::BadActivation(7))
        );
    }

    #[test]
    fn reserved_bits_are_zero() {
        let w = sample().encode();
        // Bit 15 and bits 46+ must be clear.
        assert_eq!(w & (1 << 15), 0);
        assert_eq!(w >> 46, 0);
    }
}
