//! Seeded miscompile injection — the translation validator's sparring
//! partner.
//!
//! A translation validator is only as credible as the miscompiles it
//! has demonstrably caught. This module manufactures them: each
//! [`Miscompile`] is one *semantic* mutation applied to a clone of the
//! source model before honest compilation, so the resulting stream is
//! structurally flawless — it decodes, its shapes chain, its ranges
//! analyze clean — yet computes a different function than the model it
//! claims to implement. The structural and range tiers (NPC001–NPC020)
//! are expected to miss most of these by design; `netpu-check::symex`
//! must flag every one (the differential suite in
//! `tests/translation_validation.rs` enforces both directions).
//!
//! Gated behind the **`inject` cargo feature** so production builds of
//! the compiler cannot emit dishonest streams: the feature is enabled
//! only from the workspace's dev-dependencies.

use crate::stream::{compile, Loadable, StreamError};
use netpu_arith::{Fix, Precision};
use netpu_nn::qmodel::{BnParams, LayerActivation, QuantMlp};

/// One seeded semantic mutation. Every variant preserves model
/// validity ([`QuantMlp::validate`] still passes) and stream
/// structure; only the computed function changes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Miscompile {
    /// Swap the first adjacent pair of differing weights in the first
    /// hidden layer — the classic transposed-index packing bug.
    SwapWeightPair,
    /// Negate the first weight whose negation stays in the layer's
    /// precision range — a sign-extension slip.
    NegateWeight,
    /// Nudge one activation threshold of the first hidden layer by a
    /// full input level — an off-by-one in threshold folding.
    ThresholdNudge,
    /// Drift the first folded bias of the first hidden layer by ±1 —
    /// a rounding-direction bug in BN folding.
    BiasDrift,
    /// Drift the first hardware-BN scale by 2⁻² (Q16.16) — a truncated
    /// multiplier word.
    BnScaleDrift,
    /// Drift the first hardware-BN offset by a full level — a lost
    /// carry in the offset accumulation.
    BnOffsetDrift,
    /// Swap the first two neuron rows (weights and per-neuron
    /// parameters) of the first hidden layer — a whole-row permutation
    /// the weight packer could introduce.
    PermuteHiddenNeurons,
    /// Swap the first two output rows — a class-label permutation.
    PermuteOutputNeurons,
}

impl Miscompile {
    /// Every mutation, in a stable order.
    pub const ALL: [Miscompile; 8] = [
        Miscompile::SwapWeightPair,
        Miscompile::NegateWeight,
        Miscompile::ThresholdNudge,
        Miscompile::BiasDrift,
        Miscompile::BnScaleDrift,
        Miscompile::BnOffsetDrift,
        Miscompile::PermuteHiddenNeurons,
        Miscompile::PermuteOutputNeurons,
    ];

    /// Human-readable name for suite output.
    pub fn describe(self) -> &'static str {
        match self {
            Miscompile::SwapWeightPair => "swap adjacent weight pair",
            Miscompile::NegateWeight => "negate one weight",
            Miscompile::ThresholdNudge => "nudge one activation threshold",
            Miscompile::BiasDrift => "drift one folded bias",
            Miscompile::BnScaleDrift => "drift one BN scale",
            Miscompile::BnOffsetDrift => "drift one BN offset",
            Miscompile::PermuteHiddenNeurons => "permute hidden neuron rows",
            Miscompile::PermuteOutputNeurons => "permute output rows",
        }
    }
}

/// Applies `m` to a clone of `model`. Returns `None` when the model
/// offers no site for the mutation (a BN drift on a folded-BN model, a
/// threshold nudge on a QUAN-path layer), so a caller sweeping
/// [`Miscompile::ALL`] over a model zoo simply skips the inapplicable
/// pairs. A `Some` model always differs semantically from the source
/// and still passes [`QuantMlp::validate`].
pub fn mutate(model: &QuantMlp, m: Miscompile) -> Option<QuantMlp> {
    let mut out = model.clone();
    let h = out.hidden.first_mut()?;
    match m {
        Miscompile::SwapWeightPair => {
            let w = &mut h.weights;
            let i = (0..w.len().checked_sub(1)?).find(|&i| w[i] != w[i + 1])?;
            w.swap(i, i + 1);
        }
        Miscompile::NegateWeight => {
            let wp = h.weight_precision;
            let w = h.weights.iter_mut().find(|w| negatable(wp, **w))?;
            *w = -*w;
        }
        Miscompile::ThresholdNudge => match &mut h.activation {
            LayerActivation::Sign { thresholds } => {
                let t = thresholds.first_mut()?;
                *t = t.sat_add(Fix::ONE);
            }
            LayerActivation::MultiThreshold { thresholds } => {
                // Lowering the first entry keeps the row sorted.
                let t = thresholds.first_mut()?.first_mut()?;
                *t = t.sat_sub(Fix::ONE);
            }
            _ => return None,
        },
        Miscompile::BiasDrift => {
            let b = h.bias.as_mut()?.first_mut()?;
            *b = if *b < 127 { *b + 1 } else { *b - 1 };
        }
        Miscompile::BnScaleDrift => {
            let p = h.bn.as_mut()?.first_mut()?;
            p.scale_q16 = p.scale_q16.saturating_add(1 << 14);
        }
        Miscompile::BnOffsetDrift => {
            let p = h.bn.as_mut()?.first_mut()?;
            p.offset = p.offset.sat_add(Fix::ONE);
        }
        Miscompile::PermuteHiddenNeurons => {
            if h.neurons < 2 {
                return None;
            }
            let rows_equal = swap_fc_rows(h.in_len, &mut h.weights, &mut h.bias, &mut h.bn);
            let act_equal = match &mut h.activation {
                LayerActivation::Sign { thresholds } => {
                    let eq = thresholds.first() == thresholds.get(1);
                    thresholds.swap(0, 1);
                    eq
                }
                LayerActivation::MultiThreshold { thresholds } => {
                    let eq = thresholds.first() == thresholds.get(1);
                    thresholds.swap(0, 1);
                    eq
                }
                // QUAN-path re-quantization is layer-wide; the swapped
                // weight rows alone carry the permutation.
                _ => true,
            };
            if rows_equal && act_equal {
                return None; // identical neurons: swapping is a no-op
            }
        }
        Miscompile::PermuteOutputNeurons => {
            let o = &mut out.output;
            if o.neurons < 2 {
                return None;
            }
            if swap_fc_rows(o.in_len, &mut o.weights, &mut o.bias, &mut o.bn) {
                return None;
            }
        }
    }
    Some(out)
}

/// Compiles a stream that *claims* to implement `model` but actually
/// implements `mutate(model, m)` — the seeded miscompile the
/// translation validator must catch. `None` exactly when [`mutate`]
/// has no site.
pub fn compile_miscompiled(
    model: &QuantMlp,
    pixels: &[u8],
    m: Miscompile,
) -> Option<Result<Loadable, StreamError>> {
    let mutated = mutate(model, m)?;
    Some(compile(&mutated, pixels))
}

fn negatable(wp: Precision, w: i32) -> bool {
    if w == 0 {
        return false;
    }
    if wp.is_binary() {
        return true; // ±1 stays ±1
    }
    w.checked_neg()
        .is_some_and(|n| (wp.signed_min()..=wp.signed_max()).contains(&n))
}

/// Swaps neuron rows 0 and 1 of an FC layer's weight matrix plus the
/// matching bias / BN entries; returns `true` when the swapped data
/// were already identical (the swap changed nothing).
fn swap_fc_rows(
    in_len: usize,
    weights: &mut [i32],
    bias: &mut Option<Vec<i32>>,
    bn: &mut Option<Vec<BnParams>>,
) -> bool {
    let mut equal = true;
    for c in 0..in_len {
        if weights[c] != weights[in_len + c] {
            equal = false;
        }
        weights.swap(c, in_len + c);
    }
    if let Some(b) = bias {
        equal &= b.first() == b.get(1);
        b.swap(0, 1);
    }
    if let Some(p) = bn {
        equal &= p.first() == p.get(1);
        p.swap(0, 1);
    }
    equal
}
