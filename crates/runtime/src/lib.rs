#![deny(missing_docs)]
//! Host runtime for the NetPU-M accelerator.
//!
//! Models everything outside the programmable logic that the paper's
//! measurements include:
//!
//! * [`dma`] — the DMA / Processing System transfer path (the constant
//!   ≈6 µs gap between Table V simulation and Table VI measurement).
//! * [`power`] — the wall-power model behind Table VI's `P_wall`.
//! * [`driver`] — the host driver: a unified [`Driver::run`] request
//!   API (single / batch / burst / pre-compiled loadable payloads),
//!   with batch-inference input-section reuse.
//! * [`cluster`] — multi-FPGA deployment throughput (the §I.B
//!   multi-board application scenario).

pub mod cluster;
pub mod dma;
pub mod driver;
pub mod power;

pub use cluster::{Cluster, ClusterThroughput};
pub use dma::DmaModel;
pub use driver::{
    Driver, DriverBuilder, DriverError, InferPayload, InferRequest, InferResponse, MeasuredRun,
    ModelSource, RequestOptions,
};
pub use netpu_check::{AdmissionVerdict, RejectReason};
pub use netpu_trace::TraceSink;
pub use power::PowerParams;
