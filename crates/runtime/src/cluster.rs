//! Multi-FPGA deployment (§I.B application scenario: "Multiple FPGAs
//! pipelined NN inference acceleration").
//!
//! A host fans inference requests out to several NetPU-M boards. Each
//! board computes independently, but the host's DMA engine is shared:
//! only one loadable can stream at a time. Steady-state throughput is
//! therefore the *minimum* of the compute bound (`boards / latency`)
//! and the transfer bound (`1 / stream_time`) — adding boards stops
//! helping once the shared stream link saturates, which for NetPU-M
//! happens quickly because the architecture re-streams weights every
//! inference (the §V loading bottleneck at system scale).

use crate::driver::{Driver, DriverError};
use netpu_compiler::compile;
use netpu_nn::QuantMlp;
use serde::{Deserialize, Serialize};

/// Throughput analysis of a multi-board deployment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterThroughput {
    /// Number of boards.
    pub boards: usize,
    /// Single-inference latency on one board (µs, incl. DMA setup).
    pub latency_us: f64,
    /// Time the shared host DMA is occupied per inference (µs).
    pub transfer_us: f64,
    /// Compute-bound throughput (frames/s).
    pub compute_bound_fps: f64,
    /// Transfer-bound throughput (frames/s).
    pub transfer_bound_fps: f64,
    /// Achievable steady-state throughput (frames/s).
    pub fps: f64,
}

impl ClusterThroughput {
    /// Builds the analysis from raw timings.
    ///
    /// Rejects non-positive latencies with
    /// [`DriverError::Degenerate`] instead of reporting an infinite
    /// compute bound — a zero-latency "run" is a modelling bug
    /// upstream, not free throughput. A zero transfer time is valid
    /// (ideal channel): the transfer bound is infinite and the cluster
    /// is compute-bound at every board count.
    pub fn from_parts(
        boards: usize,
        latency_us: f64,
        transfer_us: f64,
    ) -> Result<ClusterThroughput, DriverError> {
        if !latency_us.is_finite()
            || latency_us <= 0.0
            || !transfer_us.is_finite()
            || transfer_us < 0.0
        {
            return Err(DriverError::Degenerate { latency_us });
        }
        let compute_bound = boards as f64 * 1e6 / latency_us;
        let transfer_bound = if transfer_us > 0.0 {
            1e6 / transfer_us
        } else {
            f64::INFINITY
        };
        Ok(ClusterThroughput {
            boards,
            latency_us,
            transfer_us,
            compute_bound_fps: compute_bound,
            transfer_bound_fps: transfer_bound,
            fps: compute_bound.min(transfer_bound),
        })
    }
}

/// A cluster of identical NetPU-M boards behind one host DMA engine.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Per-board driver (accelerator + DMA + power models).
    pub driver: Driver,
    /// Board count.
    pub boards: usize,
}

impl Cluster {
    /// Builds a cluster of `boards` boards with the paper's setup each.
    pub fn new(boards: usize, driver: Driver) -> Cluster {
        assert!(boards > 0, "at least one board");
        Cluster { driver, boards }
    }

    /// Steady-state throughput for one model served by all boards.
    pub fn throughput(&self, model: &QuantMlp) -> Result<ClusterThroughput, DriverError> {
        let pixels = vec![0u8; model.input.len];
        let loadable = compile(model, &pixels).map_err(DriverError::Compile)?;
        let run = self.driver.run_loadable(&loadable)?;
        // DMA occupancy per inference: setup + the stream itself.
        let transfer_us = self
            .driver
            .dma
            .occupancy_us(loadable.len(), self.driver.hw.clock_mhz);
        ClusterThroughput::from_parts(self.boards, run.measured_latency_us, transfer_us)
    }

    /// Design-space sweep: throughput of every board count
    /// `1..=max_boards` for one model, evaluated in parallel (each
    /// entry runs its own accelerator simulation, so the sweep fans out
    /// across worker threads with rayon).
    pub fn scaling_sweep(
        driver: &Driver,
        model: &QuantMlp,
        max_boards: usize,
    ) -> Result<Vec<ClusterThroughput>, DriverError> {
        use rayon::prelude::*;
        (1..max_boards + 1)
            .into_par_iter()
            .map(|boards| Cluster::new(boards, driver.clone()).throughput(model))
            .collect()
    }

    /// Boards beyond this count no longer raise throughput (the shared
    /// DMA link is saturated).
    pub fn useful_boards(&self, model: &QuantMlp) -> Result<usize, DriverError> {
        let one = Cluster::new(1, self.driver.clone()).throughput(model)?;
        Ok((one.transfer_bound_fps * one.latency_us / 1e6)
            .ceil()
            .max(1.0) as usize)
    }

    /// Total cluster wall power.
    pub fn power_w(&self) -> f64 {
        let util = netpu_core::resources::netpu_utilization(&self.driver.hw);
        self.boards as f64
            * self
                .driver
                .power
                .wall_power_w(&util, self.driver.hw.clock_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    fn model() -> QuantMlp {
        ZooModel::SfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap()
    }

    #[test]
    fn one_board_is_latency_bound() {
        let c = Cluster::new(1, Driver::builder().build());
        let t = c.throughput(&model()).unwrap();
        assert_eq!(t.boards, 1);
        assert!((t.fps - 1e6 / t.latency_us).abs() < 1e-6);
        assert!(t.fps < t.transfer_bound_fps);
    }

    #[test]
    fn scaling_saturates_at_the_shared_dma() {
        let driver = Driver::builder().build();
        let mut last_fps = 0.0;
        let mut saturated = false;
        for boards in 1..=8 {
            let t = Cluster::new(boards, driver.clone())
                .throughput(&model())
                .unwrap();
            assert!(t.fps + 1e-9 >= last_fps, "throughput regressed");
            if (t.fps - t.transfer_bound_fps).abs() < 1e-9 {
                saturated = true;
            }
            last_fps = t.fps;
        }
        assert!(saturated, "8 boards never hit the DMA bound");
        // And the useful-board estimate reflects that.
        let useful = Cluster::new(1, driver).useful_boards(&model()).unwrap();
        assert!((2..=8).contains(&useful), "useful boards {useful}");
    }

    #[test]
    fn larger_models_are_more_transfer_bound() {
        // LFC streams ~8x the words of SFC: its DMA occupancy fraction
        // is higher, so fewer boards are useful.
        let driver = Driver::builder().build();
        let sfc = Cluster::new(1, driver.clone())
            .useful_boards(&model())
            .unwrap();
        let lfc_model = ZooModel::LfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let lfc = Cluster::new(1, driver).useful_boards(&lfc_model).unwrap();
        assert!(lfc <= sfc, "LFC useful boards {lfc} > SFC {sfc}");
    }

    #[test]
    fn scaling_sweep_matches_individual_throughputs() {
        let driver = Driver::builder().build();
        let sweep = Cluster::scaling_sweep(&driver, &model(), 6).unwrap();
        assert_eq!(sweep.len(), 6);
        for (i, t) in sweep.iter().enumerate() {
            let single = Cluster::new(i + 1, driver.clone())
                .throughput(&model())
                .unwrap();
            assert_eq!(*t, single);
        }
        // Throughput never regresses as boards are added.
        assert!(sweep.windows(2).all(|w| w[1].fps + 1e-9 >= w[0].fps));
    }

    #[test]
    fn degenerate_latencies_are_rejected() {
        for latency in [0.0, -1.0, f64::NAN] {
            match ClusterThroughput::from_parts(4, latency, 10.0) {
                Err(DriverError::Degenerate { latency_us }) => {
                    assert!(latency_us.is_nan() || latency_us == latency)
                }
                other => panic!("expected Degenerate, got {other:?}"),
            }
        }
        // Infinite / NaN transfer times are modelling bugs too.
        assert!(ClusterThroughput::from_parts(4, 10.0, f64::INFINITY).is_err());
        // A zero transfer time (ideal channel) is compute-bound.
        let t = ClusterThroughput::from_parts(4, 10.0, 0.0).unwrap();
        assert_eq!(t.fps, t.compute_bound_fps);
        assert_eq!(t.transfer_bound_fps, f64::INFINITY);
        // And the normal case agrees with the hand formula.
        let t = ClusterThroughput::from_parts(2, 50.0, 20.0).unwrap();
        assert!((t.fps - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_linearly_with_boards() {
        let c1 = Cluster::new(1, Driver::builder().build());
        let c4 = Cluster::new(4, Driver::builder().build());
        assert!((c4.power_w() / c1.power_w() - 4.0).abs() < 1e-9);
    }
}
